#!/usr/bin/env python3
"""Selective instruction duplication guided by TRIDENT (Sec. VI).

Given a performance-overhead budget (a fraction of the full-duplication
overhead), choose the most SDC-prone instructions with a 0-1 knapsack,
duplicate them with detector checks, and measure the protected program's
SDC probability with fault injection.

Run:  python examples/selective_protection.py
"""

from repro import build_module
from repro.profiling import ProfilingInterpreter
from repro.protection import evaluate_protection


def main() -> None:
    module = build_module("hotspot", scale="test")
    profile, _outputs = ProfilingInterpreter(module).run()
    print(f"program: {module.name}")

    print(f"\n{'model':8s} {'budget':>7s} {'overhead':>9s} {'#insts':>7s} "
          f"{'SDC before':>11s} {'SDC after':>10s} {'reduction':>10s} "
          f"{'detected':>9s}")
    for model_name in ("trident", "fs+fc", "fs"):
        for budget in (1 / 3, 2 / 3):
            outcome = evaluate_protection(
                module, profile, model_name, budget,
                fi_samples=600, seed=7,
            )
            print(
                f"{model_name:8s} {budget:7.0%} "
                f"{outcome.measured_overhead:9.1%} "
                f"{len(outcome.selected_iids):7d} "
                f"{outcome.baseline_sdc:11.2%} "
                f"{outcome.protected_sdc:10.2%} "
                f"{outcome.sdc_reduction:10.0%} "
                f"{outcome.protected.detected_probability:9.2%}"
            )

    print(
        "\nThe paper's Fig. 8 shape: TRIDENT-guided protection achieves "
        "the largest SDC reduction\nat a given budget; the fs-only model "
        "trails because it cannot rank control-flow-\nand memory-carried "
        "SDC contributions."
    )


if __name__ == "__main__":
    main()
