#!/usr/bin/env python3
"""Study SDC behaviour across optimization levels (extension).

The paper evaluates LLVM -O2 binaries; the eDSL emits -O0 style
alloca/load/store form.  The built-in optimizer (constant folding, DCE,
CFG simplification, mem2reg SSA promotion) produces the register form,
so both can be measured and modeled.

Run:  python examples/optimization_study.py
"""

from repro import FaultInjector, Trident, build_module, optimize
from repro.profiling import ProfilingInterpreter


def main() -> None:
    name = "pathfinder"
    base = build_module(name, scale="test")
    print(f"program: {name}\n")
    print(f"{'level':>6s} {'static':>7s} {'dynamic':>8s} {'phis':>5s} "
          f"{'FI SDC':>8s} {'model':>7s} {'FI crash':>9s}")
    for level in (0, 1, 2):
        module, report = optimize(base, level)
        phis = sum(1 for i in module.instructions() if i.opcode == "phi")
        profile, _ = ProfilingInterpreter(module).run()
        injector = FaultInjector(module)
        campaign = injector.campaign(600, seed=1)
        model = Trident(module, profile)
        predicted = model.overall_sdc(samples=600, seed=2)
        print(f"    O{level} {module.num_instructions:7d} "
              f"{injector.golden.dynamic_count:8d} {phis:5d} "
              f"{campaign.sdc_probability:8.2%} {predicted:7.2%} "
              f"{campaign.crash_probability:9.2%}")
    print(
        "\nmem2reg moves loop state from memory into SSA registers: the\n"
        "program shrinks, and error propagation shifts from the memory\n"
        "sub-model (fm) to long register chains (fs) — the form the\n"
        "paper's -O2 evaluation operates on."
    )


if __name__ == "__main__":
    main()
