#!/usr/bin/env python3
"""Analyze your own program: write it in the IR eDSL (or textual IR),
then ask TRIDENT where it is vulnerable.

The program below is a small moving-average filter with an outlier
clamp — the kind of kernel you might selectively harden in a sensor
pipeline.  The same module is also shown round-tripping through the
textual IR format.

Run:  python examples/custom_program.py
"""

from repro import FaultInjector, Trident
from repro.ir import F64, I32, FunctionBuilder, Module, print_module
from repro.ir.printer import format_instruction


def build_filter(samples: int = 24, window: int = 4) -> Module:
    """A windowed moving average with clamping, written in the eDSL."""
    module = Module("moving_average")
    f = FunctionBuilder(module, "main")

    # Synthetic sensor trace with two injected outliers.
    trace = [50.0 + 3.0 * ((i * 7) % 5) for i in range(samples)]
    trace[7], trace[15] = 500.0, -400.0
    signal = f.global_array("signal", F64, samples, trace)
    smoothed = f.array("smoothed", F64, samples)

    def smooth(i):
        acc = f.local("acc", F64, init=0.0)

        def add_tap(j):
            index = f.max(i - j, f.c(0))
            # Clamp outliers before averaging.
            tap = f.min(f.max(signal[index], f.c(0.0)), f.c(100.0))
            acc.set(acc.get() + tap)

        f.for_range(0, window, add_tap, name="j")
        smoothed[i] = acc.get() * (1.0 / window)

    f.for_range(0, samples, smooth, name="i")

    # Program output: filtered values at 3 significant digits.
    f.for_range(0, samples,
                lambda i: f.out(smoothed[i], precision=3), name="o")
    f.done()
    return module.finalize()


def main() -> None:
    module = build_filter()
    print("=== textual IR (excerpt) ===")
    print("\n".join(print_module(module).splitlines()[:18]))
    print("    ...\n")

    model = Trident.build(module)
    overall = model.overall_sdc(samples=2000, seed=0)
    print(f"predicted overall SDC probability: {overall:.2%}\n")

    sdc_map = model.sdc_map()
    ranked = sorted(sdc_map, key=sdc_map.get, reverse=True)
    print("top-5 SDC-prone instructions (protect these first):")
    for iid in ranked[:5]:
        print(f"  {sdc_map[iid]:7.2%}  "
              f"{format_instruction(module.instruction(iid))}")
    print("\nleast SDC-prone (safe to leave unprotected):")
    for iid in ranked[-3:]:
        print(f"  {sdc_map[iid]:7.2%}  "
              f"{format_instruction(module.instruction(iid))}")

    campaign = FaultInjector(module).campaign(800, seed=0)
    print(f"\nFI check: measured SDC {campaign.sdc_probability:.2%} "
          f"(predicted {overall:.2%})")


if __name__ == "__main__":
    main()
