#!/usr/bin/env python3
"""Quickstart: predict a program's SDC probabilities without fault
injection, then validate against an actual FI campaign.

This is the workflow of Fig. 1b: program + input + output instructions
in, per-instruction and overall SDC probabilities out.

Run:  python examples/quickstart.py
"""

from repro import FaultInjector, Trident, build_module
from repro.ir.printer import format_instruction


def main() -> None:
    # 1. Build one of the Table I benchmarks (Pathfinder, the paper's
    #    running example) at a small scale.
    module = build_module("pathfinder", scale="small")
    print(f"program: {module.name} "
          f"({module.num_instructions} static instructions)")

    # 2. Build TRIDENT: one profiling run, no fault injection.
    model = Trident.build(module)
    print(f"profiled {model.profile.dynamic_count} dynamic instructions "
          f"in {model.profile.profiling_seconds * 1000:.1f} ms")

    # 3. Overall SDC probability of the program (Algorithm 1, sampled
    #    like the paper's 3000-instruction experiments).
    overall = model.overall_sdc(samples=3000, seed=0)
    print(f"\npredicted overall SDC probability: {overall * 100:.2f}%")

    # 4. Per-instruction SDC probabilities: the top-5 most SDC-prone.
    sdc_map = model.sdc_map()
    print("\nmost SDC-prone instructions:")
    for iid in sorted(sdc_map, key=sdc_map.get, reverse=True)[:5]:
        inst = module.instruction(iid)
        print(f"  {sdc_map[iid] * 100:6.2f}%  "
              f"{format_instruction(inst)}")

    # 5. Validate against fault injection (the expensive ground truth
    #    TRIDENT replaces).
    injector = FaultInjector(module)
    campaign = injector.campaign(1000, seed=0)
    print(f"\nFI ground truth ({campaign.total} injections):")
    print(f"  SDC    {campaign.sdc_probability * 100:6.2f}% "
          f"(± {campaign.margin_of_error() * 100:.2f}%)")
    print(f"  crash  {campaign.crash_probability * 100:6.2f}%")
    print(f"  benign {campaign.benign_probability * 100:6.2f}%")
    print(f"\nmodel-vs-FI gap: "
          f"{abs(overall - campaign.sdc_probability) * 100:.2f} points")


if __name__ == "__main__":
    main()
