#!/usr/bin/env python3
"""Compare every SDC model against fault injection (Figs. 5 and 9).

For each benchmark: FI ground truth vs TRIDENT, the two ablated models
(fs+fc, fs), and the prior-work baselines (ePVF, PVF).

Run:  python examples/model_comparison.py [scale]
"""

import sys

from repro import (
    EpvfModel,
    FaultInjector,
    PvfModel,
    all_benchmarks,
    build_all_models,
)
from repro.profiling import ProfilingInterpreter
from repro.stats import mean_absolute_error, paired_t_test


def main(scale: str = "test", fi_samples: int = 500) -> None:
    columns = ("trident", "fs+fc", "fs", "epvf", "pvf")
    print(f"{'benchmark':14s} {'FI':>7s} " +
          " ".join(f"{c:>8s}" for c in columns))
    fi_series: list[float] = []
    prediction_series: dict[str, list[float]] = {c: [] for c in columns}

    for spec in all_benchmarks():
        module = spec.build(scale)
        profile, _ = ProfilingInterpreter(module).run()
        campaign = FaultInjector(module).campaign(fi_samples, seed=1)
        predictions = {
            name: model.overall_sdc(samples=fi_samples, seed=2)
            for name, model in build_all_models(module, profile).items()
        }
        predictions["epvf"] = EpvfModel(
            module, profile,
            measured_crash_probability=campaign.crash_probability,
        ).overall(samples=fi_samples, seed=2)
        predictions["pvf"] = PvfModel(module, profile).overall(
            samples=fi_samples, seed=2
        )
        fi_series.append(campaign.sdc_probability)
        for column in columns:
            prediction_series[column].append(predictions[column])
        print(f"{spec.name:14s} {campaign.sdc_probability:7.2%} " +
              " ".join(f"{predictions[c]:8.2%}" for c in columns))

    print("\nmean absolute error vs FI:")
    for column in columns:
        mae = mean_absolute_error(prediction_series[column], fi_series)
        print(f"  {column:8s} {mae:6.2%}")
    t_test = paired_t_test(prediction_series["trident"], fi_series)
    verdict = (
        "statistically indistinguishable from FI"
        if t_test.p_value > 0.05 else "distinguishable from FI"
    )
    print(f"\npaired t-test, TRIDENT vs FI: p = {t_test.p_value:.3f} "
          f"({verdict})")


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["test"]))
