#!/usr/bin/env python3
"""Reproduce the scalability argument of Fig. 6: FI cost grows linearly
with the number of samples, TRIDENT's cost is a fixed profiling charge
plus a near-flat inference increment.

Run:  python examples/scalability.py
"""

import random
import time

from repro import FaultInjector, Trident, build_module
from repro.profiling import ProfilingInterpreter


def main() -> None:
    module = build_module("nw", scale="small")
    profile, _ = ProfilingInterpreter(module).run()
    injector = FaultInjector(module)

    # Measure one FI trial (averaged over 30 runs, like the paper).
    rng = random.Random(0)
    started = time.perf_counter()
    for _ in range(30):
        injector.run_one(injector.sample_injection(rng))
    per_run = (time.perf_counter() - started) / 30
    print(f"program: {module.name}, mean FI run {per_run * 1000:.2f} ms, "
          f"profiling {profile.profiling_seconds * 1000:.1f} ms\n")

    print(f"{'samples':>8s} {'FI (s)':>9s} {'TRIDENT (s)':>12s} "
          f"{'speedup':>8s}")
    for samples in (500, 1000, 2000, 3000, 5000, 7000):
        model = Trident(module, profile)  # cold caches each round
        started = time.perf_counter()
        model.overall_sdc(samples=samples, seed=1)
        trident_seconds = (
            profile.profiling_seconds + time.perf_counter() - started
        )
        fi_seconds = per_run * samples
        print(f"{samples:8d} {fi_seconds:9.2f} {trident_seconds:12.3f} "
              f"{fi_seconds / trident_seconds:7.1f}x")

    print("\nFI cost is linear in samples; TRIDENT's is dominated by the "
          "fixed profiling run\n(the paper's Fig. 6a shape).")


if __name__ == "__main__":
    main()
