"""Profile serialization: save/load a ProgramProfile as JSON.

Profiling is TRIDENT's only fixed cost; persisting the profile lets
downstream tooling (CI dashboards, repeated what-if protection studies)
rebuild models without re-running the program.  The format is plain
JSON with explicit versioning; frozensets and tuple keys are encoded as
sorted lists.
"""

from __future__ import annotations

import json
from pathlib import Path

from .profile import MemDepStats, ProgramProfile

FORMAT_VERSION = 1


def profile_to_dict(profile: ProgramProfile) -> dict:
    """A JSON-safe dictionary capturing the whole profile."""
    return {
        "version": FORMAT_VERSION,
        "inst_counts": {str(k): v for k, v in profile.inst_counts.items()},
        "branch_counts": {
            str(k): v for k, v in profile.branch_counts.items()
        },
        "select_counts": {
            str(k): v for k, v in profile.select_counts.items()
        },
        "operand_samples": {
            str(k): [list(sample) for sample in v]
            for k, v in profile.operand_samples.items()
        },
        "crash_prob_samples": {
            str(k): v for k, v in profile.crash_prob_samples.items()
        },
        "mem_edges": [
            [store, load, count]
            for (store, load), count in profile.mem_edges.items()
        ],
        "store_instances": {
            str(k): v for k, v in profile.store_instances.items()
        },
        "store_instances_read": {
            str(k): v for k, v in profile.store_instances_read.items()
        },
        "silent_stores": {
            str(k): v for k, v in profile.silent_stores.items()
        },
        "store_reader_sets": [
            [store, sorted(readers), count]
            for (store, readers), count in profile.store_reader_sets.items()
        ],
        "dynamic_count": profile.dynamic_count,
        "footprint_bytes": profile.footprint_bytes,
        "memdep_stats": {
            "dynamic_dependencies":
                profile.memdep_stats.dynamic_dependencies,
            "static_edges": profile.memdep_stats.static_edges,
        },
        "profiling_seconds": profile.profiling_seconds,
    }


def profile_from_dict(data: dict) -> ProgramProfile:
    """Rebuild a profile from :func:`profile_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    profile = ProgramProfile()
    profile.inst_counts = {
        int(k): v for k, v in data["inst_counts"].items()
    }
    profile.branch_counts = {
        int(k): list(v) for k, v in data["branch_counts"].items()
    }
    profile.select_counts = {
        int(k): list(v) for k, v in data["select_counts"].items()
    }
    profile.operand_samples = {
        int(k): [tuple(sample) for sample in v]
        for k, v in data["operand_samples"].items()
    }
    profile.crash_prob_samples = {
        int(k): list(v) for k, v in data["crash_prob_samples"].items()
    }
    profile.mem_edges = {
        (store, load): count for store, load, count in data["mem_edges"]
    }
    profile.store_instances = {
        int(k): v for k, v in data["store_instances"].items()
    }
    profile.store_instances_read = {
        int(k): v for k, v in data["store_instances_read"].items()
    }
    profile.silent_stores = {
        int(k): v for k, v in data.get("silent_stores", {}).items()
    }
    profile.store_reader_sets = {
        (store, frozenset(readers)): count
        for store, readers, count in data["store_reader_sets"]
    }
    profile.dynamic_count = data["dynamic_count"]
    profile.footprint_bytes = data["footprint_bytes"]
    profile.memdep_stats = MemDepStats(
        dynamic_dependencies=data["memdep_stats"]["dynamic_dependencies"],
        static_edges=data["memdep_stats"]["static_edges"],
    )
    profile.profiling_seconds = data["profiling_seconds"]
    return profile


def save_profile(profile: ProgramProfile, path) -> None:
    """Write a profile to a JSON file."""
    Path(path).write_text(json.dumps(profile_to_dict(profile)))


def load_profile(path) -> ProgramProfile:
    """Read a profile back from :func:`save_profile` output."""
    return profile_from_dict(json.loads(Path(path).read_text()))
