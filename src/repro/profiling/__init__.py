"""Dynamic profiling: the information TRIDENT's inference phase consumes."""

from .profile import MemDepStats, ProgramProfile
from .profiler import ProfilingInterpreter
from .serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

__all__ = [
    "MemDepStats", "ProfilingInterpreter", "ProgramProfile", "load_profile",
    "profile_from_dict", "profile_to_dict", "save_profile",
]
