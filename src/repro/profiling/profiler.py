"""Profiling interpreter: one instrumented fault-free execution.

A deliberately simple tree-walking interpreter (the fast closure engine
in :mod:`repro.interp.engine` stays lean for injection campaigns; this
one pays for hooks).  Both share the value semantics in
:mod:`repro.interp.ops`, so a program behaves identically under either.

Collected facts (Sec. IV-A "profiling phase"):

* execution counts of every static instruction,
* direction counts of every conditional branch and select,
* a reservoir of operand values per instruction (for the fs tuples),
* P(crash | address-bit flip) samples at loads/stores, computed against
  the live memory validity set (the paper approximates this from the
  program's allocated memory size),
* the pruned memory dependency graph: static store→load edges with
  dynamic dependency counts, plus per-store read fractions.
"""

from __future__ import annotations

import random
import time
from hashlib import blake2b

from ..interp.errors import InterpreterBug, RuntimeFault
from ..interp.intrinsics import call_intrinsic, is_intrinsic
from ..interp.memory import GlobalLayout, MemoryState
from ..interp.ops import (
    default_value,
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
    format_output,
)
from ..ir.bitutils import mask, to_signed
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Output,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .profile import ProgramProfile

_MASK64 = mask(64)
_ADDRESS_BITS = 64

#: Domain separation for per-site sampling substreams (<=16 bytes).
_SITE_PERSON = b"repro-prof-site"


def _site_seed(seed: int, function_name: str, local_index: int) -> int:
    """Deterministic sub-seed for one instruction site.

    Sampling used to draw from one shared RNG stream, so inserting an
    instruction *anywhere* perturbed the reservoirs of every later
    instruction in the run.  Keying each site's stream on its
    (function, local position) — never the module-wide iid — makes the
    sampled slices of untouched functions bit-identical across
    transforms, the property function-granular profile digests need.
    Same substream protocol as :mod:`repro.fi.seeds`.
    """
    digest = blake2b(
        f"{seed}:{function_name}:{local_index}".encode(),
        digest_size=8, person=_SITE_PERSON,
    ).digest()
    return int.from_bytes(digest, "big")


class ProfilingInterpreter:
    """Runs a module once and produces a :class:`ProgramProfile`."""

    def __init__(self, module: Module, sample_cap: int = 32,
                 max_dynamic: int = 50_000_000, seed: int = 2018):
        if not module.is_finalized:
            raise ValueError("finalize the module before profiling")
        self.module = module
        self.sample_cap = sample_cap
        self.max_dynamic = max_dynamic
        self.seed = seed
        self.layout = GlobalLayout(module)
        #: iid -> (function name, function-local index): the stable site
        #: identity each sampling substream is keyed on.
        self.sites: dict[int, tuple[str, int]] = {}
        for function in module.functions.values():
            for local, inst in enumerate(function.instructions()):
                self.sites[inst.iid] = (function.name, local)

    # ------------------------------------------------------------------

    def run(self) -> tuple[ProgramProfile, list[str]]:
        """Profile one fault-free execution; returns (profile, outputs)."""
        started = time.perf_counter()
        profile = ProgramProfile()
        memory = MemoryState(self.layout)
        outputs: list[str] = []
        # addr -> [store_iid, set-of-reader-load-iids]
        last_writer: dict[int, list] = {}
        state = _ProfState(profile, memory, outputs, last_writer,
                           self.seed, self.sites, self.sample_cap,
                           self.max_dynamic)
        try:
            self._call(self.module.main, [], state)
        except RuntimeFault as fault:
            raise InterpreterBug(
                f"profiling run of {self.module.name} faulted: {fault}"
            ) from fault

        # Flush pending store instances for read-fraction accounting.
        for store_iid, readers in last_writer.values():
            state.finish_instance(store_iid, readers)
        profile.dynamic_count = state.dynamic_count
        profile.footprint_bytes = memory.footprint_bytes
        profile.memdep_stats.dynamic_dependencies = state.dynamic_deps
        profile.memdep_stats.static_edges = len(profile.mem_edges)
        profile.profiling_seconds = time.perf_counter() - started
        return profile, outputs

    # ------------------------------------------------------------------

    def _call(self, function, args: list, state: "_ProfState"):
        env: dict[int, object] = {}
        for formal, actual in zip(function.args, args):
            env[id(formal)] = actual
        allocas: dict[int, int] = {}
        owned: list[int] = []
        block = function.entry
        previous = None
        try:
            while True:
                phis = block.phis()
                if phis:
                    # Parallel copy semantics: read all, then bind.
                    values = [
                        self._value(phi.value_for(previous), env, state)
                        for phi in phis
                    ]
                    for phi, value in zip(phis, values):
                        state.tick(phi.iid)
                        env[id(phi)] = value
                next_block = None
                for inst in block.instructions[len(phis):]:
                    state.tick(inst.iid)
                    if isinstance(inst, Branch):
                        next_block = self._exec_branch(inst, env, state)
                        break
                    if isinstance(inst, Ret):
                        if inst.value is None:
                            return None
                        return self._value(inst.value, env, state)
                    self._exec(inst, env, state, allocas, owned)
                if next_block is None:
                    raise InterpreterBug(
                        f"block {block.name} fell through without terminator"
                    )
                previous = block
                block = next_block
        finally:
            state.memory.free(owned)

    def _value(self, value: Value, env: dict, state: "_ProfState"):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalVariable):
            return self.layout.addresses[value.name]
        if isinstance(value, (Argument,)) or True:
            try:
                return env[id(value)]
            except KeyError:
                raise InterpreterBug(f"unbound value {value!r}") from None

    def _exec_branch(self, inst: Branch, env, state):
        if not inst.is_conditional:
            return inst.true_block
        taken = bool(self._value(inst.cond, env, state))
        counts = state.profile.branch_counts.setdefault(inst.iid, [0, 0])
        counts[1 if taken else 0] += 1
        return inst.true_block if taken else inst.false_block

    # ------------------------------------------------------------------

    def _exec(self, inst, env, state: "_ProfState", allocas, owned) -> None:
        value_of = self._value
        if isinstance(inst, BinOp):
            a = value_of(inst.lhs, env, state)
            b = value_of(inst.rhs, env, state)
            state.sample_operands(inst.iid, (a, b))
            if inst.type.is_float:
                env[id(inst)] = eval_float_binop(inst.op, a, b, inst.type.bits)
            else:
                env[id(inst)] = eval_int_binop(inst.op, a, b, inst.type.bits)
        elif isinstance(inst, ICmp):
            a = value_of(inst.lhs, env, state)
            b = value_of(inst.rhs, env, state)
            state.sample_operands(inst.iid, (a, b))
            env[id(inst)] = eval_icmp(inst.predicate, a, b, inst.lhs.type.bits)
        elif isinstance(inst, FCmp):
            a = value_of(inst.lhs, env, state)
            b = value_of(inst.rhs, env, state)
            state.sample_operands(inst.iid, (a, b))
            env[id(inst)] = eval_fcmp(inst.predicate, a, b)
        elif isinstance(inst, Cast):
            value = value_of(inst.value, env, state)
            state.sample_operands(inst.iid, (value,))
            env[id(inst)] = eval_cast(
                inst.op, value, inst.value.type, inst.type
            )
        elif isinstance(inst, Alloca):
            address = allocas.get(inst.iid)
            if address is None:
                address, elements = state.memory.allocate_stack(
                    inst.count, inst.elem_type.size_bytes
                )
                allocas[inst.iid] = address
                owned.extend(elements)
            env[id(inst)] = address
        elif isinstance(inst, Load):
            address = value_of(inst.pointer, env, state)
            state.sample_memory_access(inst.iid, address)
            env[id(inst)] = state.memory.load(
                address, default_value(inst.type)
            )
            state.record_load(inst.iid, address)
        elif isinstance(inst, Store):
            address = value_of(inst.pointer, env, state)
            state.sample_memory_access(inst.iid, address)
            value = value_of(inst.value, env, state)
            previous = state.memory.cells.get(address)
            state.memory.store(address, value)
            state.record_store(inst.iid, address, value == previous)
        elif isinstance(inst, GetElementPtr):
            base = value_of(inst.base, env, state)
            index = to_signed(
                value_of(inst.index, env, state), inst.index.type.bits
            )
            env[id(inst)] = (base + index * inst.elem_size) & _MASK64
        elif isinstance(inst, Call):
            args = [value_of(arg, env, state) for arg in inst.args]
            if inst.callee in self.module.functions:
                result = self._call(
                    self.module.functions[inst.callee], args, state
                )
            elif is_intrinsic(inst.callee):
                result = call_intrinsic(inst.callee, args, inst.type)
            else:
                raise InterpreterBug(f"unknown callee {inst.callee}")
            if inst.has_result:
                env[id(inst)] = result
        elif isinstance(inst, Output):
            value = value_of(inst.value, env, state)
            state.outputs.append(
                format_output(value, inst.value.type, inst.precision)
            )
        elif isinstance(inst, Select):
            cond = bool(value_of(inst.cond, env, state))
            counts = state.profile.select_counts.setdefault(inst.iid, [0, 0])
            counts[1 if cond else 0] += 1
            true_value = value_of(inst.true_value, env, state)
            false_value = value_of(inst.false_value, env, state)
            state.sample_operands(
                inst.iid, (int(cond), true_value, false_value)
            )
            env[id(inst)] = true_value if cond else false_value
        elif isinstance(inst, Detect):
            pass  # never fires on a fault-free run
        else:
            raise InterpreterBug(f"cannot profile {inst!r}")


class _ProfState:
    """Mutable state threaded through the profiling walk."""

    __slots__ = (
        "profile", "memory", "outputs", "last_writer", "seed", "sites",
        "sample_cap", "max_dynamic", "dynamic_count", "dynamic_deps",
        "_rngs",
    )

    def __init__(self, profile, memory, outputs, last_writer, seed,
                 sites, sample_cap, max_dynamic):
        self.profile = profile
        self.memory = memory
        self.outputs = outputs
        self.last_writer = last_writer
        self.seed = seed
        self.sites = sites
        self.sample_cap = sample_cap
        self.max_dynamic = max_dynamic
        self.dynamic_count = 0
        self.dynamic_deps = 0
        self._rngs: dict[int, random.Random] = {}

    def rng_for(self, iid: int) -> random.Random:
        """This instruction site's private sampling substream."""
        rng = self._rngs.get(iid)
        if rng is None:
            name, local = self.sites[iid]
            rng = random.Random(_site_seed(self.seed, name, local))
            self._rngs[iid] = rng
        return rng

    def tick(self, iid: int) -> None:
        self.dynamic_count += 1
        if self.dynamic_count > self.max_dynamic:
            raise InterpreterBug("profiling run exceeded dynamic budget")
        counts = self.profile.inst_counts
        counts[iid] = counts.get(iid, 0) + 1

    def sample_operands(self, iid: int, operands: tuple) -> None:
        """Reservoir-sample the operand tuple of one dynamic instance."""
        reservoir = self.profile.operand_samples.setdefault(iid, [])
        seen = self.profile.inst_counts[iid]  # includes this instance
        if len(reservoir) < self.sample_cap:
            reservoir.append(operands)
            return
        slot = self.rng_for(iid).randrange(seen)
        if slot < self.sample_cap:
            reservoir[slot] = operands

    def sample_memory_access(self, iid: int, address: int) -> None:
        """Sample P(crash) over single-bit flips of this access address."""
        reservoir = self.profile.crash_prob_samples.setdefault(iid, [])
        seen = self.profile.inst_counts[iid]
        if len(reservoir) >= self.sample_cap:
            slot = self.rng_for(iid).randrange(seen)
            if slot >= self.sample_cap:
                return
        else:
            slot = len(reservoir)
        invalid = 0
        valid = self.memory.valid
        for bit in range(_ADDRESS_BITS):
            if (address ^ (1 << bit)) not in valid:
                invalid += 1
        crash_prob = invalid / _ADDRESS_BITS
        if slot < len(reservoir):
            reservoir[slot] = crash_prob
        else:
            reservoir.append(crash_prob)

    def record_store(self, iid: int, address: int,
                     silent: bool = False) -> None:
        profile = self.profile
        previous = self.last_writer.get(address)
        if previous is not None:
            self.finish_instance(previous[0], previous[1])
        self.last_writer[address] = [iid, None]
        profile.store_instances[iid] = profile.store_instances.get(iid, 0) + 1
        if silent:
            profile.silent_stores[iid] = profile.silent_stores.get(iid, 0) + 1

    def finish_instance(self, store_iid: int, readers) -> None:
        """Close out one store instance: record who read it."""
        profile = self.profile
        if readers:
            profile.store_instances_read[store_iid] = (
                profile.store_instances_read.get(store_iid, 0) + 1
            )
            key = (store_iid, frozenset(readers))
        else:
            key = (store_iid, frozenset())
        sets = profile.store_reader_sets
        sets[key] = sets.get(key, 0) + 1

    def record_load(self, iid: int, address: int) -> None:
        entry = self.last_writer.get(address)
        if entry is None:
            return
        self.dynamic_deps += 1
        key = (entry[0], iid)
        edges = self.profile.mem_edges
        edges[key] = edges.get(key, 0) + 1
        if entry[1] is None:
            entry[1] = {iid}
        else:
            entry[1].add(iid)
