"""The program profile: everything TRIDENT's inference phase consumes.

This is the output of the profiling phase (Sec. IV-A): instruction
execution counts, branch probabilities, sampled operand values, memory
dependency edges (already pruned to static store→load pairs, Sec. IV-E),
and memory-footprint-derived crash probabilities for address-corrupting
faults (Sec. IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemDepStats:
    """Aggregate statistics of the memory dependency pruning (Fig. 7)."""

    dynamic_dependencies: int = 0
    static_edges: int = 0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of dynamic load→store dependencies collapsed away."""
        if self.dynamic_dependencies == 0:
            return 0.0
        kept = min(self.static_edges, self.dynamic_dependencies)
        return 1.0 - kept / self.dynamic_dependencies


@dataclass
class ProgramProfile:
    """Dynamic execution facts for one (program, input) pair."""

    #: Execution count per static instruction id.
    inst_counts: dict[int, int] = field(default_factory=dict)
    #: Conditional branch iid -> [false_count, true_count].
    branch_counts: dict[int, list[int]] = field(default_factory=dict)
    #: Select iid -> [false_count, true_count].
    select_counts: dict[int, list[int]] = field(default_factory=dict)
    #: iid -> reservoir of operand tuples observed at runtime.
    operand_samples: dict[int, list[tuple]] = field(default_factory=dict)
    #: Memory-access iid -> sampled P(crash | address bit flip).
    crash_prob_samples: dict[int, list[float]] = field(default_factory=dict)
    #: (store_iid, load_iid) -> number of dynamic dependencies observed.
    mem_edges: dict[tuple[int, int], int] = field(default_factory=dict)
    #: store iid -> total dynamic instances.
    store_instances: dict[int, int] = field(default_factory=dict)
    #: store iid -> instances whose value was read at least once.
    store_instances_read: dict[int, int] = field(default_factory=dict)
    #: store iid -> instances that rewrote the value already in the cell
    #: ("silent stores": flipping their execution is coincidentally
    #: correct — the lucky-store effect of Sec. VII-A).
    silent_stores: dict[int, int] = field(default_factory=dict)
    #: (store iid, frozenset of reader load iids) -> instance count.
    #: Records, per store instance, exactly which loads observed it —
    #: the statistic fm needs to combine multiple readers correctly
    #: (exclusive across instance partitions, joint within one).
    store_reader_sets: dict[tuple[int, frozenset], int] = field(
        default_factory=dict
    )
    #: Total dynamic instructions of the profiled run.
    dynamic_count: int = 0
    #: Peak memory footprint in bytes.
    footprint_bytes: int = 0
    #: Memory dependency pruning statistics.
    memdep_stats: MemDepStats = field(default_factory=MemDepStats)
    #: Wall-clock seconds the profiling run took (Fig. 6/7 cost model).
    profiling_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Accessors used by the model
    # ------------------------------------------------------------------

    def count(self, iid: int) -> int:
        return self.inst_counts.get(iid, 0)

    def execution_probability(self, iid: int, relative_to: int) -> float:
        """exec(iid) / exec(relative_to), clamped to [0, 1]."""
        base = self.count(relative_to)
        if base == 0:
            return 0.0
        return min(1.0, self.count(iid) / base)

    def branch_taken_probability(self, iid: int) -> float:
        """P(branch takes its True direction), 0.5 if never executed."""
        counts = self.branch_counts.get(iid)
        if not counts or sum(counts) == 0:
            return 0.5
        return counts[1] / sum(counts)

    def branch_direction_probability(self, iid: int, direction: bool) -> float:
        taken = self.branch_taken_probability(iid)
        return taken if direction else 1.0 - taken

    def select_true_probability(self, iid: int) -> float:
        counts = self.select_counts.get(iid)
        if not counts or sum(counts) == 0:
            return 0.5
        return counts[1] / sum(counts)

    def samples(self, iid: int) -> list[tuple]:
        return self.operand_samples.get(iid, [])

    def crash_probability(self, iid: int) -> float:
        """Mean sampled P(crash) of a memory access with a corrupted address."""
        samples = self.crash_prob_samples.get(iid)
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def loads_reading(self, store_iid: int) -> list[tuple[int, float]]:
        """(load_iid, weight) edges out of a store in the pruned graph.

        The weight is the fraction of the store's dynamic instances whose
        value that load observed — the aggregate dependency between the
        symmetric loops of Sec. IV-E.
        """
        total = self.store_instances.get(store_iid, 0)
        if total == 0:
            return []
        edges = []
        for (s_iid, l_iid), count in self.mem_edges.items():
            if s_iid == store_iid:
                edges.append((l_iid, min(1.0, count / total)))
        return edges

    def reader_set_distribution(
        self, store_iid: int,
    ) -> list[tuple[frozenset, float]]:
        """Distribution over which load sets observe one store instance.

        Returns (reader set, fraction of instances) pairs; the empty set
        (instances overwritten or never read) is included, so fractions
        sum to 1 for any store with recorded instances.
        """
        total = self.store_instances.get(store_iid, 0)
        if total == 0:
            return []
        out = []
        seen = 0
        for (s_iid, readers), count in self.store_reader_sets.items():
            if s_iid == store_iid:
                out.append((readers, count / total))
                seen += count
        if seen < total:  # instances still live at a function exit
            out.append((frozenset(), (total - seen) / total))
        return out

    def silent_store_fraction(self, store_iid: int) -> float:
        """Fraction of a store's instances that rewrote the same value."""
        total = self.store_instances.get(store_iid, 0)
        if total == 0:
            return 0.0
        return self.silent_stores.get(store_iid, 0) / total

    def store_read_fraction(self, store_iid: int) -> float:
        """Fraction of a store's instances ever reloaded (rest are dead)."""
        total = self.store_instances.get(store_iid, 0)
        if total == 0:
            return 0.0
        return self.store_instances_read.get(store_iid, 0) / total
