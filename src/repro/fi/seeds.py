"""Deterministic seed protocol for fault-injection campaigns.

Every injection run of a campaign draws its randomness from its own
substream, derived from ``(campaign_seed, run_index)`` with a keyed
BLAKE2b hash.  Two properties follow:

* **reproducibility** — run *i* of a campaign produces the same
  injection no matter which worker executes it, how runs are chunked
  into rounds, or in which order chunks complete.  Campaign counts are
  therefore bit-identical across any worker count and chunk size.
* **independence** — substreams for distinct run indices start from
  distinct 64-bit seeds (collision probability ~2^-64 per pair), so
  runs are statistically independent samples.

This replaces the older protocol of threading one ``random.Random``
through all runs of a campaign, whose draws depended on execution
order — the shared-state coupling that made campaigns impossible to
parallelise or resume.

The derivation is hash-based (not ``hash()``-based), so it is stable
across processes, platforms, and ``PYTHONHASHSEED`` settings.
"""

from __future__ import annotations

import hashlib
import random

#: Domain-separation tag so these seeds can never collide with another
#: BLAKE2b use in the codebase (personalization, <= 16 bytes).
_PERSON = b"repro-fi-substrm"


def seed_for(campaign_seed: int, run_index: int) -> int:
    """The 64-bit substream seed of run ``run_index`` of a campaign.

    ``campaign_seed`` may be any Python int (negative and arbitrarily
    large values included); ``run_index`` must be >= 0.
    """
    if run_index < 0:
        raise ValueError(f"run_index must be >= 0, got {run_index}")
    payload = f"{campaign_seed}:{run_index}".encode("ascii")
    digest = hashlib.blake2b(payload, digest_size=8, person=_PERSON).digest()
    return int.from_bytes(digest, "big")


def rng_for(campaign_seed: int, run_index: int) -> random.Random:
    """A fresh generator positioned at the start of one run's substream."""
    return random.Random(seed_for(campaign_seed, run_index))
