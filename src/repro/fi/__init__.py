"""Fault injection: the ground-truth baseline TRIDENT is compared against."""

from .campaign import (
    BENIGN,
    CAUGHT,
    CRASHED,
    CampaignResult,
    FaultInjector,
    HUNG,
    OUTCOMES,
    SDC,
)

__all__ = [
    "BENIGN", "CAUGHT", "CRASHED", "CampaignResult", "FaultInjector",
    "HUNG", "OUTCOMES", "SDC",
]
