"""Fault injection: the ground-truth baseline TRIDENT is compared against."""

from .campaign import (
    BENIGN,
    CAUGHT,
    CRASHED,
    HUNG,
    OUTCOMES,
    SDC,
    CampaignResult,
    FaultInjector,
)
from .parallel import (
    CampaignInterrupted,
    CampaignSettings,
    ModuleSpec,
    ParallelCampaign,
    materialize_injector,
    run_cached_campaign,
    run_parallel_campaign,
    run_shard,
)
from .seeds import rng_for, seed_for

__all__ = [
    "BENIGN", "CAUGHT", "CRASHED", "CampaignInterrupted", "CampaignResult",
    "CampaignSettings", "FaultInjector", "HUNG", "ModuleSpec", "OUTCOMES",
    "ParallelCampaign", "SDC", "materialize_injector", "rng_for",
    "run_cached_campaign", "run_parallel_campaign", "run_shard", "seed_for",
]
