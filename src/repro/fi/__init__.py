"""Fault injection: the ground-truth baseline TRIDENT is compared against."""

from .campaign import (
    BENIGN,
    CAUGHT,
    CRASHED,
    HUNG,
    OUTCOMES,
    SDC,
    CampaignResult,
    FaultInjector,
)
from .parallel import (
    CampaignSettings,
    ModuleSpec,
    ParallelCampaign,
    materialize_injector,
    run_cached_campaign,
    run_parallel_campaign,
)
from .seeds import rng_for, seed_for

__all__ = [
    "BENIGN", "CAUGHT", "CRASHED", "CampaignResult", "CampaignSettings",
    "FaultInjector", "HUNG", "ModuleSpec", "OUTCOMES", "ParallelCampaign",
    "SDC", "materialize_injector", "rng_for", "run_cached_campaign",
    "run_parallel_campaign", "seed_for",
]
