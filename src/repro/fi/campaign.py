"""Fault injection campaigns (the paper's FI baseline, LLFI-style).

One campaign = N independent runs; each run injects a single bit flip
into the destination register of one dynamic instruction instance,
sampled uniformly over all executed instances whose result is used
(guaranteeing activation, Sec. V-A2), then executes to completion and
classifies the outcome against a golden run.
"""

from __future__ import annotations

import math
import random
import time
from bisect import bisect_right
from dataclasses import dataclass, field

from ..interp.codegen import TIER_BATCH
from ..interp.engine import ExecutionEngine, Injection
from ..interp.result import CRASH, DETECTED, HANG
from ..ir.module import Module
from .seeds import rng_for, seed_for

#: Outcome labels used throughout the evaluation.
SDC = "sdc"
BENIGN = "benign"
CRASHED = "crash"
HUNG = "hang"
CAUGHT = "detected"

OUTCOMES = (SDC, CRASHED, HUNG, BENIGN, CAUGHT)


@dataclass
class CampaignResult:
    """Aggregated outcome counts of one FI campaign.

    ``counts``/``wall_seconds``/``cpu_seconds`` are additive under
    :meth:`merge`; the remaining fields describe the campaign that
    produced the result (how many runs were requested, whether the
    confidence-interval stopping rule fired, how many rounds ran, how
    many workers executed it) and are set by the campaign driver after
    merging, not by ``merge`` itself.
    """

    counts: dict[str, int] = field(default_factory=lambda: {o: 0 for o in OUTCOMES})
    #: End-to-end elapsed time observed by the campaign driver.
    wall_seconds: float = 0.0
    #: Summed per-run execution time across all workers (== wall_seconds
    #: for a serial campaign).
    cpu_seconds: float = 0.0
    runs_requested: int = 0
    stopped_early: bool = False
    rounds: int = 0
    workers: int = 1
    #: True when a parallel campaign lost its worker pool and fell back
    #: to in-process serial execution (no counts are ever lost).
    degraded: bool = False
    #: True when the result was served from the artifact cache instead
    #: of being executed (counts are bit-identical either way).
    from_cache: bool = False
    #: Interpreter throughput: dynamic instructions actually executed
    #: (suffixes + golden capture passes) and instructions *not*
    #: re-executed because trials forked from golden-prefix snapshots.
    #: Additive under :meth:`merge`, like the counts.
    dynamic_instructions: int = 0
    skipped_instructions: int = 0
    #: Estimated bytes held by the snapshot sets built for this result
    #: (counted once per capture pass, summed across workers).
    snapshot_bytes: int = 0
    #: True when at least part of the campaign ran in checkpoint mode.
    checkpointed: bool = False
    #: True when a checkpoint path failed and trials fell back to cold
    #: full runs (counts are bit-identical either way).
    checkpoint_degraded: bool = False
    #: Interpreter tier that executed the campaign ("codegen",
    #: "closure" or "batch"); empty for results that never ran (e.g.
    #: bare merges).
    interp_tier: str = ""
    #: Codegen tier statistics from the executing engine: functions
    #: successfully compiled to generated source, and functions that
    #: fell back to the closure tier.  Per-engine gauges, so ``merge``
    #: takes the max rather than summing across workers.
    codegen_functions: int = 0
    codegen_fallbacks: int = 0
    #: Batch tier statistics: the lane count groups ran with (gauge,
    #: merged by max), lanes that left lockstep and drained on the
    #: scalar tier, and whole groups that failed and re-ran their
    #: trials scalar (counts are bit-identical either way).
    batch_lanes: int = 0
    batch_divergences: int = 0
    batch_fallbacks: int = 0
    #: Reconvergence observability: divergent branches whose sides were
    #: re-merged in lockstep (``batch_reconverged``), lanes that left
    #: lockstep for the scalar drain anyway (``batch_drains``), and the
    #: dynamic instructions those drained lanes executed scalar
    #: (``drain_instructions`` ⊆ ``dynamic_instructions``).
    batch_reconverged: int = 0
    batch_drains: int = 0
    drain_instructions: int = 0
    #: Seed ranges (start, count) whose counts this result includes —
    #: set by the shard scheduler, so an interrupted campaign can report
    #: exactly which runs completed (see ``repro.sched.executor``).
    completed_ranges: list = field(default_factory=list)
    #: True when the campaign was cut short (KeyboardInterrupt) and the
    #: counts cover only ``completed_ranges``; never cached.
    interrupted: bool = False
    #: Shards replayed from partial-campaign checkpoints in the shared
    #: result store instead of being re-executed.
    shards_resumed: int = 0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def instructions_per_second(self) -> float:
        """Executed dynamic instructions per summed CPU second."""
        if self.cpu_seconds <= 0.0:
            return 0.0
        return self.dynamic_instructions / self.cpu_seconds

    def probability(self, outcome: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    @property
    def drain_fraction(self) -> float:
        """Share of executed dynamic instructions spent on the scalar
        drain path — the batch tier's residual divergence cost."""
        if self.dynamic_instructions <= 0:
            return 0.0
        return self.drain_instructions / self.dynamic_instructions

    @property
    def sdc_probability(self) -> float:
        return self.probability(SDC)

    @property
    def crash_probability(self) -> float:
        return self.probability(CRASHED)

    @property
    def benign_probability(self) -> float:
        return self.probability(BENIGN)

    @property
    def detected_probability(self) -> float:
        return self.probability(CAUGHT)

    def margin_of_error(self, outcome: str = SDC,
                        confidence_z: float = 1.96) -> float:
        """Half-width of the binomial confidence interval (default 95%)."""
        n = self.total
        if n == 0:
            return 0.0
        p = self.probability(outcome)
        return confidence_z * math.sqrt(p * (1.0 - p) / n)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult()
        for outcome in OUTCOMES:
            merged.counts[outcome] = self.counts[outcome] + other.counts[outcome]
        merged.wall_seconds = self.wall_seconds + other.wall_seconds
        merged.cpu_seconds = self.cpu_seconds + other.cpu_seconds
        merged.dynamic_instructions = (
            self.dynamic_instructions + other.dynamic_instructions
        )
        merged.skipped_instructions = (
            self.skipped_instructions + other.skipped_instructions
        )
        merged.snapshot_bytes = self.snapshot_bytes + other.snapshot_bytes
        merged.checkpointed = self.checkpointed or other.checkpointed
        merged.checkpoint_degraded = (
            self.checkpoint_degraded or other.checkpoint_degraded
        )
        merged.interp_tier = self.interp_tier or other.interp_tier
        merged.codegen_functions = max(
            self.codegen_functions, other.codegen_functions
        )
        merged.codegen_fallbacks = max(
            self.codegen_fallbacks, other.codegen_fallbacks
        )
        merged.batch_lanes = max(self.batch_lanes, other.batch_lanes)
        merged.batch_divergences = (
            self.batch_divergences + other.batch_divergences
        )
        merged.batch_fallbacks = self.batch_fallbacks + other.batch_fallbacks
        merged.batch_reconverged = (
            self.batch_reconverged + other.batch_reconverged
        )
        merged.batch_drains = self.batch_drains + other.batch_drains
        merged.drain_instructions = (
            self.drain_instructions + other.drain_instructions
        )
        return merged

    # -- artifact-cache serialization ----------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form for the artifact cache (see repro.cache)."""
        return {
            "counts": dict(self.counts),
            "cpu_seconds": self.cpu_seconds,
            "runs_requested": self.runs_requested,
            "stopped_early": self.stopped_early,
            "rounds": self.rounds,
            "dynamic_instructions": self.dynamic_instructions,
            "skipped_instructions": self.skipped_instructions,
            "snapshot_bytes": self.snapshot_bytes,
            "checkpointed": self.checkpointed,
            "interp_tier": self.interp_tier,
            "codegen_functions": self.codegen_functions,
            "codegen_fallbacks": self.codegen_fallbacks,
            "batch_lanes": self.batch_lanes,
            "batch_divergences": self.batch_divergences,
            "batch_fallbacks": self.batch_fallbacks,
            "batch_reconverged": self.batch_reconverged,
            "batch_drains": self.batch_drains,
            "drain_instructions": self.drain_instructions,
            "completed_ranges": [list(r) for r in self.completed_ranges],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a cached campaign; marks the result ``from_cache``.

        Wall-clock and worker metadata describe the run that *produced*
        the counts, not the cache read, so they reset to the trivial
        values of a zero-cost replay.
        """
        counts = {outcome: 0 for outcome in OUTCOMES}
        for outcome, n in data["counts"].items():
            if outcome not in counts:
                raise ValueError(f"unknown campaign outcome {outcome!r}")
            counts[outcome] = int(n)
        result = cls(
            counts=counts,
            cpu_seconds=float(data["cpu_seconds"]),
            runs_requested=int(data["runs_requested"]),
            stopped_early=bool(data["stopped_early"]),
            rounds=int(data["rounds"]),
            # Throughput fields describe the producing run; entries
            # written before they existed replay as zeros.
            dynamic_instructions=int(data.get("dynamic_instructions", 0)),
            skipped_instructions=int(data.get("skipped_instructions", 0)),
            snapshot_bytes=int(data.get("snapshot_bytes", 0)),
            checkpointed=bool(data.get("checkpointed", False)),
            interp_tier=str(data.get("interp_tier", "")),
            codegen_functions=int(data.get("codegen_functions", 0)),
            codegen_fallbacks=int(data.get("codegen_fallbacks", 0)),
            batch_lanes=int(data.get("batch_lanes", 0)),
            batch_divergences=int(data.get("batch_divergences", 0)),
            batch_fallbacks=int(data.get("batch_fallbacks", 0)),
            batch_reconverged=int(data.get("batch_reconverged", 0)),
            batch_drains=int(data.get("batch_drains", 0)),
            drain_instructions=int(data.get("drain_instructions", 0)),
            completed_ranges=[
                (int(s), int(c))
                for s, c in data.get("completed_ranges", [])
            ],
        )
        result.from_cache = True
        return result


class FaultInjector:
    """Runs statistical and per-instruction FI campaigns on one module.

    With ``checkpoint`` enabled (the default) the first trial triggers
    one instrumented golden pass that captures golden-prefix snapshots
    (:mod:`repro.interp.checkpoint`); every trial then restores the
    nearest snapshot at-or-before its injection point and executes only
    the program suffix.  Outcomes are bit-identical to cold full runs —
    only wall-clock changes.  Any unexpected failure in the checkpoint
    path permanently falls back to cold runs for this injector
    (``checkpoint_degraded``), mirroring the worker-pool degradation
    policy in :mod:`repro.fi.parallel`: correctness never depends on
    the optimization.
    """

    def __init__(self, module: Module, engine: ExecutionEngine | None = None,
                 hang_multiplier: int = 10, golden=None,
                 checkpoint: bool = True, checkpoint_stride: int = 0,
                 max_snapshots: int = 192, interp_tier: str | None = None,
                 batch_lanes: int = 0):
        self.module = module
        self.engine = engine or ExecutionEngine(module, tier=interp_tier)
        self.checkpoint = checkpoint
        self.checkpoint_stride = checkpoint_stride
        self.max_snapshots = max_snapshots
        self.checkpoint_degraded = False
        #: Lanes per lockstep group on the batch tier; <= 0 picks the
        #: tier's default.  Irrelevant (and harmless) on scalar tiers.
        self.batch_lanes = batch_lanes
        self.batch_divergences = 0
        self.batch_fallbacks = 0
        self.batch_reconverged = 0
        self.batch_drains = 0
        self._capture = None
        # ``golden`` may be a cached GoldenSummary (see repro.cache),
        # skipping the fault-free reference execution entirely — the
        # main per-worker saving when a campaign re-materializes the
        # module in a fresh process.
        self.golden = golden if golden is not None else self.engine.golden()
        self._golden_outputs = self.golden.outputs
        counts = self.golden.instruction_counts()
        # Eligible targets: executed instructions with a destination
        # register whose value is used by at least one other instruction.
        self.target_iids: list[int] = []
        self.target_counts: list[int] = []
        cumulative = 0
        self._cumulative: list[int] = []
        for inst in module.instructions():
            if not inst.has_result or not inst.users:
                continue
            count = counts.get(inst.iid, 0)
            if count == 0:
                continue
            self.target_iids.append(inst.iid)
            self.target_counts.append(count)
            cumulative += count
            self._cumulative.append(cumulative)
        if not self.target_iids:
            raise ValueError(f"{module.name}: no injectable instructions")
        self.total_dynamic_targets = cumulative
        self.hang_budget = max(
            10_000, hang_multiplier * self.golden.dynamic_count
        )

    # ------------------------------------------------------------------

    def sample_injection(self, rng: random.Random) -> Injection:
        """One fault, uniform over all eligible dynamic instances."""
        pick = rng.randrange(self.total_dynamic_targets)
        index = bisect_right(self._cumulative, pick)
        iid = self.target_iids[index]
        occurrence = rng.randint(1, self.target_counts[index])
        bits = self.module.instruction(iid).type.bits
        return Injection(iid, occurrence, rng.randrange(bits))

    def injection_for(self, iid: int, rng: random.Random) -> Injection:
        """One fault targeted at a specific static instruction."""
        try:
            index = self.target_iids.index(iid)
        except ValueError:
            raise ValueError(
                f"instruction #{iid} is not an eligible injection target"
            ) from None
        occurrence = rng.randint(1, self.target_counts[index])
        bits = self.module.instruction(iid).type.bits
        return Injection(iid, occurrence, rng.randrange(bits))

    # -- interpreter-tier plumbing -------------------------------------

    def configure_tier(self, tier: str | None) -> None:
        """(Re)select the interpreter tier for subsequent trials.

        Pass ``None`` to keep the engine's current tier.  Like
        :meth:`configure_checkpoints`, this is cheap to call per span —
        switching tiers flips a dispatch flag on the shared engine
        without recompiling anything.
        """
        if tier is not None:
            self.engine.configure_tier(tier)

    def configure_batch(self, lanes: int) -> None:
        """Set the lockstep group width for subsequent batch-tier spans."""
        self.batch_lanes = lanes

    def _batch_active(self) -> bool:
        """True when trials should run as lockstep groups.

        The batch tier degrades to plain codegen execution when numpy
        is not installed (the package's base dependencies are empty) —
        counts are bit-identical either way, so this mirrors the
        checkpoint/worker-pool degradation policy.
        """
        if self.engine.tier != TIER_BATCH:
            return False
        from ..interp.batch import HAVE_NUMPY
        return HAVE_NUMPY

    def _effective_lanes(self) -> int:
        if self.batch_lanes > 0:
            return self.batch_lanes
        from ..interp.batch import DEFAULT_BATCH_LANES
        return DEFAULT_BATCH_LANES

    def _stamp_tier(self, result: CampaignResult) -> None:
        """Record which tier executed a result plus its codegen stats."""
        result.interp_tier = self.engine.tier
        result.codegen_functions = self.engine.codegen_functions
        result.codegen_fallbacks = self.engine.codegen_fallbacks

    # -- checkpoint plumbing -------------------------------------------

    def configure_checkpoints(self, enabled: bool, stride: int = 0) -> None:
        """(Re)configure suffix-only execution for subsequent trials.

        Campaign drivers call this per span; the capture set survives
        reconfiguration unless the stride changes, so a worker pays for
        at most one golden pass per (module, stride).
        """
        if stride != self.checkpoint_stride:
            self._capture = None
            self.checkpoint_stride = stride
        if enabled and not self.checkpoint:
            self.checkpoint_degraded = False
        self.checkpoint = enabled

    def checkpoints(self):
        """The lazily-built GoldenCapture, or None when disabled/degraded."""
        if not self.checkpoint:
            return None
        if self._capture is None:
            stride = self.checkpoint_stride
            if stride <= 0:
                stride = max(
                    1, self.golden.dynamic_count // self.max_snapshots
                )
            try:
                self._capture = self.engine.capture(
                    stride, self.max_snapshots
                )
            except Exception:
                self.checkpoint = False
                self.checkpoint_degraded = True
                return None
        return self._capture

    def _classify(self, result) -> str:
        if result.outcome == CRASH:
            return CRASHED
        if result.outcome == HANG:
            return HUNG
        if result.outcome == DETECTED:
            return CAUGHT
        if result.outputs != self._golden_outputs:
            return SDC
        return BENIGN

    def _execute_trial(self, injection: Injection, capture,
                       snapshot) -> tuple[str, int, int]:
        """One trial -> (outcome, executed, skipped) dynamic instructions."""
        if capture is not None and snapshot is not None and self.checkpoint:
            try:
                result = capture.resume(
                    snapshot, injection, budget=self.hang_budget
                )
            except Exception:
                # Legitimate fault outcomes are classified inside
                # resume; anything escaping is a checkpoint bug — fall
                # back to cold runs for good rather than risk counts.
                self.checkpoint = False
                self.checkpoint_degraded = True
            else:
                return (
                    self._classify(result),
                    result.dynamic_count - snapshot.dynamic_count,
                    snapshot.dynamic_count,
                )
        result = self.engine.run(injection, budget=self.hang_budget)
        return self._classify(result), result.dynamic_count, 0

    def run_one(self, injection: Injection) -> str:
        """Execute once with the fault armed and classify the outcome."""
        capture = self.checkpoints()
        snapshot = (
            capture.snapshot_for(injection) if capture is not None else None
        )
        return self._execute_trial(injection, capture, snapshot)[0]

    # ------------------------------------------------------------------

    def run_span(self, start: int, count: int,
                 campaign_seed: int) -> CampaignResult:
        """Execute runs [start, start+count) of a seeded campaign.

        Each run draws from its own substream (see :mod:`repro.fi.seeds`),
        so a span's counts depend only on the campaign seed and the run
        indices it covers — never on which process executes it or what
        ran before it.  Campaign drivers partition [0, n) into spans.

        All injections are sampled up front (so counts cannot depend on
        execution order), then — in checkpoint mode — sorted by their
        fork point so consecutive trials restore from the same snapshot
        while its memory image is hot in cache.
        """
        result = CampaignResult()
        started = time.perf_counter()
        trials = [
            self.sample_injection(rng_for(campaign_seed, run_index))
            for run_index in range(start, start + count)
        ]
        had_capture = self._capture is not None
        capture = self.checkpoints()
        if capture is not None and not had_capture:
            # Account the instrumented golden pass this span paid for.
            result.snapshot_bytes += capture.total_bytes
            result.dynamic_instructions += capture.result.dynamic_count
        if capture is not None:
            scheduled = [
                (capture.snapshot_for(injection), injection)
                for injection in trials
            ]
            scheduled.sort(
                key=lambda pair: pair[0].dynamic_count if pair[0] else 0
            )
        else:
            scheduled = [(None, injection) for injection in trials]
        if self._batch_active():
            self._run_scheduled_batch(scheduled, capture, result)
        else:
            for snapshot, injection in scheduled:
                outcome, executed, skipped = self._execute_trial(
                    injection, capture, snapshot
                )
                result.counts[outcome] += 1
                result.dynamic_instructions += executed
                result.skipped_instructions += skipped
        result.checkpointed = capture is not None
        result.checkpoint_degraded = self.checkpoint_degraded
        self._stamp_tier(result)
        elapsed = time.perf_counter() - started
        result.wall_seconds = elapsed
        result.cpu_seconds = elapsed
        return result

    def _run_scheduled_batch(self, scheduled, capture,
                             result: CampaignResult) -> None:
        """Execute a span's scheduled trials as lockstep groups.

        Consecutive trials of the (fork-point-sorted) schedule share a
        group; the group restores from the *earliest* lane's snapshot,
        which is sound for every lane because occurrence prefixes are
        monotone along the golden trace.  A group that fails for any
        reason re-runs its trials one by one on the scalar path
        (``batch_fallbacks``) — counts are never lost or changed.
        """
        lanes = self._effective_lanes()
        runner = self.engine.batch_runner()
        result.batch_lanes = max(result.batch_lanes, lanes)
        for start in range(0, len(scheduled), lanes):
            chunk = scheduled[start:start + lanes]
            snapshot = chunk[0][0]
            trials = [injection for _snapshot, injection in chunk]
            try:
                if (snapshot is not None and capture is not None
                        and self.checkpoint):
                    occurrences = [
                        capture.prefix_occurrence(snapshot, injection.iid)
                        for injection in trials
                    ]
                    group = runner.run_group(
                        trials, snapshot=snapshot,
                        base_outputs=capture.result.outputs[
                            : snapshot.outputs_len
                        ],
                        occurrences=occurrences, budget=self.hang_budget,
                    )
                else:
                    group = runner.run_group(
                        trials, budget=self.hang_budget
                    )
            except Exception:
                self.batch_fallbacks += 1
                result.batch_fallbacks += 1
                for snap, injection in chunk:
                    outcome, executed, skipped = self._execute_trial(
                        injection, capture, snap
                    )
                    result.counts[outcome] += 1
                    result.dynamic_instructions += executed
                    result.skipped_instructions += skipped
                continue
            for trial_result in group.results:
                result.counts[self._classify(trial_result)] += 1
            result.dynamic_instructions += group.executed
            result.skipped_instructions += group.skipped
            self.batch_divergences += group.divergences
            result.batch_divergences += group.divergences
            self.batch_reconverged += group.reconverged
            result.batch_reconverged += group.reconverged
            self.batch_drains += group.drains
            result.batch_drains += group.drains
            result.drain_instructions += group.drain_executed

    def campaign(self, n: int, seed: int = 0) -> CampaignResult:
        """Statistical campaign: n random faults over the whole program."""
        result = self.run_span(0, n, seed)
        result.runs_requested = n
        result.rounds = 1
        return result

    def per_instruction_campaign(
        self, iids, runs_per_instruction: int, seed: int = 0,
    ) -> dict[int, CampaignResult]:
        """Targeted campaign: fixed number of faults per static instruction.

        Each (instruction, run) pair has its own substream, keyed first
        by instruction id and then by run index, so per-instruction
        results are independent of the order instructions are visited.
        """
        results: dict[int, CampaignResult] = {}
        for iid in iids:
            instruction_seed = seed_for(seed, iid)
            result = CampaignResult()
            started = time.perf_counter()
            capture = self.checkpoints()
            for run_index in range(runs_per_instruction):
                rng = rng_for(instruction_seed, run_index)
                injection = self.injection_for(iid, rng)
                snapshot = (
                    capture.snapshot_for(injection)
                    if capture is not None else None
                )
                outcome, executed, skipped = self._execute_trial(
                    injection, capture, snapshot
                )
                result.counts[outcome] += 1
                result.dynamic_instructions += executed
                result.skipped_instructions += skipped
            result.checkpointed = capture is not None
            result.checkpoint_degraded = self.checkpoint_degraded
            self._stamp_tier(result)
            elapsed = time.perf_counter() - started
            result.wall_seconds = elapsed
            result.cpu_seconds = elapsed
            result.runs_requested = runs_per_instruction
            result.rounds = 1
            results[iid] = result
        return results

    def eligible_iids(self) -> list[int]:
        return list(self.target_iids)
