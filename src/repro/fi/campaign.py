"""Fault injection campaigns (the paper's FI baseline, LLFI-style).

One campaign = N independent runs; each run injects a single bit flip
into the destination register of one dynamic instruction instance,
sampled uniformly over all executed instances whose result is used
(guaranteeing activation, Sec. V-A2), then executes to completion and
classifies the outcome against a golden run.
"""

from __future__ import annotations

import math
import random
import time
from bisect import bisect_right
from dataclasses import dataclass, field

from ..interp.engine import ExecutionEngine, Injection
from ..interp.result import CRASH, DETECTED, HANG, OK
from ..ir.module import Module

#: Outcome labels used throughout the evaluation.
SDC = "sdc"
BENIGN = "benign"
CRASHED = "crash"
HUNG = "hang"
CAUGHT = "detected"

OUTCOMES = (SDC, CRASHED, HUNG, BENIGN, CAUGHT)


@dataclass
class CampaignResult:
    """Aggregated outcome counts of one FI campaign."""

    counts: dict[str, int] = field(default_factory=lambda: {o: 0 for o in OUTCOMES})
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def probability(self, outcome: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    @property
    def sdc_probability(self) -> float:
        return self.probability(SDC)

    @property
    def crash_probability(self) -> float:
        return self.probability(CRASHED)

    @property
    def benign_probability(self) -> float:
        return self.probability(BENIGN)

    @property
    def detected_probability(self) -> float:
        return self.probability(CAUGHT)

    def margin_of_error(self, outcome: str = SDC,
                        confidence_z: float = 1.96) -> float:
        """Half-width of the binomial confidence interval (default 95%)."""
        n = self.total
        if n == 0:
            return 0.0
        p = self.probability(outcome)
        return confidence_z * math.sqrt(p * (1.0 - p) / n)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult()
        for outcome in OUTCOMES:
            merged.counts[outcome] = self.counts[outcome] + other.counts[outcome]
        merged.wall_seconds = self.wall_seconds + other.wall_seconds
        return merged


class FaultInjector:
    """Runs statistical and per-instruction FI campaigns on one module."""

    def __init__(self, module: Module, engine: ExecutionEngine | None = None,
                 hang_multiplier: int = 10):
        self.module = module
        self.engine = engine or ExecutionEngine(module)
        self.golden = self.engine.golden()
        self._golden_outputs = self.golden.outputs
        counts = self.golden.instruction_counts()
        # Eligible targets: executed instructions with a destination
        # register whose value is used by at least one other instruction.
        self.target_iids: list[int] = []
        self.target_counts: list[int] = []
        cumulative = 0
        self._cumulative: list[int] = []
        for inst in module.instructions():
            if not inst.has_result or not inst.users:
                continue
            count = counts.get(inst.iid, 0)
            if count == 0:
                continue
            self.target_iids.append(inst.iid)
            self.target_counts.append(count)
            cumulative += count
            self._cumulative.append(cumulative)
        if not self.target_iids:
            raise ValueError(f"{module.name}: no injectable instructions")
        self.total_dynamic_targets = cumulative
        self.hang_budget = max(
            10_000, hang_multiplier * self.golden.dynamic_count
        )

    # ------------------------------------------------------------------

    def sample_injection(self, rng: random.Random) -> Injection:
        """One fault, uniform over all eligible dynamic instances."""
        pick = rng.randrange(self.total_dynamic_targets)
        index = bisect_right(self._cumulative, pick)
        iid = self.target_iids[index]
        occurrence = rng.randint(1, self.target_counts[index])
        bits = self.module.instruction(iid).type.bits
        return Injection(iid, occurrence, rng.randrange(bits))

    def injection_for(self, iid: int, rng: random.Random) -> Injection:
        """One fault targeted at a specific static instruction."""
        try:
            index = self.target_iids.index(iid)
        except ValueError:
            raise ValueError(
                f"instruction #{iid} is not an eligible injection target"
            ) from None
        occurrence = rng.randint(1, self.target_counts[index])
        bits = self.module.instruction(iid).type.bits
        return Injection(iid, occurrence, rng.randrange(bits))

    def run_one(self, injection: Injection) -> str:
        """Execute once with the fault armed and classify the outcome."""
        result = self.engine.run(injection, budget=self.hang_budget)
        if result.outcome == CRASH:
            return CRASHED
        if result.outcome == HANG:
            return HUNG
        if result.outcome == DETECTED:
            return CAUGHT
        if result.outputs != self._golden_outputs:
            return SDC
        return BENIGN

    # ------------------------------------------------------------------

    def campaign(self, n: int, seed: int = 0) -> CampaignResult:
        """Statistical campaign: n random faults over the whole program."""
        rng = random.Random(seed)
        result = CampaignResult()
        started = time.perf_counter()
        for _ in range(n):
            outcome = self.run_one(self.sample_injection(rng))
            result.counts[outcome] += 1
        result.wall_seconds = time.perf_counter() - started
        return result

    def per_instruction_campaign(
        self, iids, runs_per_instruction: int, seed: int = 0,
    ) -> dict[int, CampaignResult]:
        """Targeted campaign: fixed number of faults per static instruction."""
        rng = random.Random(seed)
        results: dict[int, CampaignResult] = {}
        for iid in iids:
            result = CampaignResult()
            started = time.perf_counter()
            for _ in range(runs_per_instruction):
                outcome = self.run_one(self.injection_for(iid, rng))
                result.counts[outcome] += 1
            result.wall_seconds = time.perf_counter() - started
            results[iid] = result
        return results

    def eligible_iids(self) -> list[int]:
        return list(self.target_iids)
