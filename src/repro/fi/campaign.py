"""Fault injection campaigns (the paper's FI baseline, LLFI-style).

One campaign = N independent runs; each run injects a single bit flip
into the destination register of one dynamic instruction instance,
sampled uniformly over all executed instances whose result is used
(guaranteeing activation, Sec. V-A2), then executes to completion and
classifies the outcome against a golden run.
"""

from __future__ import annotations

import math
import random
import time
from bisect import bisect_right
from dataclasses import dataclass, field

from ..interp.engine import ExecutionEngine, Injection
from ..interp.result import CRASH, DETECTED, HANG
from ..ir.module import Module
from .seeds import rng_for, seed_for

#: Outcome labels used throughout the evaluation.
SDC = "sdc"
BENIGN = "benign"
CRASHED = "crash"
HUNG = "hang"
CAUGHT = "detected"

OUTCOMES = (SDC, CRASHED, HUNG, BENIGN, CAUGHT)


@dataclass
class CampaignResult:
    """Aggregated outcome counts of one FI campaign.

    ``counts``/``wall_seconds``/``cpu_seconds`` are additive under
    :meth:`merge`; the remaining fields describe the campaign that
    produced the result (how many runs were requested, whether the
    confidence-interval stopping rule fired, how many rounds ran, how
    many workers executed it) and are set by the campaign driver after
    merging, not by ``merge`` itself.
    """

    counts: dict[str, int] = field(default_factory=lambda: {o: 0 for o in OUTCOMES})
    #: End-to-end elapsed time observed by the campaign driver.
    wall_seconds: float = 0.0
    #: Summed per-run execution time across all workers (== wall_seconds
    #: for a serial campaign).
    cpu_seconds: float = 0.0
    runs_requested: int = 0
    stopped_early: bool = False
    rounds: int = 0
    workers: int = 1
    #: True when a parallel campaign lost its worker pool and fell back
    #: to in-process serial execution (no counts are ever lost).
    degraded: bool = False
    #: True when the result was served from the artifact cache instead
    #: of being executed (counts are bit-identical either way).
    from_cache: bool = False

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def probability(self, outcome: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    @property
    def sdc_probability(self) -> float:
        return self.probability(SDC)

    @property
    def crash_probability(self) -> float:
        return self.probability(CRASHED)

    @property
    def benign_probability(self) -> float:
        return self.probability(BENIGN)

    @property
    def detected_probability(self) -> float:
        return self.probability(CAUGHT)

    def margin_of_error(self, outcome: str = SDC,
                        confidence_z: float = 1.96) -> float:
        """Half-width of the binomial confidence interval (default 95%)."""
        n = self.total
        if n == 0:
            return 0.0
        p = self.probability(outcome)
        return confidence_z * math.sqrt(p * (1.0 - p) / n)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult()
        for outcome in OUTCOMES:
            merged.counts[outcome] = self.counts[outcome] + other.counts[outcome]
        merged.wall_seconds = self.wall_seconds + other.wall_seconds
        merged.cpu_seconds = self.cpu_seconds + other.cpu_seconds
        return merged

    # -- artifact-cache serialization ----------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form for the artifact cache (see repro.cache)."""
        return {
            "counts": dict(self.counts),
            "cpu_seconds": self.cpu_seconds,
            "runs_requested": self.runs_requested,
            "stopped_early": self.stopped_early,
            "rounds": self.rounds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a cached campaign; marks the result ``from_cache``.

        Wall-clock and worker metadata describe the run that *produced*
        the counts, not the cache read, so they reset to the trivial
        values of a zero-cost replay.
        """
        counts = {outcome: 0 for outcome in OUTCOMES}
        for outcome, n in data["counts"].items():
            if outcome not in counts:
                raise ValueError(f"unknown campaign outcome {outcome!r}")
            counts[outcome] = int(n)
        result = cls(
            counts=counts,
            cpu_seconds=float(data["cpu_seconds"]),
            runs_requested=int(data["runs_requested"]),
            stopped_early=bool(data["stopped_early"]),
            rounds=int(data["rounds"]),
        )
        result.from_cache = True
        return result


class FaultInjector:
    """Runs statistical and per-instruction FI campaigns on one module."""

    def __init__(self, module: Module, engine: ExecutionEngine | None = None,
                 hang_multiplier: int = 10, golden=None):
        self.module = module
        self.engine = engine or ExecutionEngine(module)
        # ``golden`` may be a cached GoldenSummary (see repro.cache),
        # skipping the fault-free reference execution entirely — the
        # main per-worker saving when a campaign re-materializes the
        # module in a fresh process.
        self.golden = golden if golden is not None else self.engine.golden()
        self._golden_outputs = self.golden.outputs
        counts = self.golden.instruction_counts()
        # Eligible targets: executed instructions with a destination
        # register whose value is used by at least one other instruction.
        self.target_iids: list[int] = []
        self.target_counts: list[int] = []
        cumulative = 0
        self._cumulative: list[int] = []
        for inst in module.instructions():
            if not inst.has_result or not inst.users:
                continue
            count = counts.get(inst.iid, 0)
            if count == 0:
                continue
            self.target_iids.append(inst.iid)
            self.target_counts.append(count)
            cumulative += count
            self._cumulative.append(cumulative)
        if not self.target_iids:
            raise ValueError(f"{module.name}: no injectable instructions")
        self.total_dynamic_targets = cumulative
        self.hang_budget = max(
            10_000, hang_multiplier * self.golden.dynamic_count
        )

    # ------------------------------------------------------------------

    def sample_injection(self, rng: random.Random) -> Injection:
        """One fault, uniform over all eligible dynamic instances."""
        pick = rng.randrange(self.total_dynamic_targets)
        index = bisect_right(self._cumulative, pick)
        iid = self.target_iids[index]
        occurrence = rng.randint(1, self.target_counts[index])
        bits = self.module.instruction(iid).type.bits
        return Injection(iid, occurrence, rng.randrange(bits))

    def injection_for(self, iid: int, rng: random.Random) -> Injection:
        """One fault targeted at a specific static instruction."""
        try:
            index = self.target_iids.index(iid)
        except ValueError:
            raise ValueError(
                f"instruction #{iid} is not an eligible injection target"
            ) from None
        occurrence = rng.randint(1, self.target_counts[index])
        bits = self.module.instruction(iid).type.bits
        return Injection(iid, occurrence, rng.randrange(bits))

    def run_one(self, injection: Injection) -> str:
        """Execute once with the fault armed and classify the outcome."""
        result = self.engine.run(injection, budget=self.hang_budget)
        if result.outcome == CRASH:
            return CRASHED
        if result.outcome == HANG:
            return HUNG
        if result.outcome == DETECTED:
            return CAUGHT
        if result.outputs != self._golden_outputs:
            return SDC
        return BENIGN

    # ------------------------------------------------------------------

    def run_span(self, start: int, count: int,
                 campaign_seed: int) -> CampaignResult:
        """Execute runs [start, start+count) of a seeded campaign.

        Each run draws from its own substream (see :mod:`repro.fi.seeds`),
        so a span's counts depend only on the campaign seed and the run
        indices it covers — never on which process executes it or what
        ran before it.  Campaign drivers partition [0, n) into spans.
        """
        result = CampaignResult()
        started = time.perf_counter()
        for run_index in range(start, start + count):
            rng = rng_for(campaign_seed, run_index)
            outcome = self.run_one(self.sample_injection(rng))
            result.counts[outcome] += 1
        elapsed = time.perf_counter() - started
        result.wall_seconds = elapsed
        result.cpu_seconds = elapsed
        return result

    def campaign(self, n: int, seed: int = 0) -> CampaignResult:
        """Statistical campaign: n random faults over the whole program."""
        result = self.run_span(0, n, seed)
        result.runs_requested = n
        result.rounds = 1
        return result

    def per_instruction_campaign(
        self, iids, runs_per_instruction: int, seed: int = 0,
    ) -> dict[int, CampaignResult]:
        """Targeted campaign: fixed number of faults per static instruction.

        Each (instruction, run) pair has its own substream, keyed first
        by instruction id and then by run index, so per-instruction
        results are independent of the order instructions are visited.
        """
        results: dict[int, CampaignResult] = {}
        for iid in iids:
            instruction_seed = seed_for(seed, iid)
            result = CampaignResult()
            started = time.perf_counter()
            for run_index in range(runs_per_instruction):
                rng = rng_for(instruction_seed, run_index)
                outcome = self.run_one(self.injection_for(iid, rng))
                result.counts[outcome] += 1
            elapsed = time.perf_counter() - started
            result.wall_seconds = elapsed
            result.cpu_seconds = elapsed
            result.runs_requested = runs_per_instruction
            result.rounds = 1
            results[iid] = result
        return results

    def eligible_iids(self) -> list[int]:
        return list(self.target_iids)
