"""Parallel, early-stopping fault-injection campaigns (thin client).

Historically this module owned the whole campaign driver; that driver
now lives in :mod:`repro.sched` so the CLI, the pytest harness and the
``repro.serve`` daemon share one execution path (and one result store).
This module keeps the long-standing ``repro.fi`` API as a facade:

* :class:`ModuleSpec` / :class:`CampaignSettings` — re-exported from
  :mod:`repro.sched.spec`;
* :class:`ParallelCampaign` — the scheduler's
  :class:`~repro.sched.executor.CampaignExecutor` under its original
  name, with the original constructor and ``run()`` semantics (plus
  store-backed partial-shard checkpoints and interrupt-safe teardown);
* :func:`run_parallel_campaign` / :func:`run_cached_campaign` — the
  one-shot wrappers every existing call site uses.

The determinism contract is unchanged: every run draws from its own
seed substream (:mod:`repro.fi.seeds`), so the merged counts of a
campaign are bit-identical whether it ran serially, on a local pool, or
as independent shards on different machines.
"""

from __future__ import annotations

from ..ir.module import Module
from ..sched.executor import (
    CampaignExecutor,
    CampaignInterrupted,
    run_store_campaign,
)
from ..sched.shard import materialize_injector, run_shard
from ..sched.spec import CampaignSettings, ModuleSpec
from ..stats.confidence import Z_95
from .campaign import SDC, CampaignResult, FaultInjector

__all__ = [
    "CampaignInterrupted",
    "CampaignSettings",
    "ModuleSpec",
    "ParallelCampaign",
    "materialize_injector",
    "run_cached_campaign",
    "run_parallel_campaign",
    "run_shard",
]

#: The campaign driver, under the name this module always exported.
#: ``ParallelCampaign(spec_or_none, injector=..., settings=...)`` and
#: ``.run(max_runs, seed)`` behave as before; interrupts now raise
#: :class:`CampaignInterrupted` carrying the partial result.
ParallelCampaign = CampaignExecutor


def run_parallel_campaign(
    runs: int, seed: int = 0, *,
    spec: ModuleSpec | None = None,
    injector: FaultInjector | None = None,
    workers: int = 1,
    chunk_size: int = 0,
    ci_halfwidth: float | None = None,
    ci_outcome: str = SDC,
    ci_z: float = Z_95,
    round_size: int = 0,
    min_runs: int = 100,
    round_timeout: float | None = None,
    checkpoint: bool = True,
    checkpoint_stride: int = 0,
    interp_tier: str | None = None,
    batch_lanes: int = 0,
) -> CampaignResult:
    """One-shot convenience wrapper around the campaign executor."""
    campaign = ParallelCampaign(
        spec, injector=injector,
        settings=CampaignSettings(
            workers=workers, chunk_size=chunk_size,
            ci_halfwidth=ci_halfwidth, ci_outcome=ci_outcome, ci_z=ci_z,
            round_size=round_size, min_runs=min_runs,
            round_timeout=round_timeout,
            checkpoint=checkpoint, checkpoint_stride=checkpoint_stride,
            interp_tier=interp_tier, batch_lanes=batch_lanes,
        ),
    )
    return campaign.run(runs, seed=seed)


def run_cached_campaign(
    runs: int, seed: int = 0, *,
    spec: ModuleSpec | None = None,
    injector=None,
    module: Module | None = None,
    settings: CampaignSettings | None = None,
) -> CampaignResult:
    """A campaign through the shared result store.

    Delegates to :func:`repro.sched.executor.run_store_campaign` — the
    single cached execution path shared with the service daemon, so a
    result computed here serves a later ``repro submit`` byte-for-byte
    (and vice versa).
    """
    return run_store_campaign(
        runs, seed, spec=spec, injector=injector, module=module,
        settings=settings,
    )
