"""Parallel, early-stopping fault-injection campaigns.

A campaign of N runs is embarrassingly parallel once every run draws
from its own seed substream (:mod:`repro.fi.seeds`): the run space
[0, N) is partitioned into contiguous spans, spans are executed on a
``multiprocessing`` pool, and the per-span :class:`CampaignResult`
counts are merged.  Workers cannot receive an :class:`ExecutionEngine`
(its compiled steps are closures), so each worker re-materializes the
module from a picklable :class:`ModuleSpec` — either a benchmark
recipe ``(name, scale, input_seed)`` or the module's printed IR — and
builds its own :class:`FaultInjector` once, caching it across spans.

On top of the pool sits *iterative statistical injection* (the DAVOS
recipe): runs execute in rounds, and the campaign stops as soon as the
Wilson confidence interval on the chosen outcome's probability is
narrower than a configured half-width.  Because every run is seeded by
its global index, the executed prefix [0, runs_executed) is identical
whether the campaign ran serially, on 4 workers, or chunked in any
other way — parallelism and chunking affect wall-clock only, never
counts.

Failure policy: if the pool cannot be created, a worker crashes, or a
round times out, the unfinished round is re-executed serially in the
driver process (no partial round is ever merged twice, and no counts
are lost) and the campaign continues in-process.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass

from ..bench.registry import build_module
from ..cache import (
    GoldenSummary,
    campaign_key,
    get_cache,
    golden_key,
    load_golden_summary,
    module_fingerprint,
    store_golden_summary,
)
from ..cache.artifacts import CAMPAIGN_KIND
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..stats.confidence import Z_95, wilson_confidence
from .campaign import SDC, CampaignResult, FaultInjector


@dataclass(frozen=True)
class ModuleSpec:
    """Picklable recipe a worker uses to re-materialize a Module."""

    benchmark: str | None = None
    scale: str = "default"
    input_seed: int = 0
    ir_text: str | None = None

    @classmethod
    def from_benchmark(cls, name: str, scale: str = "default",
                       input_seed: int = 0) -> "ModuleSpec":
        return cls(benchmark=name, scale=scale, input_seed=input_seed)

    @classmethod
    def from_module(cls, module: Module) -> "ModuleSpec":
        """Spec for an arbitrary (e.g. optimized or protected) module,
        shipped as printed IR and re-parsed in the worker."""
        return cls(ir_text=print_module(module))

    def materialize(self) -> Module:
        if self.benchmark is not None:
            return build_module(self.benchmark, self.scale, self.input_seed)
        if self.ir_text is None:
            raise ValueError("ModuleSpec names neither a benchmark nor IR")
        return parse_module(self.ir_text)


@dataclass(frozen=True)
class CampaignSettings:
    """Knobs of the parallel/early-stopping campaign driver."""

    workers: int = 1
    #: Runs per pool task; 0 = one contiguous span per worker per round.
    chunk_size: int = 0
    #: Stop once the Wilson CI half-width on ``ci_outcome`` drops below
    #: this; None disables early stopping (all runs execute).
    ci_halfwidth: float | None = None
    ci_outcome: str = SDC
    ci_z: float = Z_95
    #: Runs per early-stopping round; 0 = auto.
    round_size: int = 0
    #: Never stop before this many runs (guards tiny-sample intervals).
    min_runs: int = 100
    #: Per-round pool timeout in seconds; on expiry the round is retried
    #: serially.  None = wait indefinitely.
    round_timeout: float | None = None
    #: Checkpoint-and-fork: restore golden-prefix snapshots so each
    #: trial executes only its suffix.  Counts are invariant to this
    #: knob (it is deliberately *not* part of the campaign cache key);
    #: an injector that fails to capture or resume degrades back to
    #: cold full runs, mirroring the pool-failure policy above.
    checkpoint: bool = True
    #: Snapshot stride in dynamic instructions; 0 = auto.
    checkpoint_stride: int = 0
    #: Interpreter tier ("codegen"/"closure"/"batch"); None keeps each
    #: engine's resolved default.  Counts are invariant to the tier (the
    #: CI differential enforces bit-identity), so — like the checkpoint
    #: knobs — it is deliberately *not* part of the campaign cache key.
    interp_tier: str | None = None
    #: Lanes per lockstep group on the batch tier; <= 0 picks the
    #: tier's default.  Another wall-clock-only knob: counts are
    #: bit-identical at every lane count, so it too stays *out* of the
    #: campaign cache key.
    batch_lanes: int = 0

    def effective_round_size(self) -> int:
        """Round size the driver will use under early stopping (0 when
        no stopping rule applies).  Part of the campaign cache key: two
        configurations that could stop at different run prefixes must
        never share a cached result."""
        if self.ci_halfwidth is None:
            return 0
        if self.round_size > 0:
            return self.round_size
        return max(self.min_runs, 50 * max(1, self.workers))


# ---------------------------------------------------------------------------
# Worker side.  The injector is cached per process and per spec; tasks
# carry the spec so a failed materialization surfaces as an ordinary
# task exception in the driver (never a silent worker-respawn loop).

_WORKER_SPEC: ModuleSpec | None = None
_WORKER_INJECTOR: FaultInjector | None = None


def materialize_injector(spec: ModuleSpec,
                         interp_tier: str | None = None) -> FaultInjector:
    """Build a FaultInjector for a spec, warm-starting the golden run.

    The golden-run summary (outputs, per-instruction counts, dynamic
    count) is content-addressed by the re-materialized module's
    fingerprint, so a worker — or a later campaign over the same module
    — skips the fault-free reference execution; a cache miss computes
    and publishes it for every subsequent process.
    """
    module = spec.materialize()
    cache = get_cache()
    key = golden_key(module_fingerprint(module))
    golden = load_golden_summary(cache, key)
    injector = FaultInjector(module, golden=golden, interp_tier=interp_tier)
    if golden is None:
        store_golden_summary(
            cache, key, GoldenSummary.from_run(injector.golden)
        )
    return injector


def _span_perf(result: CampaignResult) -> dict:
    """Throughput facts a span task ships back alongside its counts."""
    return {
        "dynamic_instructions": result.dynamic_instructions,
        "skipped_instructions": result.skipped_instructions,
        "snapshot_bytes": result.snapshot_bytes,
        "checkpointed": result.checkpointed,
        "checkpoint_degraded": result.checkpoint_degraded,
        "interp_tier": result.interp_tier,
        "codegen_functions": result.codegen_functions,
        "codegen_fallbacks": result.codegen_fallbacks,
        "batch_lanes": result.batch_lanes,
        "batch_divergences": result.batch_divergences,
        "batch_fallbacks": result.batch_fallbacks,
    }


def _run_span_task(task) -> tuple[dict[str, int], float, dict]:
    global _WORKER_SPEC, _WORKER_INJECTOR
    spec, start, count, campaign_seed, checkpoint, stride, tier, lanes = task
    if _WORKER_INJECTOR is None or _WORKER_SPEC != spec:
        _WORKER_INJECTOR = materialize_injector(spec, interp_tier=tier)
        _WORKER_SPEC = spec
    _WORKER_INJECTOR.configure_checkpoints(checkpoint, stride)
    _WORKER_INJECTOR.configure_tier(tier)
    _WORKER_INJECTOR.configure_batch(lanes)
    result = _WORKER_INJECTOR.run_span(start, count, campaign_seed)
    return result.counts, result.cpu_seconds, _span_perf(result)


# ---------------------------------------------------------------------------
# Driver side.


class ParallelCampaign:
    """Campaign driver: chunking, worker pool, early stopping, fallback."""

    def __init__(self, spec: ModuleSpec | None = None, *,
                 injector: FaultInjector | None = None,
                 settings: CampaignSettings | None = None):
        if spec is None and injector is None:
            raise ValueError("need a ModuleSpec or a FaultInjector")
        self._spec = spec
        self._injector = injector
        self.settings = settings or CampaignSettings()

    @property
    def injector(self) -> FaultInjector:
        """The in-process injector (serial path and fallback)."""
        if self._injector is None:
            self._injector = materialize_injector(self._spec)
        return self._injector

    def spec(self) -> ModuleSpec:
        if self._spec is not None:
            return self._spec
        return ModuleSpec.from_module(self._injector.module)

    # -- plumbing ------------------------------------------------------

    def _round_size(self, max_runs: int) -> int:
        if self.settings.ci_halfwidth is None:
            return max_runs  # no stopping rule: one round covers everything
        return self.settings.effective_round_size()

    def _spans(self, start: int, count: int, seed: int,
               spec: ModuleSpec | None) -> list:
        settings = self.settings
        chunk = settings.chunk_size
        if chunk <= 0:
            chunk = math.ceil(count / max(1, settings.workers))
        if settings.interp_tier == "batch" and settings.batch_lanes > 1:
            # Lane-sized chunks: a worker's span splits into full
            # lockstep groups, so no group straddles a span boundary
            # and runs as a fraction of its width.
            lanes = settings.batch_lanes
            chunk = math.ceil(chunk / lanes) * lanes
        spans = []
        offset, end = start, start + count
        while offset < end:
            size = min(chunk, end - offset)
            spans.append((spec, offset, size, seed,
                          settings.checkpoint, settings.checkpoint_stride,
                          settings.interp_tier, settings.batch_lanes))
            offset += size
        return spans

    def _interval_tight(self, result: CampaignResult) -> bool:
        settings = self.settings
        if settings.ci_halfwidth is None:
            return False
        if result.total < max(1, settings.min_runs):
            return False
        interval = wilson_confidence(
            result.counts[settings.ci_outcome], result.total, settings.ci_z
        )
        return interval.margin <= settings.ci_halfwidth

    # -- execution -----------------------------------------------------

    def run(self, max_runs: int, seed: int = 0) -> CampaignResult:
        """Execute up to ``max_runs`` injections of campaign ``seed``."""
        settings = self.settings
        workers = max(1, settings.workers)
        started = time.perf_counter()
        result = CampaignResult()
        pool = None
        use_pool = workers > 1
        degraded = False
        executed = 0
        rounds = 0
        try:
            while executed < max_runs:
                round_runs = min(self._round_size(max_runs),
                                 max_runs - executed)
                span_results = None
                if use_pool:
                    if pool is None:
                        self._publish_golden()
                        pool = self._make_pool(workers)
                        if pool is None:
                            use_pool, degraded = False, True
                    if pool is not None:
                        span_results = self._map_round(
                            pool, executed, round_runs, seed
                        )
                        if span_results is None:  # pool died mid-round
                            pool = self._discard_pool(pool)
                            use_pool, degraded = False, True
                if span_results is None:
                    span_results = self._serial_round(
                        executed, round_runs, seed
                    )
                for counts, cpu_seconds, perf in span_results:
                    for outcome, n in counts.items():
                        result.counts[outcome] += n
                    result.cpu_seconds += cpu_seconds
                    result.dynamic_instructions += perf[
                        "dynamic_instructions"]
                    result.skipped_instructions += perf[
                        "skipped_instructions"]
                    result.snapshot_bytes += perf["snapshot_bytes"]
                    result.checkpointed |= perf["checkpointed"]
                    result.checkpoint_degraded |= perf[
                        "checkpoint_degraded"]
                    result.interp_tier = (
                        result.interp_tier or perf["interp_tier"]
                    )
                    result.codegen_functions = max(
                        result.codegen_functions, perf["codegen_functions"]
                    )
                    result.codegen_fallbacks = max(
                        result.codegen_fallbacks, perf["codegen_fallbacks"]
                    )
                    result.batch_lanes = max(
                        result.batch_lanes, perf["batch_lanes"]
                    )
                    result.batch_divergences += perf["batch_divergences"]
                    result.batch_fallbacks += perf["batch_fallbacks"]
                executed += round_runs
                rounds += 1
                if self._interval_tight(result):
                    result.stopped_early = True
                    break
        finally:
            if pool is not None:
                self._discard_pool(pool)
        result.wall_seconds = time.perf_counter() - started
        result.runs_requested = max_runs
        result.rounds = rounds
        result.workers = workers if use_pool else 1
        result.degraded = degraded
        return result

    def _publish_golden(self) -> None:
        """Seed the golden-summary artifact before workers spawn, so
        every worker's first span skips the fault-free reference run."""
        if self._injector is None:
            return
        cache = get_cache()
        key = golden_key(module_fingerprint(self._injector.module))
        if load_golden_summary(cache, key) is None:
            store_golden_summary(
                cache, key, GoldenSummary.from_run(self._injector.golden)
            )

    def _serial_round(self, start: int, count: int, seed: int) -> list:
        """Execute one round in-process (serial path and pool fallback)."""
        settings = self.settings
        self.injector.configure_checkpoints(
            settings.checkpoint, settings.checkpoint_stride
        )
        self.injector.configure_tier(settings.interp_tier)
        self.injector.configure_batch(settings.batch_lanes)
        out = []
        for _spec, offset, size, *_knobs in self._spans(
                start, count, seed, None):
            span_result = self.injector.run_span(offset, size, seed)
            out.append((span_result.counts, span_result.cpu_seconds,
                        _span_perf(span_result)))
        return out

    def _make_pool(self, workers: int):
        try:
            return multiprocessing.get_context().Pool(workers)
        except Exception:
            return None

    def _map_round(self, pool, start: int, count: int, seed: int):
        """Run one round on the pool; None means 'retry serially'."""
        spans = self._spans(start, count, seed, self.spec())
        try:
            pending = pool.map_async(_run_span_task, spans, chunksize=1)
            return pending.get(self.settings.round_timeout)
        except Exception:
            return None

    @staticmethod
    def _discard_pool(pool):
        pool.terminate()
        pool.join()
        return None


def run_parallel_campaign(
    runs: int, seed: int = 0, *,
    spec: ModuleSpec | None = None,
    injector: FaultInjector | None = None,
    workers: int = 1,
    chunk_size: int = 0,
    ci_halfwidth: float | None = None,
    ci_outcome: str = SDC,
    ci_z: float = Z_95,
    round_size: int = 0,
    min_runs: int = 100,
    round_timeout: float | None = None,
    checkpoint: bool = True,
    checkpoint_stride: int = 0,
    interp_tier: str | None = None,
    batch_lanes: int = 0,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`ParallelCampaign`."""
    campaign = ParallelCampaign(
        spec, injector=injector,
        settings=CampaignSettings(
            workers=workers, chunk_size=chunk_size,
            ci_halfwidth=ci_halfwidth, ci_outcome=ci_outcome, ci_z=ci_z,
            round_size=round_size, min_runs=min_runs,
            round_timeout=round_timeout,
            checkpoint=checkpoint, checkpoint_stride=checkpoint_stride,
            interp_tier=interp_tier, batch_lanes=batch_lanes,
        ),
    )
    return campaign.run(runs, seed=seed)


def run_cached_campaign(
    runs: int, seed: int = 0, *,
    spec: ModuleSpec | None = None,
    injector=None,
    module: Module | None = None,
    settings: CampaignSettings | None = None,
) -> CampaignResult:
    """A campaign through the artifact cache.

    The merged counts of a campaign are a pure function of the module
    content, the seed, the run budget and the stopping rule (the PR 1
    seed protocol), so they are cached under exactly that key; a hit
    replays the counts without executing a single injection — or even
    building an engine (``injector`` may be a zero-arg factory, only
    invoked on a miss).  A miss runs the campaign normally and persists
    the result; a malformed cache entry falls back to recomputation.
    """
    settings = settings or CampaignSettings()
    if module is None:
        if isinstance(injector, FaultInjector):
            module = injector.module
        elif spec is not None:
            module = spec.materialize()
        else:
            raise ValueError("need a module, a ModuleSpec or an injector")
    cache = get_cache()
    key = campaign_key(
        module_fingerprint(module), runs, seed,
        ci_halfwidth=settings.ci_halfwidth,
        ci_outcome=settings.ci_outcome,
        min_runs=settings.min_runs,
        round_size=settings.effective_round_size(),
    )
    payload = cache.load(CAMPAIGN_KIND, key)
    if payload is not None:
        try:
            return CampaignResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            pass  # malformed entry: recompute below and overwrite
    if injector is not None and not isinstance(injector, FaultInjector):
        injector = injector()  # lazy factory, paid only on a miss
    campaign = ParallelCampaign(spec, injector=injector, settings=settings)
    result = campaign.run(runs, seed=seed)
    cache.store(CAMPAIGN_KIND, key, result.to_dict())
    return result
