"""Optimization-level study (extension).

The paper evaluates LLVM -O2 binaries; our eDSL emits -O0 style
alloca/load/store form.  With the optimizer (`repro.opt`) both forms
exist for every benchmark, so we can ask a question the paper could
not: how do SDC probabilities — measured and predicted — shift when
variables move from memory into SSA registers?

Expected effects (and what the table shows):

* dynamic instruction count drops (fewer loads/stores);
* crash probability tends to drop slightly (fewer address calculations
  per useful operation);
* the model keeps tracking FI, though register-resident loop state makes
  loop-control faults more SDC-prone, which the model is conservative
  about (store-address survivors are unmodeled, Sec. VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.simple_models import create_model
from ..fi.campaign import FaultInjector
from ..opt.pipeline import optimize
from ..profiling.profiler import ProfilingInterpreter
from ..stats import mean_absolute_error
from .context import Workspace
from .report import format_table, percent

LEVELS = (0, 2)


@dataclass
class OptLevelRow:
    benchmark: str
    dynamic_counts: dict[int, int]
    fi_sdc: dict[int, float]
    model_sdc: dict[int, float]
    promoted: int


@dataclass
class OptLevelResult:
    rows: list[OptLevelRow]
    mae: dict[int, float]

    def render(self) -> str:
        headers = ["Benchmark", "dyn O0", "dyn O2", "promoted",
                   "FI O0", "model O0", "FI O2", "model O2"]
        body = []
        for row in self.rows:
            body.append([
                row.benchmark,
                row.dynamic_counts[0], row.dynamic_counts[2],
                row.promoted,
                percent(row.fi_sdc[0]), percent(row.model_sdc[0]),
                percent(row.fi_sdc[2]), percent(row.model_sdc[2]),
            ])
        table = format_table(
            headers, body,
            title="Optimization levels: SDC at -O0 (memory form) vs "
                  "-O2 (SSA register form)",
        )
        return (
            table
            + f"\nmodel MAE at O0: {percent(self.mae[0])}; "
              f"at O2: {percent(self.mae[2])}"
        )


def run_optlevels(workspace: Workspace) -> OptLevelResult:
    config = workspace.config
    rows = []
    fi_series: dict[int, list[float]] = {level: [] for level in LEVELS}
    model_series: dict[int, list[float]] = {level: [] for level in LEVELS}
    for ctx in workspace.contexts():
        dynamic_counts: dict[int, int] = {}
        fi_sdc: dict[int, float] = {}
        model_sdc: dict[int, float] = {}
        promoted = 0
        for level in LEVELS:
            module, report = optimize(ctx.module, level)
            if level == 2:
                promoted = report.slots_promoted
            profile, _ = ProfilingInterpreter(module).run()
            injector = FaultInjector(module)
            dynamic_counts[level] = injector.golden.dynamic_count
            campaign = injector.campaign(config.fi_samples, seed=config.seed)
            fi_sdc[level] = campaign.sdc_probability
            model = create_model("trident", module, profile)
            model_sdc[level] = model.overall_sdc(
                samples=config.model_samples, seed=config.seed
            )
            fi_series[level].append(fi_sdc[level])
            model_series[level].append(model_sdc[level])
        rows.append(OptLevelRow(
            ctx.name, dynamic_counts, fi_sdc, model_sdc, promoted
        ))
    mae = {
        level: mean_absolute_error(model_series[level], fi_series[level])
        for level in LEVELS
    }
    return OptLevelResult(rows, mae)
