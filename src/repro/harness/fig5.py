"""Figure 5 — overall SDC probabilities: FI vs TRIDENT vs fs+fc vs fs.

Also runs the paper's accompanying paired t-test across benchmarks
(TRIDENT vs FI; the paper reports p = 0.764, i.e. statistically
indistinguishable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.simple_models import MODEL_NAMES
from ..fi.campaign import SDC
from ..stats import binomial_confidence, mean_absolute_error, paired_t_test
from .context import Workspace
from .report import format_table, percent


@dataclass
class Fig5Row:
    benchmark: str
    fi_sdc: float
    fi_margin: float
    predictions: dict[str, float]  # model name -> overall SDC


@dataclass
class Fig5Result:
    rows: list[Fig5Row]
    mean_fi: float
    means: dict[str, float]
    mean_absolute_errors: dict[str, float]
    trident_vs_fi_p_value: float

    def render(self) -> str:
        table = format_table(
            ["Benchmark", "FI", "±", "TRIDENT", "fs+fc", "fs"],
            [
                [r.benchmark, percent(r.fi_sdc), percent(r.fi_margin),
                 percent(r.predictions["trident"]),
                 percent(r.predictions["fs+fc"]),
                 percent(r.predictions["fs"])]
                for r in self.rows
            ],
            title="Figure 5: Overall SDC Probabilities",
        )
        summary = [
            "",
            f"mean FI SDC probability:      {percent(self.mean_fi)}",
        ]
        for name in MODEL_NAMES:
            summary.append(
                f"mean {name:8s} prediction:   {percent(self.means[name])}"
                f"   (mean abs error {percent(self.mean_absolute_errors[name])})"
            )
        summary.append(
            f"paired t-test TRIDENT vs FI:  p = "
            f"{self.trident_vs_fi_p_value:.3f} "
            f"({'indistinguishable' if self.trident_vs_fi_p_value > 0.05 else 'distinguishable'})"
        )
        return table + "\n" + "\n".join(summary)


def run_fig5(workspace: Workspace) -> Fig5Result:
    config = workspace.config
    rows = []
    for ctx in workspace.contexts():
        campaign = ctx.fi_campaign(config.fi_samples, seed=config.seed)
        interval = binomial_confidence(
            campaign.counts[SDC], campaign.total
        )
        predictions = {
            name: ctx.model(name).overall_sdc(
                samples=config.model_samples, seed=config.seed
            )
            for name in MODEL_NAMES
        }
        rows.append(Fig5Row(
            benchmark=ctx.name,
            fi_sdc=campaign.sdc_probability,
            fi_margin=interval.margin,
            predictions=predictions,
        ))

    fi_values = [r.fi_sdc for r in rows]
    means = {
        name: sum(r.predictions[name] for r in rows) / len(rows)
        for name in MODEL_NAMES
    }
    maes = {
        name: mean_absolute_error(
            [r.predictions[name] for r in rows], fi_values
        )
        for name in MODEL_NAMES
    }
    t_test = paired_t_test(
        [r.predictions["trident"] for r in rows], fi_values
    )
    return Fig5Result(
        rows=rows,
        mean_fi=sum(fi_values) / len(fi_values),
        means=means,
        mean_absolute_errors=maes,
        trident_vs_fi_p_value=t_test.p_value,
    )
