"""Plain-text table rendering for experiment reports.

The harness prints the same rows/series the paper's tables and figures
report; this module holds the shared formatting.
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def percent(value: float, digits: int = 2) -> str:
    return f"{value * 100:.{digits}f}%"
