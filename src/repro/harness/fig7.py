"""Figure 7 — per-benchmark time to derive every instruction's SDC
probability: TRIDENT vs FI-100, plus memory-dependency pruning rates.

The paper highlights the wide variance across benchmarks (PureMD hours
vs Pathfinder seconds) and attributes it largely to how many redundant
memory dependencies can be pruned (average 61.87%).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from .context import Workspace
from .report import format_table, percent


@dataclass
class Fig7Row:
    benchmark: str
    instructions: int
    trident_seconds: float
    fi100_seconds: float
    pruned_fraction: float


@dataclass
class Fig7Result:
    rows: list[Fig7Row]
    average_pruned_fraction: float

    def render(self) -> str:
        table = format_table(
            ["Benchmark", "#insts", "TRIDENT (s)", "FI-100 (s)",
             "deps pruned"],
            [
                [r.benchmark, r.instructions, f"{r.trident_seconds:.3f}",
                 f"{r.fi100_seconds:.2f}", percent(r.pruned_fraction)]
                for r in self.rows
            ],
            title="Figure 7: Time to Derive All Per-Instruction SDC "
                  "Probabilities",
        )
        return (
            table
            + f"\naverage redundant memory dependencies pruned: "
              f"{percent(self.average_pruned_fraction)}"
        )


def run_fig7(workspace: Workspace) -> Fig7Result:
    rows = []
    for ctx in workspace.contexts():
        injector = ctx.injector
        iids = injector.eligible_iids()

        # Measured mean FI run time on this benchmark, projected to 100
        # runs per instruction (the paper's FI-100 projection).
        rng = random.Random(workspace.config.seed)
        started = time.perf_counter()
        batch = 20
        for _ in range(batch):
            injector.run_one(injector.sample_injection(rng))
        per_run = (time.perf_counter() - started) / batch
        fi100 = per_run * 100 * len(iids)

        model = ctx.model("trident")
        started = time.perf_counter()
        for iid in iids:
            model.instruction_sdc(iid)
        trident_seconds = (
            ctx.profile.profiling_seconds + time.perf_counter() - started
        )

        rows.append(Fig7Row(
            benchmark=ctx.name,
            instructions=len(iids),
            trident_seconds=trident_seconds,
            fi100_seconds=fi100,
            pruned_fraction=ctx.profile.memdep_stats.pruned_fraction,
        ))
    average = sum(r.pruned_fraction for r in rows) / len(rows)
    return Fig7Result(rows, average)
