"""Table II — per-instruction SDC prediction quality (paired t-tests).

For each benchmark: FI measures the SDC probability of individual
static instructions (N runs per instruction); each model predicts the
same instructions; a paired t-test asks whether prediction and
measurement are statistically distinguishable.  The paper finds 3/11
rejections for TRIDENT vs 9/11 (fs+fc) and 7/11 (fs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.simple_models import MODEL_NAMES
from ..stats import paired_t_test
from .context import Workspace
from .report import format_table


@dataclass
class Table2Row:
    benchmark: str
    instructions_tested: int
    p_values: dict[str, float]  # model -> p-value


@dataclass
class Table2Result:
    rows: list[Table2Row]
    rejections: dict[str, int]  # model -> #benchmarks with p <= 0.05

    def render(self) -> str:
        table = format_table(
            ["Benchmark", "#insts", "TRIDENT", "fs+fc", "fs"],
            [
                [r.benchmark, r.instructions_tested,
                 f"{r.p_values['trident']:.3f}",
                 f"{r.p_values['fs+fc']:.3f}",
                 f"{r.p_values['fs']:.3f}"]
                for r in self.rows
            ],
            title=(
                "Table II: p-values, per-instruction SDC predictions "
                "(p > 0.05: indistinguishable from FI)"
            ),
        )
        footer = "  ".join(
            f"{name}: {self.rejections[name]}/{len(self.rows)} rejections"
            for name in MODEL_NAMES
        )
        return table + "\nNull-hypothesis rejections — " + footer


def run_table2(workspace: Workspace) -> Table2Result:
    config = workspace.config
    rows = []
    rejections = {name: 0 for name in MODEL_NAMES}
    for ctx in workspace.contexts():
        iids = ctx.injector.eligible_iids()
        if len(iids) > config.max_instructions:
            rng = random.Random(config.seed)
            iids = sorted(rng.sample(iids, config.max_instructions))
        campaigns = ctx.injector.per_instruction_campaign(
            iids, config.per_instruction_runs, seed=config.seed
        )
        measured = [campaigns[iid].sdc_probability for iid in iids]
        p_values = {}
        for name in MODEL_NAMES:
            model = ctx.model(name)
            predicted = [model.instruction_sdc(iid) for iid in iids]
            result = paired_t_test(predicted, measured)
            p_values[name] = result.p_value
            if result.rejects_null():
                rejections[name] += 1
        rows.append(Table2Row(
            benchmark=ctx.name,
            instructions_tested=len(iids),
            p_values=p_values,
        ))
    return Table2Result(rows, rejections)
