"""Ablation study over the model's design choices (DESIGN.md §5-6).

For each configuration variant, the full model is rebuilt and its
overall-SDC mean absolute error against FI recomputed across the
benchmark suite.  Variants:

* ``full``              — the shipped TRIDENT configuration
* ``no-minmax-joint``   — cmp+select clusters composed independently
* ``no-silent-discount``— fc without the lucky-store discount
* ``fdiv-masking``      — paper extension: fdiv mantissa averaging ON
* ``store-addr-sdc``    — paper extension: surviving store-address
                          corruption counted as SDC

Also validates the crash-prediction extension against FI crash rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import TridentConfig, trident_config
from ..core.simple_models import create_model
from ..stats import mean_absolute_error
from .context import Workspace
from .report import format_table, percent

ABLATIONS: dict[str, TridentConfig] = {
    "full": trident_config(),
    "no-minmax-joint": trident_config(model_minmax_joint=False),
    "no-silent-discount": trident_config(fc_silent_store_discount=False),
    "fdiv-masking": trident_config(model_fdiv_masking=True),
    "store-addr-sdc": trident_config(model_store_address_sdc=True),
}


@dataclass
class AblationResult:
    fi_sdc: dict[str, float]            # benchmark -> FI SDC
    fi_crash: dict[str, float]          # benchmark -> FI crash
    predictions: dict[str, dict[str, float]]  # variant -> bench -> SDC
    crash_predictions: dict[str, float]  # benchmark -> model crash
    mean_absolute_errors: dict[str, float]
    crash_mae: float

    def render(self) -> str:
        benches = list(self.fi_sdc)
        headers = ["Benchmark", "FI"] + list(ABLATIONS) + ["FI-crash",
                                                           "model-crash"]
        rows = []
        for bench in benches:
            row = [bench, percent(self.fi_sdc[bench])]
            row += [
                percent(self.predictions[variant][bench])
                for variant in ABLATIONS
            ]
            row += [percent(self.fi_crash[bench]),
                    percent(self.crash_predictions[bench])]
            rows.append(row)
        table = format_table(
            headers, rows,
            title="Ablations: overall SDC by model variant "
                  "(+ crash-prediction extension)",
        )
        summary = ["", "mean absolute error vs FI:"]
        for variant in ABLATIONS:
            summary.append(
                f"  {variant:20s} {percent(self.mean_absolute_errors[variant])}"
            )
        summary.append(f"  {'crash prediction':20s} {percent(self.crash_mae)}")
        return table + "\n" + "\n".join(summary)


def run_ablations(workspace: Workspace) -> AblationResult:
    config = workspace.config
    fi_sdc: dict[str, float] = {}
    fi_crash: dict[str, float] = {}
    predictions: dict[str, dict[str, float]] = {v: {} for v in ABLATIONS}
    crash_predictions: dict[str, float] = {}

    for ctx in workspace.contexts():
        campaign = ctx.fi_campaign(config.fi_samples, seed=config.seed)
        fi_sdc[ctx.name] = campaign.sdc_probability
        fi_crash[ctx.name] = campaign.crash_probability
        for variant, variant_config in ABLATIONS.items():
            model = create_model("trident", ctx.module, ctx.profile,
                                 config=variant_config,
                                 extra=variant)
            predictions[variant][ctx.name] = model.overall_sdc(
                samples=config.model_samples, seed=config.seed
            )
        crash_model = create_model("trident", ctx.module, ctx.profile)
        crash_predictions[ctx.name] = crash_model.overall_crash(
            samples=config.model_samples, seed=config.seed
        )

    benches = list(fi_sdc)
    maes = {
        variant: mean_absolute_error(
            [predictions[variant][b] for b in benches],
            [fi_sdc[b] for b in benches],
        )
        for variant in ABLATIONS
    }
    crash_mae = mean_absolute_error(
        [crash_predictions[b] for b in benches],
        [fi_crash[b] for b in benches],
    )
    return AblationResult(fi_sdc, fi_crash, predictions,
                          crash_predictions, maes, crash_mae)
