"""Input-sensitivity study (the paper's future work, Sec. VII-B/IX).

Di Leo et al. found SDC probabilities change across program inputs;
the paper runs one input per program (like all prior work) and names
multiple-input modeling as future work.  We implement the study: for
each benchmark, several inputs are generated (same code, different
data), FI measures the per-input SDC probability, and TRIDENT —
rebuilt per input, since its profile is input-specific — predicts it.

Two questions are answered:

1. how much does the true SDC probability move across inputs?
2. does TRIDENT track the per-input values (not just the average)?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.registry import build_module
from ..core.simple_models import create_model
from ..fi.campaign import FaultInjector
from ..fi.parallel import ModuleSpec, run_parallel_campaign
from ..profiling.profiler import ProfilingInterpreter
from ..stats import mean_absolute_error
from .context import Workspace
from .report import format_table, percent


@dataclass
class InputRow:
    benchmark: str
    fi_by_input: list[float]
    model_by_input: list[float]

    @property
    def fi_spread(self) -> float:
        return max(self.fi_by_input) - min(self.fi_by_input)

    @property
    def per_input_mae(self) -> float:
        return mean_absolute_error(self.model_by_input, self.fi_by_input)


@dataclass
class InputSensitivityResult:
    rows: list[InputRow]
    inputs: int

    def render(self) -> str:
        headers = ["Benchmark"]
        for i in range(self.inputs):
            headers += [f"FI#{i}", f"model#{i}"]
        headers += ["FI spread", "MAE"]
        body = []
        for row in self.rows:
            cells = [row.benchmark]
            for fi, model in zip(row.fi_by_input, row.model_by_input):
                cells += [percent(fi), percent(model)]
            cells += [percent(row.fi_spread), percent(row.per_input_mae)]
            body.append(cells)
        table = format_table(
            headers, body,
            title="Input sensitivity: SDC probability across program "
                  "inputs (paper future work, Sec. VII-B)",
        )
        avg_spread = sum(r.fi_spread for r in self.rows) / len(self.rows)
        avg_mae = sum(r.per_input_mae for r in self.rows) / len(self.rows)
        return (
            table
            + f"\naverage FI spread across inputs: {percent(avg_spread)}"
            + f"\naverage per-input model MAE:     {percent(avg_mae)}"
        )


def run_input_sensitivity(workspace: Workspace,
                          inputs: int = 3) -> InputSensitivityResult:
    config = workspace.config
    rows = []
    for name in config.benchmarks:
        fi_values = []
        model_values = []
        for input_seed in range(inputs):
            module = build_module(name, config.scale, input_seed=input_seed)
            profile, _ = ProfilingInterpreter(module).run()
            injector = FaultInjector(module)
            campaign = run_parallel_campaign(
                config.fi_samples, seed=config.seed,
                spec=ModuleSpec.from_benchmark(
                    name, config.scale, input_seed=input_seed
                ),
                injector=injector,
                workers=config.fi_workers,
                ci_halfwidth=config.fi_ci_halfwidth,
            )
            fi_values.append(campaign.sdc_probability)
            model = create_model("trident", module, profile)
            model_values.append(model.overall_sdc(
                samples=config.model_samples, seed=config.seed
            ))
        rows.append(InputRow(name, fi_values, model_values))
    return InputSensitivityResult(rows, inputs)
