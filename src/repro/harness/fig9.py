"""Figure 9 — overall SDC probabilities: FI vs TRIDENT vs ePVF vs PVF.

Expected shape (Sec. VII-C): PVF grossly over-predicts (no crash or
masking knowledge), ePVF over-predicts (crashes removed, benign faults
still counted), TRIDENT tracks FI.  Paper MAEs: 4.75% / 36.78% / 75.19%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.simple_models import create_model
from ..stats import mean_absolute_error
from .context import Workspace
from .report import format_table, percent

APPROACHES = ("trident", "epvf", "pvf")


@dataclass
class Fig9Row:
    benchmark: str
    fi_sdc: float
    predictions: dict[str, float]


@dataclass
class Fig9Result:
    rows: list[Fig9Row]
    mean_absolute_errors: dict[str, float]

    def render(self) -> str:
        table = format_table(
            ["Benchmark", "FI", "TRIDENT", "ePVF", "PVF"],
            [
                [r.benchmark, percent(r.fi_sdc),
                 percent(r.predictions["trident"]),
                 percent(r.predictions["epvf"]),
                 percent(r.predictions["pvf"])]
                for r in self.rows
            ],
            title="Figure 9: Overall SDC — TRIDENT vs ePVF vs PVF",
        )
        maes = "  ".join(
            f"{name}: {percent(self.mean_absolute_errors[name])}"
            for name in APPROACHES
        )
        return table + "\nmean absolute error — " + maes


def run_fig9(workspace: Workspace) -> Fig9Result:
    config = workspace.config
    rows = []
    for ctx in workspace.contexts():
        campaign = ctx.fi_campaign(config.fi_samples, seed=config.seed)
        trident = ctx.model("trident").overall_sdc(
            samples=config.model_samples, seed=config.seed
        )
        # Paper-faithful substitution: ePVF's crash model is replaced by
        # the FI-measured crash probability (Sec. VII-C).  The measured
        # probability is a model input from outside the config, so it
        # joins the cache key as ``extra``.
        epvf_model = create_model(
            "epvf", ctx.module, ctx.profile,
            measured_crash_probability=campaign.crash_probability,
        )
        epvf = epvf_model.overall(
            samples=config.model_samples, seed=config.seed
        )
        pvf_model = create_model("pvf", ctx.module, ctx.profile)
        pvf = pvf_model.overall(
            samples=config.model_samples, seed=config.seed
        )
        rows.append(Fig9Row(
            benchmark=ctx.name,
            fi_sdc=campaign.sdc_probability,
            predictions={"trident": trident, "epvf": epvf, "pvf": pvf},
        ))
    fi_values = [r.fi_sdc for r in rows]
    maes = {
        name: mean_absolute_error(
            [r.predictions[name] for r in rows], fi_values
        )
        for name in APPROACHES
    }
    return Fig9Result(rows, maes)
