"""Table I — characteristics of the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from .context import Workspace
from .report import format_table


@dataclass
class Table1Row:
    benchmark: str
    suite: str
    area: str
    program_input: str
    static_instructions: int
    dynamic_instructions: int


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def render(self) -> str:
        return format_table(
            ["Benchmark", "Suite/Author", "Area", "Input",
             "Static insts", "Dynamic insts"],
            [
                [r.benchmark, r.suite, r.area, r.program_input,
                 r.static_instructions, r.dynamic_instructions]
                for r in self.rows
            ],
            title="Table I: Characteristics of Benchmarks",
        )


def run_table1(workspace: Workspace) -> Table1Result:
    rows = []
    for ctx in workspace.contexts():
        golden = ctx.engine.golden()
        rows.append(Table1Row(
            benchmark=ctx.name,
            suite=ctx.spec.suite,
            area=ctx.spec.area,
            program_input=ctx.spec.input_desc,
            static_instructions=ctx.module.num_instructions,
            dynamic_instructions=golden.dynamic_count,
        ))
    return Table1Result(rows)
