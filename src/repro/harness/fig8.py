"""Figure 8 — SDC reduction from selective duplication under overhead
bounds, with protection guided by each of the three models.

The paper's setting: the overhead budget is 1/3 or 2/3 of the measured
full-duplication overhead; the chosen instructions are duplicated and
the resulting binary is evaluated with FI (FI is never used to choose).
Expected shape: TRIDENT ≥ fs+fc > fs reductions at both levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.simple_models import MODEL_NAMES
from ..fi.campaign import FaultInjector
from ..interp.engine import ExecutionEngine
from ..protection.duplication import duplicate_instructions
from ..protection.evaluate import select_instructions
from .context import Workspace
from .report import format_table, percent

#: The paper's two budget levels (fractions of full duplication).
OVERHEAD_LEVELS = (1.0 / 3.0, 2.0 / 3.0)


@dataclass
class Fig8Cell:
    protected_sdc: float
    reduction: float
    measured_overhead: float
    instructions_protected: int


@dataclass
class Fig8Row:
    benchmark: str
    baseline_sdc: float
    cells: dict[tuple[str, float], Fig8Cell]  # (model, level) -> cell


@dataclass
class Fig8Result:
    rows: list[Fig8Row]
    average_reduction: dict[tuple[str, float], float]

    def render(self) -> str:
        headers = ["Benchmark", "base SDC"]
        for level in OVERHEAD_LEVELS:
            for name in MODEL_NAMES:
                headers.append(f"{name}@{level:.0%}")
        body = []
        for row in self.rows:
            cells = [row.benchmark, percent(row.baseline_sdc)]
            for level in OVERHEAD_LEVELS:
                for name in MODEL_NAMES:
                    cells.append(percent(row.cells[(name, level)].protected_sdc))
            body.append(cells)
        table = format_table(
            headers, body,
            title="Figure 8: Protected SDC Probability by Model and "
                  "Overhead Bound",
        )
        summary = ["", "average SDC reduction:"]
        for level in OVERHEAD_LEVELS:
            parts = [
                f"{name} {percent(self.average_reduction[(name, level)], 0)}"
                for name in MODEL_NAMES
            ]
            summary.append(
                f"  at {level:.0%} of full-dup overhead: " + ", ".join(parts)
            )
        return table + "\n" + "\n".join(summary)


def run_fig8(workspace: Workspace) -> Fig8Result:
    config = workspace.config
    rows = []
    sums: dict[tuple[str, float], float] = {
        (name, level): 0.0
        for name in MODEL_NAMES for level in OVERHEAD_LEVELS
    }
    for ctx in workspace.contexts():
        baseline = ctx.injector.campaign(
            config.protection_fi_samples, seed=config.seed
        )
        baseline_dynamic = ctx.engine.golden().dynamic_count
        cells: dict[tuple[str, float], Fig8Cell] = {}
        for name in MODEL_NAMES:
            for level in OVERHEAD_LEVELS:
                selected = select_instructions(
                    ctx.module, ctx.profile, name, level
                )
                protected_module, _report = duplicate_instructions(
                    ctx.module, selected
                )
                engine = ExecutionEngine(protected_module)
                protected_dynamic = engine.golden().dynamic_count
                injector = FaultInjector(protected_module, engine)
                campaign = injector.campaign(
                    config.protection_fi_samples, seed=config.seed + 1
                )
                reduction = (
                    1.0 - campaign.sdc_probability / baseline.sdc_probability
                    if baseline.sdc_probability > 0 else 0.0
                )
                cells[(name, level)] = Fig8Cell(
                    protected_sdc=campaign.sdc_probability,
                    reduction=reduction,
                    measured_overhead=(
                        protected_dynamic / baseline_dynamic - 1.0
                    ),
                    instructions_protected=len(selected),
                )
                sums[(name, level)] += reduction
        rows.append(Fig8Row(
            benchmark=ctx.name,
            baseline_sdc=baseline.sdc_probability,
            cells=cells,
        ))
    averages = {key: total / len(rows) for key, total in sums.items()}
    return Fig8Result(rows, averages)
