"""Figure 6 — computation spent to predict SDC probabilities.

(a) overall SDC probability: wall-clock versus the number of sampled
    dynamic instructions.  FI cost grows linearly (one complete run per
    sample); TRIDENT pays a fixed profiling cost plus a near-flat
    incremental inference cost (memoized per static instruction).
(b) per-instruction SDC probabilities: wall-clock versus the number of
    static instructions, for FI with 100/500/1000 runs per instruction
    versus TRIDENT.

Like the paper, FI cost is projected from the measured mean time of a
small batch of real injection runs (Sec. V-C: "projected based on the
measurement of one FI trial (averaged over 30 FI runs)").
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .context import Workspace
from .report import format_table

#: Sample counts swept in Fig. 6a (paper: 500..7000).
SAMPLE_POINTS = (500, 1000, 2000, 3000, 5000, 7000)
#: Static instruction counts swept in Fig. 6b (paper: 50..7000).
INSTRUCTION_POINTS = (10, 25, 50, 100, 200)
#: Per-instruction FI run counts in Fig. 6b.
FI_RUNS_PER_INSTRUCTION = (100, 500, 1000)


@dataclass
class Fig6aSeries:
    samples: list[int]
    fi_seconds: list[float]
    trident_seconds: list[float]


@dataclass
class Fig6bSeries:
    instruction_counts: list[int]
    fi_seconds: dict[int, list[float]]  # runs-per-inst -> series
    trident_seconds: list[float]


@dataclass
class Fig6Result:
    per_run_seconds: float
    series_a: Fig6aSeries
    series_b: Fig6bSeries
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        rows_a = [
            [n, f"{fi:.3f}", f"{tr:.3f}", f"{fi / max(tr, 1e-9):.1f}x"]
            for n, fi, tr in zip(
                self.series_a.samples, self.series_a.fi_seconds,
                self.series_a.trident_seconds,
            )
        ]
        table_a = format_table(
            ["#samples", "FI (s)", "TRIDENT (s)", "speedup"],
            rows_a,
            title="Figure 6a: Time to Predict the Overall SDC Probability",
        )
        headers_b = ["#instructions"] + [
            f"FI-{k} (s)" for k in FI_RUNS_PER_INSTRUCTION
        ] + ["TRIDENT (s)"]
        rows_b = []
        for index, count in enumerate(self.series_b.instruction_counts):
            row = [count]
            for k in FI_RUNS_PER_INSTRUCTION:
                row.append(f"{self.series_b.fi_seconds[k][index]:.3f}")
            row.append(f"{self.series_b.trident_seconds[index]:.3f}")
            rows_b.append(row)
        table_b = format_table(
            headers_b, rows_b,
            title="Figure 6b: Time for Individual-Instruction SDC "
                  "Probabilities",
        )
        note = (f"(FI projected from measured mean run time "
                f"{self.per_run_seconds * 1000:.2f} ms, averaged across "
                f"benchmarks)")
        return "\n\n".join([table_a, table_b, note] + self.notes)


def _measure_per_run_seconds(workspace: Workspace, batch: int = 30) -> float:
    """Mean wall-clock of one complete FI run, across benchmarks."""
    total = 0.0
    runs = 0
    for ctx in workspace.contexts():
        rng = random.Random(workspace.config.seed)
        injector = ctx.injector
        started = time.perf_counter()
        for _ in range(batch):
            injector.run_one(injector.sample_injection(rng))
        total += time.perf_counter() - started
        runs += batch
    return total / runs


def run_fig6(workspace: Workspace) -> Fig6Result:
    config = workspace.config
    per_run = _measure_per_run_seconds(workspace)
    contexts = workspace.contexts()

    # -- (a): overall SDC, time vs #samples ---------------------------------
    fi_series = [per_run * n for n in SAMPLE_POINTS]
    trident_series = []
    for n in SAMPLE_POINTS:
        total = 0.0
        for ctx in contexts:
            # fresh and unwarmed: fig6 measures true cold inference cost
            model = ctx.model("trident", warm=False)
            started = time.perf_counter()
            model.overall_sdc(samples=n, seed=config.seed)
            inference = time.perf_counter() - started
            total += ctx.profile.profiling_seconds + inference
        trident_series.append(total / len(contexts))
    series_a = Fig6aSeries(list(SAMPLE_POINTS), fi_series, trident_series)

    # -- (b): per-instruction SDC, time vs #instructions --------------------
    fi_b: dict[int, list[float]] = {k: [] for k in FI_RUNS_PER_INSTRUCTION}
    trident_b: list[float] = []
    for count in INSTRUCTION_POINTS:
        for k in FI_RUNS_PER_INSTRUCTION:
            fi_b[k].append(per_run * k * count)
        total = 0.0
        for ctx in contexts:
            iids = ctx.injector.eligible_iids()[:count]
            model = ctx.model("trident", warm=False)
            started = time.perf_counter()
            for iid in iids:
                model.instruction_sdc(iid)
            inference = time.perf_counter() - started
            total += ctx.profile.profiling_seconds + inference
        trident_b.append(total / len(contexts))
    series_b = Fig6bSeries(list(INSTRUCTION_POINTS), fi_b, trident_b)

    return Fig6Result(per_run, series_a, series_b)
