"""Run every experiment of the evaluation and collect the reports."""

from __future__ import annotations

from dataclasses import dataclass

from .context import ExperimentConfig, Workspace
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig8 import Fig8Result, run_fig8
from .fig9 import Fig9Result, run_fig9
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2

EXPERIMENTS = ("table1", "fig5", "table2", "fig6", "fig7", "fig8", "fig9")


@dataclass
class EvaluationReport:
    table1: Table1Result
    fig5: Fig5Result
    table2: Table2Result
    fig6: Fig6Result
    fig7: Fig7Result
    fig8: Fig8Result
    fig9: Fig9Result

    def render(self) -> str:
        return "\n\n\n".join([
            self.table1.render(),
            self.fig5.render(),
            self.table2.render(),
            self.fig6.render(),
            self.fig7.render(),
            self.fig8.render(),
            self.fig9.render(),
        ])


def run_experiment(name: str, workspace: Workspace):
    """Run one experiment by id ("table1", "fig5", ...)."""
    runners = {
        "table1": run_table1,
        "fig5": run_fig5,
        "table2": run_table2,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
    }
    try:
        runner = runners[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {EXPERIMENTS}"
        ) from None
    return runner(workspace)


def run_all(config: ExperimentConfig | None = None,
            echo: bool = False) -> EvaluationReport:
    """Run the full evaluation; optionally print each report as it lands."""
    workspace = Workspace(config)
    results = {}
    for name in EXPERIMENTS:
        results[name] = run_experiment(name, workspace)
        if echo:
            print(results[name].render())
            print()
    return EvaluationReport(**results)
