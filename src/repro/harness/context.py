"""Shared per-benchmark state for the experiment harness.

Building a module, profiling it, and constructing engine + injector is
common to every experiment; :class:`BenchmarkContext` does it once and
caches the pieces, and :class:`ExperimentConfig` concentrates the size
knobs so scaled-down CI runs and full evaluation runs share code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..bench.registry import BENCHMARK_NAMES, build_module, get_benchmark
from ..core.simple_models import build_model
from ..core.trident import Trident
from ..fi.campaign import CampaignResult, FaultInjector
from ..fi.parallel import ModuleSpec, run_parallel_campaign
from ..interp.engine import ExecutionEngine
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from ..profiling.profiler import ProfilingInterpreter


@dataclass(frozen=True)
class ExperimentConfig:
    """Size knobs for one harness run.

    Defaults are a fast-but-meaningful configuration; the paper-scale
    equivalents (3000 FI samples, 100 per-instruction runs, 11 programs)
    are what EXPERIMENTS.md records.
    """

    scale: str = "small"
    fi_samples: int = 600
    model_samples: int = 600
    per_instruction_runs: int = 40
    max_instructions: int = 120  # cap for per-instruction experiments
    protection_fi_samples: int = 500
    seed: int = 2018
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    #: Worker processes for FI campaigns (1 = serial, in-process).
    fi_workers: int = 1
    #: Early-stopping target: stop a campaign once the Wilson 95% CI
    #: half-width on the SDC probability is below this (None = run all).
    fi_ci_halfwidth: float | None = None


#: Small config used by the pytest benchmarks to keep runtimes bounded.
QUICK = ExperimentConfig(
    scale="test", fi_samples=200, model_samples=200,
    per_instruction_runs=20, max_instructions=60,
    protection_fi_samples=200,
    benchmarks=("pathfinder", "bfs_rodinia", "hotspot"),
)


class BenchmarkContext:
    """Lazily built module/profile/engine/injector for one benchmark."""

    def __init__(self, name: str, config: ExperimentConfig):
        self.name = name
        self.config = config
        self.spec = get_benchmark(name)

    @cached_property
    def module(self) -> Module:
        return build_module(self.name, self.config.scale)

    @cached_property
    def profile(self) -> ProgramProfile:
        profile, outputs = ProfilingInterpreter(self.module).run()
        golden = self.engine.golden()
        if outputs != golden.outputs:
            raise RuntimeError(
                f"{self.name}: profiler and engine disagree on outputs"
            )
        return profile

    @cached_property
    def engine(self) -> ExecutionEngine:
        return ExecutionEngine(self.module)

    @cached_property
    def injector(self) -> FaultInjector:
        return FaultInjector(self.module, self.engine)

    def model(self, name: str) -> Trident:
        """A freshly-built model over the cached profile."""
        return build_model(name, self.module, self.profile)

    def fi_campaign(self, runs: int | None = None,
                    seed: int | None = None) -> CampaignResult:
        """FI campaign honoring the config's worker/early-stop knobs.

        Identical counts to ``injector.campaign`` for any worker count;
        with ``fi_ci_halfwidth`` set it may execute fewer runs.
        """
        config = self.config
        if runs is None:
            runs = config.fi_samples
        if seed is None:
            seed = config.seed
        if config.fi_workers <= 1 and config.fi_ci_halfwidth is None:
            return self.injector.campaign(runs, seed=seed)
        return run_parallel_campaign(
            runs, seed=seed,
            spec=ModuleSpec.from_benchmark(self.name, config.scale),
            injector=self.injector,
            workers=config.fi_workers,
            ci_halfwidth=config.fi_ci_halfwidth,
        )


class Workspace:
    """All benchmark contexts for one harness configuration."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or ExperimentConfig()
        self._contexts: dict[str, BenchmarkContext] = {}

    def context(self, name: str) -> BenchmarkContext:
        if name not in self._contexts:
            self._contexts[name] = BenchmarkContext(name, self.config)
        return self._contexts[name]

    def contexts(self) -> list[BenchmarkContext]:
        return [self.context(name) for name in self.config.benchmarks]
