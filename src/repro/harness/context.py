"""Shared per-benchmark state for the experiment harness.

Building a module, profiling it, and constructing engine + injector is
common to every experiment; :class:`BenchmarkContext` does it once and
caches the pieces, and :class:`ExperimentConfig` concentrates the size
knobs so scaled-down CI runs and full evaluation runs share code.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..bench.registry import BENCHMARK_NAMES, build_module, get_benchmark
from ..cache import (
    GoldenSummary,
    get_cache,
    golden_key,
    load_cached_profile,
    load_golden_summary,
    module_fingerprint,
    profile_key,
    store_cached_profile,
    store_golden_summary,
)
from ..core.simple_models import create_model
from ..core.trident import Trident
from ..fi.campaign import CampaignResult, FaultInjector
from ..fi.parallel import CampaignSettings, ModuleSpec, run_cached_campaign
from ..interp.engine import ExecutionEngine
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from ..profiling.profiler import ProfilingInterpreter


@dataclass(frozen=True)
class ExperimentConfig:
    """Size knobs for one harness run.

    Defaults are a fast-but-meaningful configuration; the paper-scale
    equivalents (3000 FI samples, 100 per-instruction runs, 11 programs)
    are what EXPERIMENTS.md records.
    """

    scale: str = "small"
    fi_samples: int = 600
    model_samples: int = 600
    per_instruction_runs: int = 40
    max_instructions: int = 120  # cap for per-instruction experiments
    protection_fi_samples: int = 500
    seed: int = 2018
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    #: Worker processes for FI campaigns (1 = serial, in-process).
    fi_workers: int = 1
    #: Early-stopping target: stop a campaign once the Wilson 95% CI
    #: half-width on the SDC probability is below this (None = run all).
    fi_ci_halfwidth: float | None = None
    #: Checkpoint-and-fork FI trials (suffix-only execution).  Counts
    #: are invariant to both knobs; stride 0 picks one automatically.
    fi_checkpoint: bool = True
    fi_checkpoint_stride: int = 0
    #: Interpreter tier ("codegen"/"closure"/"batch"); None = resolved
    #: default (REPRO_INTERP_TIER env, else codegen).  Outcomes are
    #: invariant across tiers.
    interp_tier: str | None = None
    #: Trials per lockstep group on the batch tier (0 = tier default).
    #: A wall-clock knob only: counts are identical for any lane count.
    batch_lanes: int = 0


#: Small config used by the pytest benchmarks to keep runtimes bounded.
QUICK = ExperimentConfig(
    scale="test", fi_samples=200, model_samples=200,
    per_instruction_runs=20, max_instructions=60,
    protection_fi_samples=200,
    benchmarks=("pathfinder", "bfs_rodinia", "hotspot"),
)


class BenchmarkContext:
    """Lazily built module/profile/engine/injector for one benchmark."""

    def __init__(self, name: str, config: ExperimentConfig):
        self.name = name
        self.config = config
        self.spec = get_benchmark(name)

    @cached_property
    def module(self) -> Module:
        return build_module(self.name, self.config.scale)

    @cached_property
    def fingerprint(self) -> str:
        """Content address of the module (canonical-IR SHA-256)."""
        return module_fingerprint(self.module)

    @cached_property
    def profile(self) -> ProgramProfile:
        """The profile, warm-started from the artifact cache.

        A hit skips the instrumented profiling run entirely; a miss
        profiles, cross-checks the outputs against the engine's golden
        run as before, then persists both the profile and the golden
        summary under the module fingerprint for every later run —
        including campaign workers in other processes.
        """
        cache = get_cache()
        key = profile_key(self.fingerprint)
        cached = load_cached_profile(cache, key)
        if cached is not None:
            return cached
        profile, outputs = ProfilingInterpreter(self.module).run()
        golden = self.engine.golden()
        if outputs != golden.outputs:
            raise RuntimeError(
                f"{self.name}: profiler and engine disagree on outputs"
            )
        store_cached_profile(cache, key, profile, outputs)
        gkey = golden_key(self.fingerprint)
        if load_golden_summary(cache, gkey) is None:
            store_golden_summary(cache, gkey, GoldenSummary.from_run(golden))
        return profile

    @cached_property
    def engine(self) -> ExecutionEngine:
        return ExecutionEngine(self.module, tier=self.config.interp_tier)

    @cached_property
    def injector(self) -> FaultInjector:
        golden = load_golden_summary(get_cache(), golden_key(self.fingerprint))
        return FaultInjector(self.module, self.engine, golden=golden,
                             batch_lanes=self.config.batch_lanes)

    def model(self, name: str, warm: bool = True) -> Trident:
        """A freshly-built model over the cached profile.

        With ``warm`` (the default) the model's per-instruction results
        are restored from — and persisted back to — the artifact cache
        and its query engine shares the process-wide per-function
        stores; fig6's timing sweeps pass ``warm=False`` to measure true
        cold inference cost on an isolated engine.
        """
        return create_model(name, self.module, self.profile, warm=warm)

    def fi_campaign(self, runs: int | None = None,
                    seed: int | None = None) -> CampaignResult:
        """FI campaign honoring the config's worker/early-stop knobs.

        Identical counts to ``injector.campaign`` for any worker count;
        with ``fi_ci_halfwidth`` set it may execute fewer runs.  Merged
        counts are content-addressed in the artifact cache, so a rerun
        with the same module/seed/stopping rule replays them instead of
        re-injecting (and the key excludes the worker count whenever the
        executed run set cannot depend on it).
        """
        config = self.config
        if runs is None:
            runs = config.fi_samples
        if seed is None:
            seed = config.seed
        return run_cached_campaign(
            runs, seed,
            spec=ModuleSpec.from_benchmark(self.name, config.scale),
            injector=lambda: self.injector,  # only built on a cache miss
            module=self.module,
            settings=CampaignSettings(
                workers=max(1, config.fi_workers),
                ci_halfwidth=config.fi_ci_halfwidth,
                checkpoint=config.fi_checkpoint,
                checkpoint_stride=config.fi_checkpoint_stride,
                interp_tier=config.interp_tier,
                batch_lanes=config.batch_lanes,
            ),
        )


class Workspace:
    """All benchmark contexts for one harness configuration."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or ExperimentConfig()
        self._contexts: dict[str, BenchmarkContext] = {}

    def context(self, name: str) -> BenchmarkContext:
        if name not in self._contexts:
            self._contexts[name] = BenchmarkContext(name, self.config)
        return self._contexts[name]

    def contexts(self) -> list[BenchmarkContext]:
        return [self.context(name) for name in self.config.benchmarks]
