"""Experiment harness: one runner per table/figure of the evaluation."""

from .ablations import AblationResult, run_ablations
from .context import QUICK, BenchmarkContext, ExperimentConfig, Workspace
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig8 import OVERHEAD_LEVELS, Fig8Result, run_fig8
from .fig9 import Fig9Result, run_fig9
from .inputs import InputSensitivityResult, run_input_sensitivity
from .optlevels import OptLevelResult, run_optlevels
from .report import format_table, percent
from .runner import EXPERIMENTS, EvaluationReport, run_all, run_experiment
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2

__all__ = [
    "AblationResult", "BenchmarkContext", "EXPERIMENTS", "EvaluationReport",
    "ExperimentConfig", "Fig5Result", "Fig6Result", "Fig7Result",
    "Fig8Result", "Fig9Result", "OVERHEAD_LEVELS", "QUICK", "Table1Result",
    "Table2Result", "Workspace", "format_table", "percent", "run_all",
    "InputSensitivityResult", "OptLevelResult", "run_ablations", "run_experiment", "run_input_sensitivity", "run_optlevels", "run_fig5", "run_fig6", "run_fig7", "run_fig8",
    "run_fig9", "run_table1", "run_table2",
]
