"""Benchmark registry: the Table I suite.

Each entry mirrors a row of the paper's Table I (suite/author, area,
input); ``build(scale)`` constructs the finalized IR module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.module import Module
from . import (
    bfs_parboil,
    bfs_rodinia,
    blackscholes,
    hercules,
    hotspot,
    libquantum,
    lulesh,
    nw,
    pathfinder,
    puremd,
    sad,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Metadata + builder for one benchmark."""

    name: str
    suite: str
    area: str
    input_desc: str
    #: build(scale, input_seed) -> finalized Module
    build: Callable[..., Module]


_MODULES = {
    "libquantum": libquantum,
    "blackscholes": blackscholes,
    "sad": sad,
    "bfs_parboil": bfs_parboil,
    "hercules": hercules,
    "lulesh": lulesh,
    "puremd": puremd,
    "nw": nw,
    "pathfinder": pathfinder,
    "hotspot": hotspot,
    "bfs_rodinia": bfs_rodinia,
}

#: Table I order.
BENCHMARK_NAMES = tuple(_MODULES)

_REGISTRY = {
    name: BenchmarkSpec(
        name=name,
        suite=mod.SUITE,
        area=mod.AREA,
        input_desc=mod.INPUT,
        build=mod.build,
    )
    for name, mod in _MODULES.items()
}


def all_benchmarks() -> list[BenchmarkSpec]:
    """All 11 benchmark specs, in Table I order."""
    return [_REGISTRY[name] for name in BENCHMARK_NAMES]


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {BENCHMARK_NAMES}"
        ) from None


def build_module(name: str, scale: str = "default",
                 input_seed: int = 0) -> Module:
    """Build one benchmark's finalized module.

    ``input_seed`` selects a different program input (initial data /
    graph / option portfolio), keeping the code identical — the setting
    of the paper's input-dependence future work (Sec. VII-B).
    """
    return get_benchmark(name).build(scale, input_seed)
