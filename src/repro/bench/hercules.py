"""Hercules (CMU): earthquake ground-motion simulation.

A 1D seismic wave equation on a heterogeneous material column, driven
by a source wavelet, sampled at receiver stations.  The per-cell
Laplacian lives in its own function, exercising interprocedural error
propagation through call arguments and return values.
"""

from __future__ import annotations

from ..ir import F64, I32, FunctionBuilder, Module, pointer_to
from ..ir.dsl import ArrayView
from .common import Lcg, pick_scale

SUITE = "Carnegie Mellon University"
AREA = "Earthquake simulation"
INPUT = "material column + Ricker-like source wavelet"


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    cells = pick_scale(scale, 12, 20, 32, 64)
    steps = pick_scale(scale, 6, 10, 16, 32)
    rng = Lcg(3 + 1000003 * input_seed)
    stiffness = rng.floats(cells, 0.05, 0.2)
    # Precomputed source wavelet (Ricker-ish pulse).
    wavelet = [
        round((1.0 - 2.0 * ((t - 4) / 2.0) ** 2)
              * 2.718281828 ** (-(((t - 4) / 2.0) ** 2)), 6)
        for t in range(steps)
    ]

    module = Module("hercules")

    # laplacian(u, i): second difference of the displacement field.
    lap = FunctionBuilder(
        module, "laplacian",
        arg_types=[pointer_to(F64), I32],
        arg_names=["field", "i"],
        return_type=F64,
    )
    field = lap.arg(0)
    index = lap.arg(1)
    field_view = ArrayView(lap, field.value, F64)
    left = field_view[lap.max(index - 1, lap.c(0))]
    right = field_view[lap.min(index + 1, lap.c(cells - 1))]
    center = field_view[index]
    lap.ret(left + right - center * 2.0)
    lap.done()

    f = FunctionBuilder(module, "main")
    material = f.global_array("material", F64, cells, stiffness)
    source = f.global_array("wavelet", F64, steps, wavelet)
    u_prev = f.array("u_prev", F64, cells)
    u_cur = f.array("u_cur", F64, cells)
    u_next = f.array("u_next", F64, cells)

    f.for_range(0, cells, lambda i: u_prev.__setitem__(i, 0.0), name="z1")
    f.for_range(0, cells, lambda i: u_cur.__setitem__(i, 0.0), name="z2")

    center_cell = cells // 2

    def timestep(t):
        # Inject the source wavelet at the column centre.
        u_cur[f.c(center_cell)] = u_cur[f.c(center_cell)] + source[t] * 0.1

        def update(i):
            lap_value = f.call(
                "laplacian", [f.wrap(u_cur.base), i], F64
            )
            u_next[i] = (
                u_cur[i] * 2.0 - u_prev[i] + lap_value * material[i]
            )
        f.for_range(0, cells, update, name="i")
        f.for_range(0, cells, lambda i: u_prev.__setitem__(i, u_cur[i]),
                    name="c1")
        f.for_range(0, cells, lambda i: u_cur.__setitem__(i, u_next[i]),
                    name="c2")

    f.for_range(0, steps, timestep, name="t")

    # Output: receiver stations at quarter points, 3 significant digits.
    for station in (cells // 4, cells // 2, 3 * cells // 4):
        f.out(u_cur[f.c(station)], precision=3)
    energy = f.local("energy", F64, init=0.0)
    f.for_range(0, cells,
                lambda i: energy.set(energy.get() + u_cur[i] * u_cur[i]),
                name="e")
    f.out(energy.get(), precision=3)
    f.done()
    return module.finalize()
