"""PuReMD (Purdue): reactive molecular dynamics, 2D Lennard-Jones
analogue.

Pairwise short-range forces under a cutoff (the geo/ffield/control
inputs become a deterministic particle box), integrated with velocity
Verlet.  The cutoff test is the classic data-dependent branch guarding
most of the computation.
"""

from __future__ import annotations

from ..ir import F64, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Purdue University"
AREA = "Reactive molecular dynamics simulation"
INPUT = "random particle box, LJ cutoff 2.0, velocity Verlet"

_CUTOFF_SQ = 4.0
_EPS = 0.3
_SIGMA_SQ = 1.1
_DT = 0.01


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    particles = pick_scale(scale, 8, 12, 18, 32)
    steps = pick_scale(scale, 2, 3, 4, 6)
    rng = Lcg(29 + 1000003 * input_seed)
    # Jittered grid: keeps initial separations near the LJ minimum so the
    # fault-free trajectory stays numerically tame.
    side = max(2, int(particles ** 0.5 + 0.999))
    spacing = 1.3
    pos_x, pos_y = [], []
    for p in range(particles):
        pos_x.append(round((p % side) * spacing
                           + rng.next_float(-0.05, 0.05), 6))
        pos_y.append(round((p // side) * spacing
                           + rng.next_float(-0.05, 0.05), 6))

    module = Module("puremd")
    f = FunctionBuilder(module, "main")
    x = f.global_array("pos_x", F64, particles, pos_x)
    y = f.global_array("pos_y", F64, particles, pos_y)
    vx = f.global_array("vel_x", F64, particles, [0.0] * particles)
    vy = f.global_array("vel_y", F64, particles, [0.0] * particles)
    fx = f.array("force_x", F64, particles)
    fy = f.array("force_y", F64, particles)
    potential = f.local("potential", F64, init=0.0)

    def timestep(_t):
        f.for_range(0, particles, lambda i: fx.__setitem__(i, 0.0), name="z1")
        f.for_range(0, particles, lambda i: fy.__setitem__(i, 0.0), name="z2")

        def pair_outer(i):
            def pair_inner(j):
                dx = x[i] - x[j]
                dy = y[i] - y[j]
                r2 = dx * dx + dy * dy

                def interact():
                    # Lennard-Jones force magnitude over r (using r^2
                    # powers only, like optimized MD kernels).
                    inv_r2 = _SIGMA_SQ / f.max(r2, f.c(0.01))
                    inv_r6 = inv_r2 * inv_r2 * inv_r2
                    magnitude = (inv_r6 * inv_r6 * 2.0 - inv_r6) * (24.0 * _EPS)
                    fx[i] = fx[i] + dx * magnitude
                    fy[i] = fy[i] + dy * magnitude
                    fx[j] = fx[j] - dx * magnitude
                    fy[j] = fy[j] - dy * magnitude
                    potential.set(
                        potential.get() + (inv_r6 * inv_r6 - inv_r6) * (4.0 * _EPS)
                    )

                f.if_(r2 < _CUTOFF_SQ, interact)
            f.for_range(i + 1, particles, pair_inner, name="j")
        f.for_range(0, particles, pair_outer, name="i")

        def integrate(i):
            vx[i] = vx[i] + fx[i] * _DT
            vy[i] = vy[i] + fy[i] * _DT
            x[i] = x[i] + vx[i] * _DT
            y[i] = y[i] + vy[i] * _DT
        f.for_range(0, particles, integrate, name="v")

    f.for_range(0, steps, timestep, name="t")

    f.out(potential.get(), precision=4)
    com_x = f.local("com_x", F64, init=0.0)
    com_y = f.local("com_y", F64, init=0.0)

    def fold(i):
        com_x.set(com_x.get() + x[i])
        com_y.set(com_y.get() + y[i])

    f.for_range(0, particles, fold, name="c")
    f.out(com_x.get() / float(particles), precision=4)
    f.out(com_y.get() / float(particles), precision=4)
    f.done()
    return module.finalize()
