"""LULESH (LLNL): Lagrangian shock hydrodynamics, 1D analogue.

Staggered-grid hydro mini-app: zone pressures drive nodal forces and
velocities; zone volumes and energies update from nodal motion.  Uses
division and sqrt (sound-speed-limited timestep) like the original's
``-s 1 -p`` problem.
"""

from __future__ import annotations

from ..ir import F64, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Lawrence Livermore National Laboratory"
AREA = "Hydrodynamics modeling"
INPUT = "1D shock tube: hot zone at the left boundary"

_GAMMA = 1.4


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    zones = pick_scale(scale, 8, 12, 20, 40)
    steps = pick_scale(scale, 4, 6, 10, 16)
    nodes = zones + 1
    rng = Lcg(13 + 1000003 * input_seed)
    # Initial energy: a hot region on the left plus small noise.
    energy_init = [
        round((2.0 if z < zones // 4 else 0.5) + rng.next_float(0.0, 0.05), 6)
        for z in range(zones)
    ]
    position_init = [round(float(n), 6) for n in range(nodes)]

    module = Module("lulesh")
    f = FunctionBuilder(module, "main")
    position = f.global_array("position", F64, nodes, position_init)
    velocity = f.global_array("velocity", F64, nodes, [0.0] * nodes)
    energy = f.global_array("energy", F64, zones, energy_init)
    pressure = f.array("pressure", F64, zones)
    volume = f.array("volume", F64, zones)

    dt = 0.02
    node_mass = 1.0

    def timestep(_t):
        # Equation of state: p = (gamma - 1) * rho * e with rho = 1/V.
        def eos(z):
            v = position[z + 1] - position[z]
            clamped = f.max(v, f.c(0.1))
            volume[z] = clamped
            pressure[z] = energy[z] * (_GAMMA - 1.0) / clamped
        f.for_range(0, zones, eos, name="z")

        # Nodal force = pressure differential; integrate velocity/position.
        def move(n):
            left = f.select(n > 0, pressure[f.max(n - 1, f.c(0))], f.c(0.0))
            right = f.select(
                n < zones, pressure[f.min(n, f.c(zones - 1))], f.c(0.0)
            )
            force = left - right
            velocity[n] = velocity[n] + force * (dt / node_mass)
            position[n] = position[n] + velocity[n] * dt
        f.for_range(0, nodes, move, name="n")

        # Energy update from pdV work; floor keeps the run stable under
        # fault-free execution.
        def work(z):
            new_volume = f.max(position[z + 1] - position[z], f.c(0.1))
            dv = new_volume - volume[z]
            energy[z] = f.max(energy[z] - pressure[z] * dv, f.c(0.01))
        f.for_range(0, zones, work, name="w")

    f.for_range(0, steps, timestep, name="t")

    # Output: total energy, shock-front sound speed, sampled profile.
    total = f.local("total", F64, init=0.0)
    f.for_range(0, zones,
                lambda z: total.set(total.get() + energy[z]), name="s")
    f.out(total.get(), precision=4)
    front = zones // 4
    sound_speed = f.sqrt(pressure[f.c(front)] * _GAMMA * volume[f.c(front)])
    f.out(sound_speed, precision=3)
    for probe in (0, zones // 2, zones - 1):
        f.out(energy[f.c(probe)], precision=3)
    f.done()
    return module.finalize()
