"""Pathfinder (Rodinia): dynamic programming over a 2D grid.

The paper's running example (Fig. 2) comes from this benchmark: an
init-like loop writes an array, later loops reload it, and the DP makes
biased branch decisions through min-selection.
"""

from __future__ import annotations

from ..ir import I32, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Rodinia"
AREA = "Dynamic programming"
INPUT = "rows x cols grid of random step costs"


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    rows = pick_scale(scale, 6, 8, 14, 24)
    cols = pick_scale(scale, 10, 16, 28, 64)
    rng = Lcg(42 + 1000003 * input_seed)
    wall_data = rng.ints(rows * cols, 0, 9)

    module = Module("pathfinder")
    f = FunctionBuilder(module, "main")
    wall = f.global_array("wall", I32, rows * cols, wall_data)
    src = f.array("src", I32, cols)
    dst = f.array("dst", I32, cols)

    # init(): first row of the wall seeds the DP frontier.
    f.for_range(0, cols, lambda j: src.__setitem__(j, wall[j]))

    # run(): roll the frontier down the grid, each cell adding the
    # cheapest of its three upper neighbours.
    def do_row(r):
        def do_col(j):
            center = src[j]
            left_index = f.max(j - 1, f.c(0))
            right_index = f.min(j + 1, f.c(cols - 1))
            best = f.min(f.min(src[left_index], center), src[right_index])
            dst[j] = wall[r * cols + j] + best
        f.for_range(0, cols, do_col, name="j")
        f.for_range(0, cols, lambda j: src.__setitem__(j, dst[j]), name="k")

    f.for_range(1, rows, do_row, name="r")

    # Program output: the cheapest path cost plus a frontier checksum.
    best = f.local("best", I32, init=1 << 20)
    f.for_range(0, cols, lambda j: best.set(f.min(best.get(), src[j])),
                name="m")
    checksum = f.local("checksum", I32, init=0)
    f.for_range(0, cols, lambda j: checksum.set(checksum.get() + src[j]),
                name="c")
    f.out(best.get())
    f.out(checksum.get())
    f.done()
    return module.finalize()
