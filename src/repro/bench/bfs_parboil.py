"""BFS (Parboil): queue-based graph traversal.

Unlike the Rodinia relaxation variant, this one uses an explicit work
queue with head/tail cursors — a different control-flow and memory
dependence shape (queue cells are written once and read once).
"""

from __future__ import annotations

from ..ir import I32, FunctionBuilder, Module
from .common import pick_scale, random_graph

SUITE = "Parboil"
AREA = "Graph traversal"
INPUT = "synthetic CSR graph, explicit BFS queue"


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    nodes = pick_scale(scale, 16, 32, 64, 160)
    degree = pick_scale(scale, 2, 3, 3, 4)
    offsets, targets = random_graph(nodes, degree, seed=23 + 1000003 * input_seed)

    module = Module("bfs_parboil")
    f = FunctionBuilder(module, "main")
    graph_offsets = f.global_array("offsets", I32, nodes + 1, offsets)
    graph_targets = f.global_array("targets", I32, len(targets), targets)
    # Every node enters the queue exactly once, so nodes slots suffice.
    queue = f.array("queue", I32, nodes)
    depth = f.array("depth", I32, nodes)

    f.for_range(0, nodes, lambda n: depth.__setitem__(n, -1))
    depth[f.c(0)] = 0
    queue[f.c(0)] = 0
    head = f.local("head", I32, init=0)
    tail = f.local("tail", I32, init=1)

    def drain():
        node = queue[head.get()]
        head.set(head.get() + 1)
        start = graph_offsets[node]
        stop = graph_offsets[node + 1]
        edge = f.local("edge", I32)
        edge.set(start)

        def do_edge():
            target = graph_targets[edge.get()]

            def discover():
                depth[target] = depth[node] + 1
                queue[tail.get()] = target
                tail.set(tail.get() + 1)

            f.if_(depth[target] < 0, discover)
            edge.set(edge.get() + 1)

        f.while_(lambda: edge.get() < stop, do_edge)

    f.while_(lambda: head.get() < tail.get(), drain)

    total = f.local("total", I32, init=0)
    deepest = f.local("deepest", I32, init=0)

    def accumulate(n):
        total.set(total.get() + depth[n])
        deepest.set(f.max(deepest.get(), depth[n]))

    f.for_range(0, nodes, accumulate, name="s")
    f.out(total.get())
    f.out(deepest.get())
    f.out(tail.get())
    f.done()
    return module.finalize()
