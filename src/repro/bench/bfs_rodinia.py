"""BFS (Rodinia): level-synchronous frontier graph traversal.

Mirrors the Rodinia kernel's structure: a frontier mask, an updating
mask and a visited mask, swept level by level until the frontier is
empty — each node's cost is written exactly once.  The outer
``while frontier-not-empty`` loop gives the model a biased
loop-terminating branch; the per-node mask checks are non-loop-
terminating.
"""

from __future__ import annotations

from ..ir import I32, FunctionBuilder, Module
from .common import pick_scale, random_graph

SUITE = "Rodinia"
AREA = "Graph traversal"
INPUT = "synthetic CSR graph (ring + random chords), frontier masks"


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    nodes = pick_scale(scale, 16, 32, 64, 160)
    degree = pick_scale(scale, 2, 3, 3, 4)
    offsets, targets = random_graph(nodes, degree, seed=7 + 1000003 * input_seed)

    module = Module("bfs_rodinia")
    f = FunctionBuilder(module, "main")
    graph_offsets = f.global_array("offsets", I32, nodes + 1, offsets)
    graph_targets = f.global_array("targets", I32, len(targets), targets)
    cost = f.array("cost", I32, nodes)
    mask = f.array("mask", I32, nodes)          # current frontier
    updating = f.array("updating", I32, nodes)  # next frontier
    visited = f.array("visited", I32, nodes)

    def init(n):
        cost[n] = -1
        mask[n] = 0
        updating[n] = 0
        visited[n] = 0

    f.for_range(0, nodes, init)
    cost[f.c(0)] = 0
    mask[f.c(0)] = 1
    visited[f.c(0)] = 1

    frontier = f.local("frontier", I32, init=1)

    def sweep():
        frontier.set(0)

        def expand(node):
            def visit_edges():
                mask[node] = 0
                start = graph_offsets[node]
                stop = graph_offsets[node + 1]
                edge = f.local("edge", I32)
                edge.set(start)

                def do_edge():
                    target = graph_targets[edge.get()]

                    def discover():
                        cost[target] = cost[node] + 1
                        updating[target] = 1

                    f.if_(visited[target] == 0, discover)
                    edge.set(edge.get() + 1)

                f.while_(lambda: edge.get() < stop, do_edge)

            f.if_(mask[node] == 1, visit_edges)

        f.for_range(0, nodes, expand, name="n")

        def advance(node):
            def promote():
                mask[node] = 1
                visited[node] = 1
                updating[node] = 0
                frontier.set(1)

            f.if_(updating[node] == 1, promote)

        f.for_range(0, nodes, advance, name="u")

    f.while_(lambda: frontier.get() > 0, sweep)

    # Output: depth checksum and two probe costs.
    total = f.local("total", I32, init=0)
    f.for_range(0, nodes, lambda n: total.set(total.get() + cost[n]),
                name="s")
    f.out(total.get())
    f.out(cost[f.c(nodes // 2)])
    f.out(cost[f.c(nodes - 1)])
    f.done()
    return module.finalize()
