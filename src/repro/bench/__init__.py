"""The 11-benchmark suite of Table I (mini-workload analogues)."""

from .common import SCALES, Lcg, pick_scale, random_graph
from .registry import (
    BENCHMARK_NAMES,
    BenchmarkSpec,
    all_benchmarks,
    build_module,
    get_benchmark,
)

__all__ = [
    "BENCHMARK_NAMES", "BenchmarkSpec", "Lcg", "SCALES", "all_benchmarks",
    "build_module", "get_benchmark", "pick_scale", "random_graph",
]
