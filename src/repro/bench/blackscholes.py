"""Blackscholes (Parsec): European option pricing.

Pure floating point data flow through the cumulative-normal polynomial
approximation (exp/log/sqrt intrinsics), with one data-dependent branch
per option (negative d1 reflects the CNDF).
"""

from __future__ import annotations

from ..ir import F32, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Parsec"
AREA = "Finance"
INPUT = "portfolio of random option parameters (in_4.txt analogue)"

_INV_SQRT_2PI = 0.3989422804014327
_RISK_FREE = 0.02


def _cndf(f, x):
    """Abramowitz-Stegun cumulative normal distribution approximation."""
    sign_flip = x < 0.0
    magnitude = f.abs(x)
    k = 1.0 / (magnitude * 0.2316419 + 1.0)
    poly = k * (0.319381530 + k * (-0.356563782 + k * (
        1.781477937 + k * (-1.821255978 + k * 1.330274429))))
    pdf = f.exp(magnitude * magnitude * -0.5) * _INV_SQRT_2PI
    upper = 1.0 - pdf * poly
    return f.select(sign_flip, 1.0 - upper, upper)


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    options = pick_scale(scale, 4, 8, 16, 48)
    rng = Lcg(11 + 1000003 * input_seed)
    spot = rng.floats(options, 20.0, 120.0)
    strike = rng.floats(options, 20.0, 120.0)
    volatility = rng.floats(options, 0.1, 0.6)
    expiry = rng.floats(options, 0.25, 2.0)

    module = Module("blackscholes")
    f = FunctionBuilder(module, "main")
    spot_arr = f.global_array("spot", F32, options, spot)
    strike_arr = f.global_array("strike", F32, options, strike)
    vol_arr = f.global_array("vol", F32, options, volatility)
    time_arr = f.global_array("time", F32, options, expiry)
    call_arr = f.array("call", F32, options)

    def price(i):
        s = spot_arr[i]
        k = strike_arr[i]
        v = vol_arr[i]
        t = time_arr[i]
        sqrt_t = f.sqrt(t)
        v_sqrt_t = v * sqrt_t
        d1 = (f.log(s / k) + (v * v * 0.5 + _RISK_FREE) * t) / v_sqrt_t
        d2 = d1 - v_sqrt_t
        discount = f.exp(t * -_RISK_FREE)
        call_arr[i] = s * _cndf(f, d1) - k * discount * _cndf(f, d2)

    f.for_range(0, options, price, name="i")

    # Output: every priced option at 4 significant digits plus the
    # portfolio total.
    total = f.local("total", F32, init=0.0)

    def emit(i):
        f.out(call_arr[i], precision=4)
        total.set(total.get() + call_arr[i])

    f.for_range(0, options, emit, name="o")
    f.out(total.get(), precision=4)
    f.done()
    return module.finalize()
