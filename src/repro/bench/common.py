"""Shared helpers for the benchmark suite.

Benchmarks need deterministic input data; we generate it with a small
LCG so modules are bit-identical across runs and platforms (Python's
``random`` would also be deterministic, but an explicit LCG keeps the
benchmarks self-contained and seed-stable across Python versions).
"""

from __future__ import annotations


class Lcg:
    """Deterministic 32-bit linear congruential generator (Numerical
    Recipes constants)."""

    def __init__(self, seed: int):
        self.state = seed & 0xFFFFFFFF

    def next_u32(self) -> int:
        self.state = (1664525 * self.state + 1013904223) & 0xFFFFFFFF
        return self.state

    def next_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        if high < low:
            raise ValueError("empty range")
        span = high - low + 1
        return low + self.next_u32() % span

    def next_float(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * (self.next_u32() / 4294967296.0)

    def ints(self, count: int, low: int, high: int) -> list[int]:
        return [self.next_int(low, high) for _ in range(count)]

    def floats(self, count: int, low: float = 0.0,
               high: float = 1.0) -> list[float]:
        return [round(self.next_float(low, high), 6) for _ in range(count)]


def random_graph(nodes: int, avg_degree: int, seed: int) -> tuple[list[int], list[int]]:
    """Adjacency in CSR form: (row offsets len nodes+1, edge targets).

    Connected-ish: node i always has an edge to (i+1) % nodes, plus
    random extras — the shape Rodinia/Parboil BFS inputs have.
    """
    rng = Lcg(seed)
    adjacency: list[list[int]] = [[] for _ in range(nodes)]
    for node in range(nodes):
        adjacency[node].append((node + 1) % nodes)
        for _ in range(max(0, avg_degree - 1)):
            target = rng.next_int(0, nodes - 1)
            if target != node and target not in adjacency[node]:
                adjacency[node].append(target)
    offsets = [0]
    targets: list[int] = []
    for neighbors in adjacency:
        targets.extend(neighbors)
        offsets.append(len(targets))
    return offsets, targets


#: Scale presets: benchmarks accept one of these names and size their
#: inputs accordingly.  "test" keeps unit tests fast; "default" is the
#: evaluation scale; "large" stresses scalability experiments.
SCALES = ("test", "small", "default", "large")


def pick_scale(scale: str, test, small, default, large):
    """Select a per-scale parameter value."""
    if scale == "test":
        return test
    if scale == "small":
        return small
    if scale == "default":
        return default
    if scale == "large":
        return large
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
