"""Needleman-Wunsch (Rodinia): DNA sequence alignment by dynamic
programming over a score matrix."""

from __future__ import annotations

from ..ir import I32, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Rodinia"
AREA = "DNA sequence optimization"
INPUT = "two random base sequences, gap penalty 2"

_MATCH = 3
_MISMATCH = -2
_GAP = -2


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    length = pick_scale(scale, 8, 12, 20, 48)
    rng = Lcg(5 + 1000003 * input_seed)
    seq_a = rng.ints(length, 0, 3)
    seq_b = rng.ints(length, 0, 3)
    width = length + 1

    module = Module("nw")
    f = FunctionBuilder(module, "main")
    bases_a = f.global_array("seq_a", I32, length, seq_a)
    bases_b = f.global_array("seq_b", I32, length, seq_b)
    score = f.array("score", I32, width * width)

    # Boundary: accumulating gap penalties along row/column zero.
    score[f.c(0)] = 0
    f.for_range(1, width, lambda i: score.__setitem__(i, i * _GAP), name="bi")
    f.for_range(1, width,
                lambda j: score.__setitem__(j * width, j * _GAP), name="bj")

    def fill_row(i):
        def fill_cell(j):
            match = f.select(
                bases_a[i - 1] == bases_b[j - 1],
                f.c(_MATCH), f.c(_MISMATCH),
            )
            diagonal = score[(i - 1) * width + (j - 1)] + match
            up = score[(i - 1) * width + j] + _GAP
            left = score[i * width + (j - 1)] + _GAP
            score[i * width + j] = f.max(f.max(diagonal, up), left)
        f.for_range(1, width, fill_cell, name="j")

    f.for_range(1, width, fill_row, name="i")

    # Output: the alignment score and an anti-diagonal checksum.
    f.out(score[f.c(width * width - 1)])
    checksum = f.local("checksum", I32, init=0)
    f.for_range(
        0, width,
        lambda k: checksum.set(checksum.get() + score[k * width + (width - 1 - k)]),
        name="k",
    )
    f.out(checksum.get())
    f.done()
    return module.finalize()
