"""Libquantum (SPEC): quantum register gate simulation.

Like the original, the register is a set of basis states manipulated
with bitwise gates (X, CNOT, Toffoli, phase flips) — a workload
dominated by logic operations, whose masking the fs tuples capture.
The "33 5" style input becomes (qubits, gate rounds).
"""

from __future__ import annotations

from ..ir import I32, I64, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "SPEC"
AREA = "Quantum computing"
INPUT = "(qubits, gate rounds) acting on a basis-state table"


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    qubits = pick_scale(scale, 6, 8, 10, 14)
    states = pick_scale(scale, 12, 24, 48, 96)
    rounds = pick_scale(scale, 2, 3, 4, 6)
    rng = Lcg(33 + 1000003 * input_seed)
    initial_states = [rng.next_int(0, (1 << qubits) - 1) for _ in range(states)]
    # Gate program: (kind, control, target) triples.
    gate_kinds = rng.ints(rounds * 3, 0, 2)
    gate_controls = rng.ints(rounds * 3, 0, qubits - 1)
    gate_targets = rng.ints(rounds * 3, 0, qubits - 1)

    module = Module("libquantum")
    f = FunctionBuilder(module, "main")
    reg = f.global_array("reg", I64, states, initial_states)
    phase = f.global_array("phase", I32, states, [0] * states)
    kinds = f.global_array("gate_kind", I32, len(gate_kinds), gate_kinds)
    controls = f.global_array("gate_ctrl", I32, len(gate_controls),
                              gate_controls)
    targets = f.global_array("gate_tgt", I32, len(gate_targets), gate_targets)

    n_gates = len(gate_kinds)

    def apply_gate(g):
        kind = kinds[g]
        control_bit = (f.c(1, I64) << controls[g].to_int(I64))
        target_bit = (f.c(1, I64) << targets[g].to_int(I64))

        def per_state(s):
            state = reg[s]

            def x_gate():
                reg[s] = state ^ target_bit

            def cnot_gate():
                f.if_((state & control_bit) != f.c(0, I64),
                      lambda: reg.__setitem__(s, state ^ target_bit))

            def phase_gate():
                f.if_((state & target_bit) != f.c(0, I64),
                      lambda: phase.__setitem__(s, phase[s] + 1))

            f.if_(kind == 0, x_gate,
                  lambda: f.if_(kind == 1, cnot_gate, phase_gate))

        f.for_range(0, states, per_state, name="s")

    f.for_range(0, n_gates, apply_gate, name="g")

    # Output: register checksum (XOR over states) and total phase.
    xor_sum = f.local("xor_sum", I64, init=0)
    phase_sum = f.local("phase_sum", I32, init=0)

    def fold(s):
        xor_sum.set(xor_sum.get() ^ reg[s])
        phase_sum.set(phase_sum.get() + phase[s])

    f.for_range(0, states, fold, name="f")
    f.out(xor_sum.get().to_int(I32))
    f.out(phase_sum.get())
    f.done()
    return module.finalize()
