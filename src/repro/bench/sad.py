"""SAD (Parboil): sum-of-absolute-differences block matching.

Video-encoding kernel: for every block of the current frame, search a
window in the reference frame for the minimum-SAD offset.  Absolute
values and running minima make select-heavy integer data flow.
"""

from __future__ import annotations

from ..ir import I32, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Parboil"
AREA = "Video encoding"
INPUT = "reference.bin / frame.bin analogue: two random frames"

_BLOCK = 4


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    size = pick_scale(scale, 8, 12, 16, 32)       # frame side (pixels)
    window = pick_scale(scale, 1, 1, 2, 3)         # search radius (blocks)
    rng = Lcg(17 + 1000003 * input_seed)
    reference = rng.ints(size * size, 0, 255)
    # Current frame = reference shifted + noise so matches are nontrivial.
    current = [
        (reference[(i + size + 1) % (size * size)] + rng.next_int(-6, 6)) % 256
        for i in range(size * size)
    ]
    blocks_per_side = size // _BLOCK

    module = Module("sad")
    f = FunctionBuilder(module, "main")
    ref = f.global_array("reference", I32, size * size, reference)
    cur = f.global_array("current", I32, size * size, current)
    best_sad = f.array("best_sad", I32, blocks_per_side * blocks_per_side)
    best_offset = f.array("best_off", I32, blocks_per_side * blocks_per_side)

    def match_block(by):
        def match_block_x(bx):
            block_id = by * blocks_per_side + bx
            best_sad[block_id] = 1 << 24
            best_offset[block_id] = 0

            def try_offset(dy):
                def try_offset_x(dx):
                    acc = f.local("acc", I32, init=0)

                    def row(py):
                        def col(px):
                            cy = by * _BLOCK + py
                            cx = bx * _BLOCK + px
                            ry = f.min(
                                f.max(cy + dy, f.c(0)), f.c(size - 1)
                            )
                            rx = f.min(
                                f.max(cx + dx, f.c(0)), f.c(size - 1)
                            )
                            diff = cur[cy * size + cx] - ref[ry * size + rx]
                            acc.set(acc.get() + f.abs(diff))
                        f.for_range(0, _BLOCK, col, name="px")
                    f.for_range(0, _BLOCK, row, name="py")

                    def take():
                        best_sad[block_id] = acc.get()
                        best_offset[block_id] = (
                            (dy + window) * (2 * window + 1) + (dx + window)
                        )

                    f.if_(acc.get() < best_sad[block_id], take)
                f.for_range(-window, window + 1, try_offset_x, name="dx")
            f.for_range(-window, window + 1, try_offset, name="dy")
        f.for_range(0, blocks_per_side, match_block_x, name="bx")

    f.for_range(0, blocks_per_side, match_block, name="by")

    total = f.local("total", I32, init=0)
    offsets = f.local("offsets", I32, init=0)

    def fold(b):
        total.set(total.get() + best_sad[b])
        offsets.set(offsets.get() + best_offset[b])

    f.for_range(0, blocks_per_side * blocks_per_side, fold, name="b")
    f.out(total.get())
    f.out(offsets.get())
    f.out(best_sad[f.c(0)])
    f.done()
    return module.finalize()
