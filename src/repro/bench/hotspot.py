"""Hotspot (Rodinia): thermal simulation stencil.

The paper's floating-point output-masking example: Hotspot stores f32
temperatures but prints them with a 2-digit ``%g``, so low mantissa
corruption often vanishes in the rounding (Sec. IV-E).
"""

from __future__ import annotations

from ..ir import F32, I32, FunctionBuilder, Module
from .common import Lcg, pick_scale

SUITE = "Rodinia"
AREA = "Temperature and power simulation"
INPUT = "grid of initial temperatures and per-cell power"


def build(scale: str = "default", input_seed: int = 0) -> Module:
    """Build the benchmark; ``input_seed`` varies the program input
    (Sec. VII-B: SDC probabilities are input-dependent)."""
    size = pick_scale(scale, 6, 8, 12, 24)
    steps = pick_scale(scale, 2, 3, 4, 6)
    rng = Lcg(99 + 1000003 * input_seed)
    cells = size * size
    temp_init = rng.floats(cells, 60.0, 80.0)
    power_init = rng.floats(cells, 0.0, 1.5)

    module = Module("hotspot")
    f = FunctionBuilder(module, "main")
    temp = f.global_array("temp", F32, cells, temp_init)
    power = f.global_array("power", F32, cells, power_init)
    scratch = f.array("scratch", F32, cells)

    coupling = 0.05
    heat_gain = 0.1

    def step(_t):
        def do_row(r):
            def do_col(c):
                idx = r * size + c
                center = temp[idx]
                north = temp[f.max(r - 1, f.c(0)) * size + c]
                south = temp[f.min(r + 1, f.c(size - 1)) * size + c]
                west = temp[r * size + f.max(c - 1, f.c(0))]
                east = temp[r * size + f.min(c + 1, f.c(size - 1))]
                laplacian = north + south + west + east - center * 4.0
                scratch[idx] = (
                    center + laplacian * coupling + power[idx] * heat_gain
                )
            f.for_range(0, size, do_col, name="c")
        f.for_range(0, size, do_row, name="r")
        f.for_range(0, cells, lambda i: temp.__setitem__(i, scratch[i]),
                    name="w")

    f.for_range(0, steps, step, name="t")

    # Output: hottest cell and a sampled diagonal, printed at 2
    # significant digits like the original's %g.
    hottest = f.local("hottest", F32, init=0.0)
    f.for_range(0, cells,
                lambda i: hottest.set(f.max(hottest.get(), temp[i])),
                name="h")
    f.out(hottest.get(), precision=2)
    stride = max(1, size // 4)
    probe = f.local("probe", I32, init=0)

    def emit_diag():
        index = probe.get() * size + probe.get()
        f.out(temp[index], precision=2)
        probe.set(probe.get() + stride)

    f.while_(lambda: probe.get() < size, emit_diag)
    f.done()
    return module.finalize()
