"""TRIDENT reproduction: modeling soft-error propagation in programs.

A self-contained Python reproduction of "Modeling Soft-Error Propagation
in Programs" (Li, Pattabiraman, Hari, Sullivan, Tsai — DSN 2018):

* :mod:`repro.ir` — a typed LLVM-like mini-IR with builder eDSL, textual
  printer/parser and verifier (the substrate the paper builds on LLVM);
* :mod:`repro.interp` — a compiled interpreter with a segmented memory
  model and built-in single-bit fault injection (the LLFI analogue);
* :mod:`repro.profiling` — the dynamic profiles TRIDENT consumes;
* :mod:`repro.core` — the three-level model (fs, fc, fm) and the two
  simpler comparison models;
* :mod:`repro.fi` — statistical and per-instruction FI campaigns;
* :mod:`repro.baselines` — PVF and ePVF;
* :mod:`repro.protection` — knapsack-guided selective duplication;
* :mod:`repro.bench` — the 11-benchmark suite of Table I;
* :mod:`repro.harness` — one experiment runner per table/figure;
* :mod:`repro.stats` — paired t-tests and confidence intervals.

Quickstart::

    from repro import Trident, FaultInjector, build_module

    module = build_module("pathfinder")
    model = Trident.build(module)           # profile once, no FI
    print(model.overall_sdc())              # program SDC probability
    print(model.instruction_sdc(42))        # per-instruction

    fi = FaultInjector(module)              # ground truth to compare
    print(fi.campaign(3000).sdc_probability)
"""

from .baselines import EpvfModel, PvfModel
from .bench import BENCHMARK_NAMES, all_benchmarks, build_module
from .core import (
    Trident,
    TridentConfig,
    build_all_models,
    build_model,
    fs_fc_config,
    fs_only_config,
    trident_config,
)
from .fi import CampaignResult, FaultInjector
from .harness import ExperimentConfig, Workspace, run_all, run_experiment
from .interp import ExecutionEngine, Injection, RunResult
from .ir import FunctionBuilder, Module, parse_module, print_module
from .opt import OptimizationReport, optimize
from .profiling import ProfilingInterpreter, ProgramProfile, load_profile, save_profile
from .protection import evaluate_protection, knapsack_select
from .report import ResilienceReport, generate_report

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES", "CampaignResult", "EpvfModel", "ExecutionEngine",
    "ExperimentConfig", "FaultInjector", "FunctionBuilder", "Injection",
    "Module", "OptimizationReport", "ProfilingInterpreter", "ProgramProfile", "PvfModel", "ResilienceReport",
    "RunResult", "Trident", "TridentConfig", "Workspace", "__version__",
    "all_benchmarks", "build_all_models", "build_model", "build_module",
    "evaluate_protection", "fs_fc_config", "fs_only_config",
    "generate_report", "knapsack_select", "load_profile", "optimize", "parse_module", "print_module", "run_all", "save_profile",
    "run_experiment", "trident_config",
]
