"""Lazy, memoized, dependency-validated query evaluation.

The engine does not compute anything itself — the sub-models still own
their algorithms.  It gives each (query, function) pair a
:class:`StoreView`: a content-addressed entry dict the sub-model reads
before computing and writes after.  Because the store key is the
function's *content* (canonical fingerprint + profile-slice digest +
config projection), views are shared process-wide across module clones:
the warm model after a transform picks up the untouched functions'
entries that the cold model wrote, with zero invalidation bookkeeping.

Interprocedural entries carry a dependency map
``{function name -> input key at derivation time, "~callgraph" ->
callgraph digest}`` that is revalidated on every read against the
reading engine's module, so an entry derived through a callee that has
since changed (or gained a caller) misses instead of serving a stale
value.
"""

from __future__ import annotations

from ..cache.artifacts import (
    function_results_key,
    load_function_results,
    store_function_results,
)
from ..cache.disk import get_cache
from ..cache.fingerprint import config_digest
from ..cache.manager import analysis_manager_for, analysis_stats_line
from .keys import LocalIndex, callgraph_digest, function_input_keys
from .registry import CFG_QUERY_OF, QUERIES, config_projection, query_dag_lines


class _Miss:
    __slots__ = ()

    def __repr__(self) -> str:
        return "MISS"


#: Sentinel distinguishing "no entry" from a legitimately falsy value.
MISS = _Miss()

#: Pseudo-dependency token: the entry depends on the callgraph shape
#: (a *new* caller of a function changes Ret handling inside it without
#: changing any function the entry's old dependency set names).
CALLGRAPH_DEP = "~callgraph"

#: (query name, input key, config projection, salt) -> {entry key -> _Entry}
_SHARED_STORES: dict[tuple, dict] = {}


def reset_query_stores() -> None:
    """Drop all shared in-memory query stores (tests)."""
    _SHARED_STORES.clear()


class _Entry:
    __slots__ = ("value", "deps")

    def __init__(self, value, deps=None):
        self.value = value
        self.deps = deps


class QueryStats:
    """Per-query hit/miss/invalidation counters for one engine."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: dict[str, list[int]] = {}

    def bump(self, name: str, slot: int, amount: int = 1) -> None:
        if amount:
            self.counts.setdefault(name, [0, 0, 0])[slot] += amount

    def hits(self, name: str) -> int:
        return self.counts.get(name, (0, 0, 0))[0]

    def misses(self, name: str) -> int:
        return self.counts.get(name, (0, 0, 0))[1]

    def invalidated(self, name: str) -> int:
        return self.counts.get(name, (0, 0, 0))[2]

    def rows(self) -> list[tuple[str, int, int, int]]:
        return [(name, *self.counts[name]) for name in sorted(self.counts)]


class StoreView:
    """One (query, function) slice of a content-addressed store."""

    __slots__ = ("engine", "name", "function", "entries", "hits", "misses",
                 "dirty", "_disk_key")

    def __init__(self, engine: "QueryEngine", name: str, function: str,
                 entries: dict, disk_key: str | None = None):
        self.engine = engine
        self.name = name
        self.function = function
        self.entries = entries
        self.hits = 0
        self.misses = 0
        self.dirty = 0
        self._disk_key = disk_key

    def get(self, key):
        """The stored value, or :data:`MISS` (never raises)."""
        entry = self.entries.get(key)
        if entry is not None and entry.deps is not None:
            if not self.engine._deps_valid(entry.deps):
                del self.entries[key]
                self.engine.stats.bump(self.name, 2)
                entry = None
        if entry is None:
            self.misses += 1
            self.engine.stats.bump(self.name, 1)
            return MISS
        self.hits += 1
        self.engine.stats.bump(self.name, 0)
        return entry.value

    def put(self, key, value, deps: dict | None = None):
        self.entries[key] = _Entry(value, deps)
        self.dirty += 1
        return value

    def flush(self) -> bool:
        """Persist this view's entries to the artifact cache."""
        if self._disk_key is None or not self.dirty:
            return False
        payload = {
            key: (entry.value, entry.deps)
            for key, entry in self.entries.items()
        }
        if store_function_results(get_cache(), self._disk_key, payload):
            self.dirty = 0
            return True
        return False


class QueryEngine:
    """Query-store access for one (module, profile, config) triple.

    ``shared=False`` gives the engine private stores (and no disk
    persistence), so cold-build timings — fig6's inference-cost numbers
    — stay honest instead of silently borrowing another model's work.
    """

    def __init__(self, module, profile, config, *, shared: bool = True):
        self.module = module
        self.profile = profile
        self.config = config
        self.shared = shared
        self.index = LocalIndex.of(module)
        self.manager = analysis_manager_for(module)
        self.stats = QueryStats()
        self._input_keys = function_input_keys(module, profile)
        self._callgraph = callgraph_digest(module)
        self._views: dict[tuple, StoreView] = {}
        self._projections: dict[str, str] = {}

    # -- inputs ------------------------------------------------------------

    def input_key(self, name: str) -> str:
        """Current input key of ``name`` (function or pseudo-input).

        Dependency maps always record the *full* key (local + memory
        digests) — conservative: an entry derived from a function whose
        memory behaviour changed must not be served stale.
        """
        if name == CALLGRAPH_DEP:
            return self._callgraph
        pair = self._input_keys.get(name)
        return pair[1] if pair is not None else ""

    def deps_for(self, names, exclude: str | None = None) -> dict | None:
        """Dependency key map over ``names`` (or None when empty)."""
        deps = {
            name: self.input_key(name)
            for name in names if name != exclude
        }
        return deps or None

    def _deps_valid(self, deps: dict) -> bool:
        return all(self.input_key(name) == key for name, key in deps.items())

    # -- stores ------------------------------------------------------------

    def _projection(self, name: str) -> str:
        proj = self._projections.get(name)
        if proj is None:
            proj = config_projection(QUERIES[name], self.config)
            self._projections[name] = proj
        return proj

    def view(self, name: str, function: str, salt=None) -> StoreView:
        """The store view of ``name`` for ``function``.

        Keyed on the function's *content*, not its name — two identical
        functions (or the same function before/after an untouched-module
        transform) share one view.
        """
        view_key = (name, function, salt)
        view = self._views.get(view_key)
        if view is not None:
            return view
        spec = QUERIES[name]
        pair = self._input_keys.get(function, ("", ""))
        # Memory-reading queries (fm, sdc) key on the full digest;
        # everything else survives neighbour-only memory-graph changes.
        input_key = pair[1] if spec.memory else pair[0]
        # Interprocedural results are scoped by function name: identical
        # content does not imply identical call-site routing.
        scope = function if spec.interprocedural else ""
        store_key = (name, scope, input_key, self._projection(name),
                     repr(salt))
        disk_key = None
        if self.shared:
            entries = _SHARED_STORES.setdefault(store_key, {})
            if spec.persist:
                disk_key = function_results_key(
                    name, input_key, self._projection(name), repr(salt),
                    scope,
                )
                if not entries:
                    loaded = load_function_results(get_cache(), disk_key)
                    for local, (value, deps) in (loaded or {}).items():
                        entries.setdefault(local, _Entry(value, deps))
        else:
            entries = {}
        view = StoreView(self, name, function, entries, disk_key)
        self._views[view_key] = view
        return view

    def flush(self) -> int:
        """Write all dirty persisted views to the artifact cache."""
        return sum(1 for view in self._views.values() if view.flush())

    # -- CFG analyses ------------------------------------------------------

    def cfg(self, kind: str, function):
        """A CFG analysis via the AnalysisManager, counted as a query."""
        before = self.manager.counts(kind)
        result = self.manager.get(kind, function)
        after = self.manager.counts(kind)
        name = CFG_QUERY_OF[kind]
        self.stats.bump(name, 0, after[0] - before[0])
        self.stats.bump(name, 1, after[1] - before[1])
        self.stats.bump(name, 2, after[2] - before[2])
        return result

    # -- reporting ---------------------------------------------------------

    def explain(self) -> list[str]:
        """Query DAG plus this engine's per-query counters."""
        lines = ["query DAG:"]
        lines += ["  " + line for line in query_dag_lines()]
        lines.append("")
        lines.append(f"config digest: {config_digest(self.config)[:16]}")
        lines.append(f"callgraph digest: {self._callgraph[:16]}")
        lines.append("")
        rows = self.stats.rows()
        if rows:
            lines.append("query counters (hit/miss/invalidated):")
            for name, hits, misses, invalidated in rows:
                lines.append(
                    f"  {name:<22} {hits:>6}h {misses:>6}m {invalidated:>4}i"
                )
        else:
            lines.append("query counters: no queries evaluated yet")
        analyses = analysis_stats_line()
        if analyses:
            lines.append(analyses)
        return lines
