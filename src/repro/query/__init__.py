"""Query-based incremental analysis pipeline.

Every analysis the models consume — CFG analyses, tuple derivation, fs
terminal sequences, fc branch results, the fm store fixed point,
execution weighting, per-instruction SDC and the PVF/ePVF masks — is a
registered *query* (:mod:`repro.query.registry`) computed lazily and
memoized at **function granularity** in content-addressed stores
(:mod:`repro.query.engine`).  Store keys combine the function's
canonical fingerprint, its profile-slice digest and the projection of
the config fields the query reads; interprocedural entries additionally
record per-entry dependency key maps, revalidated on every read.  After
a transform, only the queries of mutated functions (and of entries that
genuinely depended on them) recompute.
"""

from .engine import (
    CALLGRAPH_DEP,
    MISS,
    QueryEngine,
    QueryStats,
    reset_query_stores,
)
from .keys import (
    LocalIndex,
    callgraph_digest,
    function_input_keys,
    profile_slices,
)
from .registry import QUERIES, QuerySpec, config_projection, query_dag_lines

__all__ = [
    "CALLGRAPH_DEP", "LocalIndex", "MISS", "QUERIES", "QueryEngine",
    "QuerySpec", "QueryStats", "callgraph_digest", "config_projection",
    "function_input_keys", "profile_slices", "query_dag_lines",
    "reset_query_stores",
]
