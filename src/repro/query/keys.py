"""Function-granular content addressing for the query pipeline.

Three ingredients turn whole-module keys into per-function ones:

* :class:`LocalIndex` — the iid <-> (function, local position) mapping
  of one finalized module, plus symbolization of cross-function
  references as ``(function name, local position)`` pairs.  Query store
  entries hold *local* coordinates only, so they stay valid (and
  shareable) across module clones and module-wide iid renumbering.
* :func:`profile_slices` — per-function digests of the profile
  restricted to one function's instructions, in local coordinates.
  Store→load edges and reader sets belong to the *store's* home
  function (fm's unit of work); cross-function loads are symbolized.
* :func:`callgraph_digest` — the caller-multiset-per-callee structure
  interprocedural propagation negatively depends on: a *new* caller of
  ``f`` adds return edges to propagations inside ``f`` even though no
  function in their old dependency set changed.
"""

from __future__ import annotations

import hashlib
import json
from weakref import WeakKeyDictionary

from ..cache.fingerprint import (
    combine_key,
    function_fingerprints,
    module_fingerprint,
)
from ..ir.instructions import Call
from ..ir.module import Module

#: module -> (revision, LocalIndex)
_INDEXES: WeakKeyDictionary = WeakKeyDictionary()

#: module -> (revision, callgraph digest)
_CALLGRAPHS: WeakKeyDictionary = WeakKeyDictionary()


class LocalIndex:
    """iid <-> (function name, local position) maps for one module."""

    __slots__ = ("to_local", "home", "functions")

    def __init__(self, module: Module):
        self.to_local: dict[int, tuple[str, int]] = {}
        self.home: dict[int, str] = {}
        self.functions: dict[str, list] = {}
        for function in module.functions.values():
            instructions = list(function.instructions())
            self.functions[function.name] = instructions
            for local, inst in enumerate(instructions):
                self.to_local[inst.iid] = (function.name, local)
                self.home[inst.iid] = function.name

    @classmethod
    def of(cls, module: Module) -> "LocalIndex":
        cached = _INDEXES.get(module)
        if cached is not None and cached[0] == module.revision:
            return cached[1]
        index = cls(module)
        _INDEXES[module] = (module.revision, index)
        return index

    def local(self, iid: int) -> tuple[str, int]:
        return self.to_local[iid]

    def instruction(self, function_name: str, local: int):
        return self.functions[function_name][local]

    def symbolize(self, iid: int, home: str):
        """Local int within ``home``; (function, local) elsewhere."""
        function, local = self.to_local[iid]
        if function == home:
            return local
        return (function, local)

    def instruction_of(self, ref, home: str):
        """The instruction a symbolized reference denotes."""
        if isinstance(ref, int):
            return self.functions[home][ref]
        function, local = ref
        return self.functions[function][local]

    def resolve(self, ref, home: str) -> int:
        """Inverse of :meth:`symbolize` (accepts JSON-decoded lists)."""
        return self.instruction_of(ref, home).iid


# ---------------------------------------------------------------------------
# Per-function profile slices


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _slice_payloads(module: Module, profile) -> dict[str, dict]:
    index = LocalIndex.of(module)
    slices: dict[str, dict] = {name: {} for name in module.functions}

    def field(iid: int, name: str):
        site = index.to_local.get(iid)
        if site is None:
            return None
        function, local = site
        return slices[function].setdefault(name, {}), local

    def sym(iid: int, home: str):
        ref = index.symbolize(iid, home)
        return ref if isinstance(ref, int) else list(ref)

    for attr in ("inst_counts", "branch_counts", "select_counts",
                 "operand_samples", "crash_prob_samples",
                 "store_instances", "store_instances_read",
                 "silent_stores"):
        for iid, value in getattr(profile, attr).items():
            slot = field(iid, attr)
            if slot is not None:
                slot[0][slot[1]] = value
    for (store_iid, load_iid), count in profile.mem_edges.items():
        site = index.to_local.get(store_iid)
        if site is None or load_iid not in index.to_local:
            continue
        home, local = site
        slices[home].setdefault("mem_edges", []).append(
            [local, sym(load_iid, home), count]
        )
    for (store_iid, readers), count in profile.store_reader_sets.items():
        site = index.to_local.get(store_iid)
        if site is None:
            continue
        home, local = site
        refs = sorted(
            (sym(r, home) for r in readers if r in index.to_local), key=repr
        )
        slices[home].setdefault("reader_sets", []).append(
            [local, refs, count]
        )
    for payload in slices.values():
        for listy in ("mem_edges", "reader_sets"):
            if listy in payload:
                payload[listy].sort(key=repr)
    return slices


#: Profile aspects that can change when only *another* function's loads
#: change (cross-function store->load references, renumbered reader
#: sites).  Only memory-reading queries (fm, sdc) key on these.
_MEMORY_ASPECTS = frozenset(
    {"mem_edges", "reader_sets", "store_instances_read"}
)


def profile_slices(module: Module, profile) -> dict[str, tuple[str, str]]:
    """Per-function ``(local, memory)`` digest pairs, memoized.

    The *local* digest covers aspects determined by the function's own
    dynamic behaviour (instruction counts, operand samples, ...); the
    *memory* digest covers the store->load graph aspects listed in
    :data:`_MEMORY_ASPECTS`.  Keyed by module fingerprint: equal
    fingerprints imply equal canonical text and therefore the identical
    iid assignment, so the memo transfers between module objects with
    the same content.
    """
    fingerprint = module_fingerprint(module)
    memo = getattr(profile, "_repro_slice_memo", None)
    if memo is not None and memo[0] == fingerprint:
        return memo[1]
    payloads = _slice_payloads(module, profile)

    def digest(payload: dict, memory: bool) -> str:
        part = {
            name: value for name, value in payload.items()
            if (name in _MEMORY_ASPECTS) == memory
        }
        return _sha256(json.dumps(part, sort_keys=True, default=repr))

    digests = {
        name: (digest(payload, False), digest(payload, True))
        for name, payload in payloads.items()
    }
    try:
        profile._repro_slice_memo = (fingerprint, digests)
    except AttributeError:
        pass  # slotted profile: recompute next time
    return digests


# ---------------------------------------------------------------------------
# Callgraph digest and combined per-function input keys


def callgraph_digest(module: Module) -> str:
    """Digest of {defined functions; caller multiset per callee}.

    Deliberately coarse: it ignores call-site *positions* (those are
    covered by the caller's own fingerprint when an entry references a
    specific call site), so inserting straight-line instructions into a
    caller does not invalidate every interprocedural entry — only
    adding/removing calls or functions does.
    """
    cached = _CALLGRAPHS.get(module)
    if cached is not None and cached[0] == module.revision:
        return cached[1]
    calls: dict[str, dict[str, int]] = {}
    for function in module.functions.values():
        for inst in function.instructions():
            if isinstance(inst, Call):
                per_callee = calls.setdefault(inst.callee, {})
                per_callee[function.name] = (
                    per_callee.get(function.name, 0) + 1
                )
    payload = {
        "functions": sorted(module.functions),
        "calls": {
            callee: sorted(callers.items())
            for callee, callers in sorted(calls.items())
        },
    }
    digest = _sha256(json.dumps(payload, sort_keys=True))
    _CALLGRAPHS[module] = (module.revision, digest)
    return digest


def function_input_keys(module: Module, profile) -> dict[str, tuple[str, str]]:
    """function -> ``(local key, full key)`` input-key pair.

    Both combine the canonical function fingerprint with profile slice
    digests; the *full* key additionally folds in the memory-aspect
    digest.  Queries that never read the store->load graph use the
    local key (so a neighbour's load renumbering can't invalidate
    them); memory-reading queries and all dependency maps use the full
    key.
    """
    fingerprints = function_fingerprints(module)
    slices = profile_slices(module, profile)
    keys: dict[str, tuple[str, str]] = {}
    for name, fingerprint in fingerprints.items():
        local_digest, memory_digest = slices.get(name, ("", ""))
        local_key = combine_key(fingerprint, local_digest)
        keys[name] = (
            local_key, combine_key(local_key, memory_digest)
        )
    return keys
