"""Registry of analysis queries and their dependency DAG.

Each query names one analysis the models consume, declares which other
queries it reads and which inputs its results are a function of:

* ``function`` — the canonical per-function fingerprint (always);
* ``profile``  — the function's profile-slice digest (always);
* ``config``   — the listed config fields only, so e.g. the three
  TRIDENT variants (which differ in ``enable_*`` flags the tuple
  deriver never reads) share one tuple store.

The declared dependency edges document the DAG (and drive ``repro
analyze --explain``).  Validation of *interprocedural* queries does not
rely on them: those stores record, per entry, the concrete input keys
of every function the value was derived from — strictly more precise
than the static edge list.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.fingerprint import config_digest


@dataclass(frozen=True)
class QuerySpec:
    """One registered analysis query."""

    name: str
    level: str  # "cfg" or "model"
    deps: tuple[str, ...] = ()
    #: Config fields the result depends on; ("*",) = the whole config.
    config_fields: tuple[str, ...] = ()
    #: May a result depend on other functions than its own?
    interprocedural: bool = False
    #: Does the result read the *memory* profile aspects (store->load
    #: edges, reader sets, read fractions)?  Those can change when only
    #: another function's loads change, so queries that never consult
    #: them key on the local slice digest alone and survive such edits.
    memory: bool = False
    #: Persist per-function result envelopes to the artifact cache?
    persist: bool = False
    description: str = ""


QUERIES: dict[str, QuerySpec] = {}


def register_query(spec: QuerySpec) -> QuerySpec:
    if spec.name in QUERIES:
        raise ValueError(f"duplicate query {spec.name!r}")
    QUERIES[spec.name] = spec
    return spec


#: AnalysisManager kind -> query name (CFG analyses are object-valued
#: and module-object-bound, so they stay in the AnalysisManager; the
#: registry entries give them a place in the DAG and the counters).
CFG_QUERY_OF = {
    "predecessors": "cfg.predecessors",
    "reverse_postorder": "cfg.reverse_postorder",
    "dominators": "cfg.dominators",
    "postdominators": "cfg.postdominators",
    "ipostdominators": "cfg.ipostdominators",
    "control_dependence": "cfg.control_dependence",
    "loop_info": "cfg.loop_info",
}

for _kind, _deps, _desc in (
    ("predecessors", (), "block predecessor map"),
    ("reverse_postorder", (), "reverse postorder block ordering"),
    ("dominators", (), "dominator sets per block"),
    ("postdominators", (), "post-dominator sets per block"),
    ("ipostdominators", ("cfg.postdominators",),
     "immediate post-dominator per block (batch-tier reconvergence)"),
    ("control_dependence", ("cfg.postdominators",),
     "branch -> governed blocks (per direction)"),
    ("loop_info", ("cfg.dominators", "cfg.predecessors"),
     "natural loops, back edges, LT branch classification"),
):
    register_query(QuerySpec(
        CFG_QUERY_OF[_kind], "cfg", deps=_deps, description=_desc,
    ))

register_query(QuerySpec(
    "model.tuples", "model",
    config_fields=("tuple_samples", "model_minmax_joint",
                   "model_fdiv_masking"),
    description="per-(instruction, operand) propagation tuples (Sec. IV-C)",
))
register_query(QuerySpec(
    "model.fs", "model",
    deps=("model.tuples",),
    config_fields=("epsilon", "tuple_samples", "model_minmax_joint",
                   "model_fdiv_masking"),
    interprocedural=True,
    description="terminal events of forward def-use propagation (fs)",
))
register_query(QuerySpec(
    "model.fs.pvf", "model",
    config_fields=("epsilon", "model_minmax_joint"),
    interprocedural=True,
    description="identity-tuple propagation for the PVF baseline",
))
register_query(QuerySpec(
    "model.fs.epvf", "model",
    deps=("model.tuples",),
    config_fields=("epsilon", "tuple_samples", "model_minmax_joint",
                   "model_fdiv_masking"),
    interprocedural=True,
    description="crash-and-bit-discard propagation for the ePVF baseline",
))
register_query(QuerySpec(
    "model.fc", "model",
    deps=("cfg.control_dependence", "cfg.loop_info"),
    config_fields=("epsilon", "fc_silent_store_discount"),
    description="branch -> corrupted stores with probabilities (fc)",
))
register_query(QuerySpec(
    "model.weighting", "model",
    deps=("cfg.postdominators",),
    interprocedural=True,
    description="divergence weighting P(terminal | origin) (Fig. 4)",
))
register_query(QuerySpec(
    "model.fm", "model",
    deps=("model.fs", "model.fc", "model.weighting"),
    config_fields=("*",),
    interprocedural=True,
    memory=True,
    description="per-store reach fixed point over the memory graph (fm)",
))
register_query(QuerySpec(
    "model.sdc", "model",
    deps=("model.fs", "model.fc", "model.fm", "model.weighting"),
    config_fields=("*",),
    interprocedural=True,
    memory=True,
    persist=True,
    description="per-instruction SDC probability (Algorithm 1)",
))
register_query(QuerySpec(
    "model.pvf", "model",
    deps=("model.fs.pvf",),
    config_fields=("*",),
    interprocedural=True,
    persist=True,
    description="PVF per-instruction vulnerability",
))
register_query(QuerySpec(
    "model.epvf", "model",
    deps=("model.fs.epvf",),
    config_fields=("*",),
    interprocedural=True,
    persist=True,
    description="ePVF per-instruction vulnerability",
))


def config_projection(spec: QuerySpec, config) -> str:
    """Digest of exactly the config fields this query reads."""
    if not spec.config_fields:
        return "-"
    if "*" in spec.config_fields:
        return config_digest(config)
    return config_digest(
        {field: getattr(config, field) for field in spec.config_fields}
    )


def query_dag_lines() -> list[str]:
    """The query DAG, one line per query (for ``analyze --explain``)."""
    lines = []
    for name in sorted(QUERIES):
        spec = QUERIES[name]
        inputs = ["function", "profile+memory" if spec.memory else "profile"]
        if spec.config_fields:
            fields = "*" if "*" in spec.config_fields else ",".join(
                spec.config_fields
            )
            inputs.append(f"config[{fields}]")
        deps = ", ".join(spec.deps) if spec.deps else "-"
        flags = []
        if spec.interprocedural:
            flags.append("interprocedural")
        if spec.persist:
            flags.append("persisted")
        suffix = f"  ({'; '.join(flags)})" if flags else ""
        lines.append(
            f"{name:<22} deps: {deps:<47} inputs: {'+'.join(inputs)}{suffix}"
        )
    return lines
