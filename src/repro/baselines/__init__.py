"""Prior-work baseline models: PVF and ePVF (Sec. VII-C / Fig. 9)."""

from .base import VulnerabilityModel
from .epvf import EpvfModel
from .pvf import PvfModel

__all__ = ["EpvfModel", "PvfModel", "VulnerabilityModel"]
