"""PVF — Program Vulnerability Factor (Sridharan & Kaeli, HPCA 2009).

PVF measures the fraction of architecturally-required state: a fault in
any bit whose value the architecturally correct execution depends on
counts as vulnerable.  It distinguishes neither crashes nor benign
faults from SDCs, so its SDC prediction is a gross over-estimate (the
paper measures a mean absolute error of 75.19%, Fig. 9).

Implementation: corruption is propagated with *identity* tuples (no
masking, no crash discount — PVF has no notion of either) and every
reached terminal (store, address, branch, output, return) marks the
fault ACE.
"""

from __future__ import annotations

from ..core.propagation import ForwardPropagator
from ..core.tuples import IDENTITY, PropTuple, TupleDeriver
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .base import VulnerabilityModel


class _IdentityTuples(TupleDeriver):
    """Every instruction propagates corruption with probability 1."""

    def tuple_for(self, inst: Instruction, operand_index: int) -> PropTuple:
        return IDENTITY


class PvfModel(VulnerabilityModel):
    """PVF as an SDC predictor (the strawman of Fig. 9)."""

    QUERY = "model.pvf"

    def __init__(self, module: Module, profile: ProgramProfile, config=None,
                 *, shared_queries: bool = True):
        super().__init__(module, profile, config,
                         shared_queries=shared_queries)
        identity = _IdentityTuples(profile, self.config)
        # Identity-tuple propagation differs from TRIDENT's fs, so it
        # memoizes under its own query flavor.
        self._propagator = ForwardPropagator(
            module, identity, self.config, self.queries,
            query="model.fs.pvf",
        )

    def _compute(self, iid: int) -> float:
        # Everything that reaches architectural state is vulnerable:
        # all terminal kinds count, with no masking along the way.
        return self._union_of_terminals(self._propagator, iid, kinds=None)
