"""ePVF — enhanced PVF (Fang et al., DSN 2016).

ePVF tightens PVF by removing *crash-causing* faults from the SDC
prediction with a bit-level error propagation analysis; it still cannot
tell benign faults from SDCs, so it consistently over-predicts (mean
absolute error 36.78% in the paper's Fig. 9).

Implementation notes, mirroring Sec. VII-C of the paper:

* bit-level masking along data-dependent sequences is modeled (we reuse
  the empirical tuples, which include the cmp/logic/cast masking ePVF's
  propagation analysis captures);
* crash-causing faults are removed.  The paper could not run ePVF's own
  crash model at their workload sizes and substituted FI-measured
  crashes ("we assume ePVF identifies 100% of the crashes accurately");
  we support the same substitution via ``measured_crash_probability``,
  and default to the model's footprint-derived crash tuples otherwise;
* no control-flow or memory-level modeling: any error reaching a store,
  branch, output or return is declared an SDC.
"""

from __future__ import annotations

from ..core.propagation import ForwardPropagator
from ..core.tuples import PropTuple, TupleDeriver
from ..ir.instructions import Cast, Instruction
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .base import VulnerabilityModel


class _EpvfTuples(TupleDeriver):
    """ePVF's propagation rules: bit-discard and crashes, no value masking.

    ePVF tracks which *bits* a result depends on, so width-reducing
    casts mask; but it has no notion of value-level masking (a cmp whose
    outcome a bit flip cannot change, a multiply by zero), so everything
    else propagates modulo the crash probability.
    """

    def tuple_for(self, inst: Instruction, operand_index: int) -> PropTuple:
        base = super().tuple_for(inst, operand_index)
        if isinstance(inst, Cast):
            return base  # bit-discard masking is within ePVF's model
        if base.crash > 0.0:
            return PropTuple(1.0 - base.crash, 0.0, base.crash)
        return PropTuple(1.0, 0.0, 0.0)


class EpvfModel(VulnerabilityModel):
    """ePVF as an SDC predictor (Fig. 9 comparison)."""

    QUERY = "model.epvf"

    def __init__(self, module: Module, profile: ProgramProfile, config=None,
                 measured_crash_probability: float | None = None, *,
                 shared_queries: bool = True):
        super().__init__(module, profile, config,
                         shared_queries=shared_queries)
        # The base (empirical) tuples ride the shared model.tuples store
        # via the engine; the ePVF transformation is applied on top of
        # each read, and the propagation memoizes under its own flavor.
        tuples = _EpvfTuples(profile, self.config, self.queries)
        self._propagator = ForwardPropagator(
            module, tuples, self.config, self.queries,
            query="model.fs.epvf",
        )
        self.measured_crash_probability = measured_crash_probability

    def _query_salt(self):
        # The subtracted FI-measured crash fraction is a model input
        # living outside the config dataclass: different measurements
        # must not share per-instruction results.
        return self.measured_crash_probability

    def _compute(self, iid: int) -> float:
        # The empirical tuples already deduct footprint-derived crash
        # mass along the way; reaching any architectural sink then
        # counts as SDC (no benign/SDC distinction).
        vulnerable = self._union_of_terminals(self._propagator, iid,
                                              kinds=None)
        if self.measured_crash_probability is not None:
            # Paper-style substitution: remove the FI-measured crash
            # fraction instead of the model's own crash estimate.
            vulnerable = max(
                0.0, vulnerable - self.measured_crash_probability
            )
        return vulnerable
