"""Shared scaffolding for the PVF/ePVF baseline models (Sec. VII-C)."""

from __future__ import annotations

import random

from ..core.config import TridentConfig, trident_config
from ..core.propagation import ForwardPropagator
from ..ir.module import Module
from ..profiling.profile import ProgramProfile


class VulnerabilityModel:
    """Base: per-instruction vulnerability + execution-weighted overall.

    Subclasses implement :meth:`instruction_vulnerability`; eligibility
    and weighting match TRIDENT and the fault injector so all approaches
    predict over the same fault space.
    """

    #: Query-store name of the per-instruction result (subclasses).
    QUERY: str | None = None

    def __init__(self, module: Module, profile: ProgramProfile,
                 config: TridentConfig | None = None, *,
                 shared_queries: bool = True):
        from ..query.engine import QueryEngine

        self.module = module
        self.profile = profile
        self.config = config or trident_config()
        self.queries = QueryEngine(module, profile, self.config,
                                   shared=shared_queries)
        self._compute_deps: set = set()
        self._cache: dict[int, float] = {}
        #: Optional persistence hook (repro.cache.bind_model_results).
        self.result_sink = None
        self._flushed_results = 0
        self.eligible: list[int] = []
        self._weights: list[int] = []
        for inst in module.instructions():
            if not inst.has_result or not inst.users:
                continue
            count = profile.count(inst.iid)
            if count == 0:
                continue
            self.eligible.append(inst.iid)
            self._weights.append(count)

    # -- to be provided by subclasses -----------------------------------

    def _compute(self, iid: int) -> float:
        raise NotImplementedError

    # -- shared API -------------------------------------------------------

    def _query_salt(self):
        """Extra store-key component for model inputs outside the config
        dataclass (ePVF's measured crash probability)."""
        return None

    def instruction_vulnerability(self, iid: int) -> float:
        cached = self._cache.get(iid)
        if cached is None:
            cached = self._query(iid)
            self._cache[iid] = cached
        return cached

    def _query(self, iid: int) -> float:
        """Per-instruction result via the persisted query store."""
        from ..query.engine import MISS

        engine = self.queries
        site = engine.index.to_local.get(iid)
        if self.QUERY is None or site is None:
            return self._compute(iid)
        home, local = site
        view = engine.view(self.QUERY, home, self._query_salt())
        stored = view.get(local)
        if stored is not MISS:
            return stored
        self._compute_deps = set()
        value = self._compute(iid)
        return view.put(
            local, value, engine.deps_for(self._compute_deps, exclude=home)
        )

    def warm_cache(self, results: dict[int, float]) -> int:
        """Adopt fingerprint-keyed results (see Trident.warm_cache)."""
        self._cache.update(results)
        self._flushed_results = len(self._cache)
        return len(results)

    def cached_results(self) -> dict[int, float]:
        return dict(self._cache)

    def _flush_results(self) -> None:
        if (self.result_sink is not None
                and len(self._cache) > self._flushed_results):
            self.result_sink(dict(self._cache))
            self._flushed_results = len(self._cache)
        self.queries.flush()

    def overall(self, samples: int = 3000, seed: int = 0) -> float:
        if not self.eligible:
            return 0.0
        rng = random.Random(seed)
        picks = rng.choices(self.eligible, weights=self._weights, k=samples)
        result = sum(
            self.instruction_vulnerability(iid) for iid in picks
        ) / samples
        self._flush_results()
        return result

    def overall_exact(self) -> float:
        if not self.eligible:
            return 0.0
        total = sum(self._weights)
        result = sum(
            w * self.instruction_vulnerability(iid)
            for iid, w in zip(self.eligible, self._weights)
        ) / total
        self._flush_results()
        return result

    # -- helper shared by both baselines -----------------------------------

    def _union_of_terminals(self, propagator: ForwardPropagator,
                            iid: int, kinds=None) -> float:
        """Union of corruption probabilities over terminal events."""
        from ..query.engine import CALLGRAPH_DEP

        inst = self.module.instruction(iid)
        if not inst.has_result:
            return 0.0
        origin_count = self.profile.count(iid)
        result = propagator.propagate(inst)
        self._compute_deps |= result.functions
        if result.callgraph:
            self._compute_deps.add(CALLGRAPH_DEP)
        survive = 1.0
        for event in result.events:
            if kinds is not None and event.kind not in kinds:
                continue
            probability = event.probability
            if origin_count > 0:
                probability *= min(
                    1.0,
                    self.profile.count(event.instruction.iid) / origin_count,
                )
            survive *= 1.0 - min(1.0, probability)
        return 1.0 - survive
