"""Paired t-test (Student 1908), as used throughout the evaluation.

Self-contained implementation: the t statistic plus a two-sided p-value
computed from the regularized incomplete beta function (continued
fraction form, Numerical Recipes).  Unit tests validate it against
scipy.stats.ttest_rel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a paired t-test."""

    statistic: float
    p_value: float
    degrees_of_freedom: int
    mean_difference: float

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """True when the two samples are statistically distinguishable."""
        return self.p_value <= alpha


def paired_t_test(sample_a, sample_b) -> TTestResult:
    """Two-sided paired t-test between equal-length samples.

    The null hypothesis is that the mean difference is zero — i.e. the
    model's predictions are statistically indistinguishable from the FI
    measurements (Table II, and the overall p=0.764 experiment).
    """
    a = list(sample_a)
    b = list(sample_b)
    if len(a) != len(b):
        raise ValueError("paired test needs equal-length samples")
    n = len(a)
    if n < 2:
        raise ValueError("paired test needs at least two pairs")

    differences = [x - y for x, y in zip(a, b)]
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1)
    dof = n - 1
    if variance == 0.0:
        # All differences identical: either exactly zero (indistinguishable)
        # or a constant shift (infinitely distinguishable).
        p = 1.0 if mean == 0.0 else 0.0
        stat = 0.0 if mean == 0.0 else math.copysign(math.inf, mean)
        return TTestResult(stat, p, dof, mean)

    statistic = mean / math.sqrt(variance / n)
    p_value = student_t_two_sided_p(statistic, dof)
    return TTestResult(statistic, p_value, dof, mean)


def student_t_two_sided_p(t: float, dof: int) -> float:
    """P(|T| >= |t|) for Student's t with ``dof`` degrees of freedom."""
    if math.isinf(t):
        return 0.0
    x = dof / (dof + t * t)
    return regularized_incomplete_beta(dof / 2.0, 0.5, x)


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b) via the continued fraction expansion."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_beta = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(log_beta)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def _beta_continued_fraction(a: float, b: float, x: float,
                             max_iterations: int = 300,
                             eps: float = 3e-12) -> float:
    """Lentz's algorithm for the incomplete beta continued fraction."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            return h
    return h
