"""Binomial confidence intervals and error summaries for FI campaigns."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: z for the 95% confidence level the paper reports error bars at.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class ConfidenceInterval:
    """A proportion with its symmetric (Wald) confidence interval."""

    probability: float
    margin: float
    samples: int

    @property
    def low(self) -> float:
        return max(0.0, self.probability - self.margin)

    @property
    def high(self) -> float:
        return min(1.0, self.probability + self.margin)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.probability * 100:.2f}% ± {self.margin * 100:.2f}% "
            f"(n={self.samples})"
        )


def binomial_confidence(successes: int, samples: int,
                        z: float = Z_95) -> ConfidenceInterval:
    """Wald interval for a binomial proportion (the paper's error bars)."""
    if samples <= 0:
        return ConfidenceInterval(0.0, 0.0, 0)
    p = successes / samples
    margin = z * math.sqrt(p * (1.0 - p) / samples)
    return ConfidenceInterval(p, margin, samples)


def wilson_confidence(successes: int, samples: int,
                      z: float = Z_95) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Unlike the Wald interval it stays meaningful at the extremes
    (0 or n successes), which is exactly where iterative statistical
    injection needs it: a campaign on a near-0% SDC program must see
    its half-width shrink instead of collapsing to zero.  The returned
    ``probability`` is the Wilson midpoint, not the raw proportion.
    """
    if samples <= 0:
        return ConfidenceInterval(0.0, 0.0, 0)
    p = successes / samples
    z2 = z * z
    denominator = 1.0 + z2 / samples
    center = (p + z2 / (2.0 * samples)) / denominator
    margin = z * math.sqrt(
        p * (1.0 - p) / samples + z2 / (4.0 * samples * samples)
    ) / denominator
    return ConfidenceInterval(center, margin, samples)


def samples_for_margin(margin: float, p: float = 0.5,
                       z: float = Z_95) -> int:
    """How many FI runs to hit a target margin of error (planning aid)."""
    if not 0.0 < margin < 1.0:
        raise ValueError("margin must be in (0, 1)")
    return math.ceil(z * z * p * (1.0 - p) / (margin * margin))


def mean_absolute_error(predicted, measured) -> float:
    """Mean |prediction - measurement| across benchmarks (Fig. 5/9)."""
    pred = list(predicted)
    meas = list(measured)
    if len(pred) != len(meas) or not pred:
        raise ValueError("need equal-length, nonempty series")
    return sum(abs(p - m) for p, m in zip(pred, meas)) / len(pred)
