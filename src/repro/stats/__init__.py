"""Statistics used by the evaluation: paired t-tests, confidence
intervals, and error summaries."""

from .confidence import (
    Z_95,
    ConfidenceInterval,
    binomial_confidence,
    mean_absolute_error,
    samples_for_margin,
    wilson_confidence,
)
from .ttest import (
    TTestResult,
    paired_t_test,
    regularized_incomplete_beta,
    student_t_two_sided_p,
)

__all__ = [
    "ConfidenceInterval", "TTestResult", "Z_95", "binomial_confidence",
    "mean_absolute_error", "paired_t_test", "regularized_incomplete_beta",
    "samples_for_margin", "student_t_two_sided_p", "wilson_confidence",
]
