"""Codegen execution tier: basic blocks compiled to Python functions.

The closure tier in :mod:`repro.interp.engine` pays a Python call per
step plus one or two calls per operand fetch.  This module eliminates
that dispatch by translating every compiled block — and straight-line
*superblocks* along unconditional-jump chains — into a single Python
function generated as source, ``compile()``'d and ``exec``'d once per
module revision.  Operands become direct ``slots[i]`` subscripts or
embedded literals, common operations are inlined (masked adds, unsigned
compares, direct float arithmetic), and rare or trap-raising operations
call the exact helpers of :mod:`repro.interp.ops`, so results stay
bit-identical with the closure tier by construction.

Two specializations are generated per block function:

* the **fast** variant carries *zero* injection checks — golden runs,
  profiling passes, and every trial executing outside the armed
  instruction's blocks use it;
* the **inject** variant guards every destination register (steps and
  phi edge copies) with the closure tier's ``state.inject_iid`` check.

A generated function's *covered* iid set records exactly which
instructions the inject variant guards; the engine dispatches through a
per-``inject_iid`` table that selects the inject variant only for
functions covering the armed iid, so occurrence bookkeeping is
identical to the closure tier while the common path stays clean.

Block functions have the signature ``(state, frame) -> int``: they
execute one (super)block iteration — successor phi moves included —
and return the local index of the next block, or ``-1`` after ``ret``
(the return value parks in ``state.ret_value``).  The driver loop lives
in :meth:`repro.interp.engine.ExecutionEngine._cg_run`.
"""

from __future__ import annotations


from ..ir.bitutils import mask, to_signed, truncate_float
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Output,
    Ret,
    Select,
    Store,
)
from ..ir.types import FloatType, IntType
from ..ir.values import Argument, Constant, GlobalVariable
from .errors import DetectionTrap, HangFault, InterpreterBug
from .intrinsics import call_intrinsic, is_intrinsic
from .ops import (
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
    format_output,
    reinterpret_loaded,
)

#: Interpreter tier names, and the environment knob that selects one.
#: The batch tier (:mod:`repro.interp.batch`) builds on the codegen
#: representation: campaign trials run in numpy lockstep and diverged
#: lanes drain on generated block functions.
TIER_CODEGEN = "codegen"
TIER_CLOSURE = "closure"
TIER_BATCH = "batch"
TIERS = (TIER_CODEGEN, TIER_CLOSURE, TIER_BATCH)
TIER_ENV = "REPRO_INTERP_TIER"

#: Longest unconditional-jump chain inlined into one superblock.
CHAIN_LIMIT = 16

_MASK64 = mask(64)
_F32 = FloatType(32)


def resolve_tier(tier: str | None = None) -> str:
    """Resolve a tier request: explicit arg > $REPRO_INTERP_TIER > codegen."""
    if tier is None:
        # Late import: repro.core.env is dependency-free, but keeping the
        # interpreter importable without the core package helps tooling.
        from ..core.env import env_choice
        tier = env_choice(TIER_ENV, TIER_CODEGEN, TIERS)
    if tier not in TIERS:
        raise ValueError(
            f"unknown interpreter tier {tier!r}; expected one of {TIERS}"
        )
    return tier


def _truncate_f32(value: float) -> float:
    return truncate_float(value, _F32)


_ICMP_UNSIGNED = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                  "ugt": ">", "uge": ">="}
_ICMP_SIGNED = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_FCMP_ORDERED = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=",
                 "ogt": ">", "oge": ">="}
_INT_MASKED = {"add": "+", "sub": "-", "mul": "*"}
_INT_BITWISE = {"and": "&", "or": "|", "xor": "^"}
_FLOAT_DIRECT = {"fadd": "+", "fsub": "-", "fmul": "*"}


def generate_function(engine, compiled):
    """Generate, compile and exec both specializations of one function.

    Returns ``(fast, inject, covered, source)`` where ``fast`` and
    ``inject`` are block-function lists indexed by the blocks' local
    indices, ``covered`` holds the per-function frozensets of iids the
    inject variant guards, and ``source`` is the generated module (kept
    for debugging).  Raises on any instruction the generator cannot
    translate — the engine treats that as a per-function fallback to
    the closure tier.
    """
    return _FunctionCodegen(engine, compiled).build()


class _FunctionCodegen:
    def __init__(self, engine, compiled):
        self.engine = engine
        self.compiled = compiled
        self.lines: list[str] = []
        self._bound: dict[int, str] = {}
        self.namespace = {
            "_ib": eval_int_binop,
            "_fb": eval_float_binop,
            "_icmp": eval_icmp,
            "_fcmp": eval_fcmp,
            "_cast": eval_cast,
            "_sgn": to_signed,
            "_f32": _truncate_f32,
            "_intr": call_intrinsic,
            "_fmt": format_output,
            "_rl": reinterpret_loaded,
            "_inj": engine._maybe_inject,
            "_Hang": HangFault,
            "_Det": DetectionTrap,
        }

    # -- namespace ----------------------------------------------------

    def bind(self, obj) -> str:
        """Name a non-literal object (type, callee, nan/inf) in the
        exec namespace and return the name."""
        key = id(obj)
        name = self._bound.get(key)
        if name is None:
            name = f"_k{len(self._bound)}"
            self._bound[key] = name
            self.namespace[name] = obj
        return name

    def expr(self, value) -> str:
        """Side-effect-free source expression for an operand."""
        if isinstance(value, Constant):
            constant = value.value
            if isinstance(constant, float) and (
                    constant != constant or constant in
                    (float("inf"), float("-inf"))):
                return self.bind(constant)  # no nan/inf literals
            return repr(constant)
        if isinstance(value, GlobalVariable):
            return repr(self.engine.layout.addresses[value.name])
        if isinstance(value, Argument):
            return f"slots[{value.index}]"
        if isinstance(value, Instruction):
            return f"slots[{self.compiled.slot_of[id(value)]}]"
        raise InterpreterBug(f"cannot fetch {value!r}")

    def signed_expr(self, value, bits: int) -> str:
        if isinstance(value, Constant) and not isinstance(value.value, float):
            return repr(to_signed(value.value, bits))
        return f"_sgn({self.expr(value)}, {bits})"

    # -- whole-function assembly --------------------------------------

    def build(self):
        cblocks = list(self.compiled.blocks.values())
        for cblock in cblocks:
            self.emit_block_fn(cblock, inject=False)
        covered = [self.emit_block_fn(cblock, inject=True)
                   for cblock in cblocks]
        source = "\n".join(self.lines) + "\n"
        code = compile(
            source, f"<codegen:{self.compiled.function.name}>", "exec"
        )
        namespace = self.namespace
        exec(code, namespace)
        fast = [namespace[f"_fast{i}"] for i in range(len(cblocks))]
        inject = [namespace[f"_inj{i}"] for i in range(len(cblocks))]
        return fast, inject, [frozenset(c) for c in covered], source

    def emit_block_fn(self, cblock, inject: bool) -> set:
        """One block function: superblock body + phi moves + dispatch."""
        prefix = "_inj" if inject else "_fast"
        w = self.lines.append
        w(f"def {prefix}{cblock.local_index}(state, frame):")
        w("    slots = frame.slots")
        covered: set[int] = set()
        current = cblock
        seen = {id(cblock)}
        while True:
            self.emit_block_core(current, inject, covered)
            term = current.block.terminator
            if isinstance(term, Ret):
                value = ("None" if term.value is None
                         else self.expr(term.value))
                w(f"    state.ret_value = {value}")
                w("    return -1")
                return covered
            if not isinstance(term, Branch):
                raise InterpreterBug(f"unknown terminator {term!r}")
            if not term.is_conditional:
                succ = self.compiled.blocks[term.true_block]
                if id(succ) not in seen and len(seen) < CHAIN_LIMIT:
                    # Straight-line superblock: inline the successor's
                    # entire iteration (phi moves first, then its body).
                    self.emit_phi_moves(current, succ, inject, covered, 1)
                    seen.add(id(succ))
                    current = succ
                    continue
                self.emit_phi_moves(current, succ, inject, covered, 1)
                w(f"    return {succ.local_index}")
                return covered
            true_succ = self.compiled.blocks[term.true_block]
            false_succ = self.compiled.blocks[term.false_block]
            w(f"    if {self.expr(term.cond)}:")
            self.emit_phi_moves(current, true_succ, inject, covered, 2)
            w(f"        return {true_succ.local_index}")
            self.emit_phi_moves(current, false_succ, inject, covered, 1)
            w(f"    return {false_succ.local_index}")
            return covered

    def emit_block_core(self, cblock, inject: bool, covered: set) -> None:
        """Cost, budget check, block count, and steps of one block —
        the same order as one iteration of the closure tier's loop."""
        w = self.lines.append
        w(f"    state.dynamic_count += {cblock.cost}")
        w("    if state.dynamic_count > state.budget:")
        w("        raise _Hang(state.dynamic_count)")
        w(f"    state.block_counts[{cblock.ordinal}] += 1")
        for step_index, inst in enumerate(cblock.step_insts):
            self.emit_step(inst, step_index, inject, covered)

    def emit_phi_moves(self, pred, succ, inject: bool, covered: set,
                       depth: int) -> None:
        """Parallel phi copy for the edge ``pred -> succ``: evaluate
        every source first, then assign (with per-phi injection checks
        in the inject variant) — exactly the closure tier's order."""
        phis = succ.block.phis()
        if not phis:
            return
        w = self.lines.append
        ind = "    " * depth
        moves = [
            (self.compiled.slot_of[id(phi)],
             self.expr(phi.value_for(pred.block)), phi.iid, phi.type)
            for phi in phis
        ]
        if len(moves) == 1 and not inject:
            dest, source, _iid, _type = moves[0]
            w(f"{ind}slots[{dest}] = {source}")
            return
        for index, (_dest, source, _iid, _type) in enumerate(moves):
            w(f"{ind}_p{index} = {source}")
        for index, (dest, _source, iid, value_type) in enumerate(moves):
            if inject:
                covered.add(iid)
                w(f"{ind}if state.inject_iid == {iid}:")
                w(f"{ind}    _p{index} = "
                  f"_inj(state, _p{index}, {self.bind(value_type)})")
            w(f"{ind}slots[{dest}] = _p{index}")

    # -- steps --------------------------------------------------------

    def emit_step(self, inst, step_index: int, inject: bool,
                  covered: set) -> None:
        w = self.lines.append
        if isinstance(inst, Store):
            w(f"    state.memory.store({self.expr(inst.pointer)}, "
              f"{self.expr(inst.value)})")
            return
        if isinstance(inst, Output):
            w(f"    state.outputs.append({self.output_expr(inst)})")
            return
        if isinstance(inst, Detect):
            self.emit_detect(inst)
            return
        pre, value = self.value_expr(inst, step_index)
        for line in pre:
            w(f"    {line}")
        if not inst.has_result:
            # Void user call: execute for effect only.
            w(f"    {value}")
            return
        dest = self.compiled.slot_of[id(inst)]
        if not inject:
            w(f"    slots[{dest}] = {value}")
            return
        covered.add(inst.iid)
        if value != "_v":
            w(f"    _v = {value}")
        w(f"    if state.inject_iid == {inst.iid}:")
        w(f"        _v = _inj(state, _v, {self.bind(inst.type)})")
        w(f"    slots[{dest}] = _v")

    def value_expr(self, inst, step_index: int) -> tuple[list[str], str]:
        """(setup lines, result expression) for a value-producing step.

        The expression may be the temp ``_v`` defined by the setup
        lines; setup lines and expression are both side-effect-safe to
        follow with the injection guard.
        """
        if isinstance(inst, BinOp):
            return [], self.binop_expr(inst)
        if isinstance(inst, ICmp):
            return [], self.icmp_expr(inst)
        if isinstance(inst, FCmp):
            return [], self.fcmp_expr(inst)
        if isinstance(inst, Cast):
            return [], self.cast_expr(inst)
        if isinstance(inst, Select):
            return [], (f"({self.expr(inst.true_value)} "
                        f"if {self.expr(inst.cond)} "
                        f"else {self.expr(inst.false_value)})")
        if isinstance(inst, GetElementPtr):
            return [], self.gep_expr(inst)
        if isinstance(inst, Alloca):
            return self.alloca_lines(inst), "_v"
        if isinstance(inst, Load):
            return self.load_lines(inst), "_v"
        if isinstance(inst, Call):
            return [], self.call_expr(inst, step_index)
        raise InterpreterBug(f"cannot compile {inst!r}")

    def binop_expr(self, inst: BinOp) -> str:
        op, bits = inst.op, inst.type.bits
        a, b = self.expr(inst.lhs), self.expr(inst.rhs)
        if inst.type.is_float:
            sym = _FLOAT_DIRECT.get(op)
            if sym is None:  # fdiv/frem: zero/NaN special cases
                return f'_fb("{op}", {a}, {b}, {bits})'
            core = f"({a} {sym} {b})"
            return core if bits == 64 else f"_f32{core}"
        sym = _INT_MASKED.get(op)
        if sym is not None:
            return f"(({a} {sym} {b}) & {mask(bits)})"
        sym = _INT_BITWISE.get(op)
        if sym is not None:
            return f"({a} {sym} {b})"
        # Shifts, divisions, remainders: trap/masking semantics live in
        # one place (ops.eval_int_binop) for both tiers.
        return f'_ib("{op}", {a}, {b}, {bits})'

    def icmp_expr(self, inst: ICmp) -> str:
        predicate, bits = inst.predicate, inst.lhs.type.bits
        sym = _ICMP_UNSIGNED.get(predicate)
        if sym is not None:
            return (f"(1 if {self.expr(inst.lhs)} {sym} "
                    f"{self.expr(inst.rhs)} else 0)")
        sym = _ICMP_SIGNED.get(predicate)
        if sym is not None:
            return (f"(1 if {self.signed_expr(inst.lhs, bits)} {sym} "
                    f"{self.signed_expr(inst.rhs, bits)} else 0)")
        return (f'_icmp("{predicate}", {self.expr(inst.lhs)}, '
                f'{self.expr(inst.rhs)}, {bits})')

    def fcmp_expr(self, inst: FCmp) -> str:
        sym = _FCMP_ORDERED.get(inst.predicate)
        a, b = self.expr(inst.lhs), self.expr(inst.rhs)
        if sym is None:
            return f'_fcmp("{inst.predicate}", {a}, {b})'
        # Ordered comparisons are false on NaN (x != x).
        return (f"(0 if ({a} != {a} or {b} != {b}) "
                f"else (1 if {a} {sym} {b} else 0))")

    def cast_expr(self, inst: Cast) -> str:
        op = inst.op
        a = self.expr(inst.value)
        if op == "trunc":
            return f"({a} & {mask(inst.type.bits)})"
        if op in ("zext", "bitcast"):
            return a  # operands are already canonical for their width
        return (f'_cast("{op}", {a}, {self.bind(inst.value.type)}, '
                f'{self.bind(inst.type)})')

    def gep_expr(self, inst: GetElementPtr) -> str:
        base = self.expr(inst.base)
        bits = inst.index.type.bits
        if isinstance(inst.index, Constant):
            offset = to_signed(inst.index.value, bits) * inst.elem_size
            return f"(({base} + {offset}) & {_MASK64})"
        return (f"(({base} + _sgn({self.expr(inst.index)}, {bits})"
                f" * {inst.elem_size}) & {_MASK64})")

    def alloca_lines(self, inst: Alloca) -> list[str]:
        return [
            f"_v = frame.allocas.get({inst.iid})",
            "if _v is None:",
            f"    _v, _owned = state.memory.allocate_stack("
            f"{inst.count}, {inst.elem_type.size_bytes})",
            f"    frame.allocas[{inst.iid}] = _v",
            "    frame.owned.extend(_owned)",
        ]

    def load_lines(self, inst: Load) -> list[str]:
        value_type = inst.type
        default = "0.0" if value_type.is_float else "0"
        lines = [
            f"_v = state.memory.load({self.expr(inst.pointer)}, {default})",
        ]
        # Same reinterpretation fast path as the closure tier: only a
        # corrupted address can land on a cell of another type/width.
        if value_type.is_float:
            lines.append("if _v.__class__ is not float:")
        else:
            lines.append(f"if _v.__class__ is float "
                         f"or _v > {value_type.max_unsigned}:")
        lines.append(f"    _v = _rl(_v, {self.bind(value_type)})")
        return lines

    def call_expr(self, inst: Call, step_index: int) -> str:
        args = ", ".join(self.expr(argument) for argument in inst.args)
        callee = inst.callee
        if (is_intrinsic(callee)
                and callee not in self.engine.module.functions):
            return f'_intr("{callee}", [{args}], {self.bind(inst.type)})'
        target = self.bind(self.engine._compiled[callee])
        return f"state.call({target}, [{args}], state, {step_index})"

    def output_expr(self, inst: Output) -> str:
        value_type = inst.value.type
        a = self.expr(inst.value)
        if isinstance(value_type, IntType):
            return f"str(_sgn({a}, {value_type.bits}))"
        if isinstance(value_type, FloatType):
            digits = inst.precision if inst.precision is not None else 17
            return f'"%.{digits}g" % ({a})'
        return f"_fmt({a}, {self.bind(value_type)}, {inst.precision!r})"

    def emit_detect(self, inst: Detect) -> None:
        w = self.lines.append
        a, b = self.expr(inst.original), self.expr(inst.duplicate)
        message = (f'f"detect #{inst.iid}: '
                   f'{{{a}!r}} != {{{b}!r}}"')
        w(f"    if not ({a} == {b}):")
        if inst.original.type.is_float:
            # Both NaN: duplicate agrees with the original, no trap.
            w(f"        if not ({a} != {a} and {b} != {b}):")
            w(f"            raise _Det({message})")
        else:
            w(f"        raise _Det({message})")
