"""Fast execution engine for the mini-IR.

The engine compiles every instruction once into a small Python closure
("step"); running a program is then a tight loop over per-block step
lists.  This is what makes LLFI-style fault-injection campaigns (many
thousands of complete executions) tractable in pure Python.

Fault injection is built in: a run can be armed with an
:class:`Injection` naming a static instruction, the k-th dynamic
occurrence of it, and a bit to flip in its destination register — exactly
the fault model of the paper (transient fault in a computational
element's output, Sec. II-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.bitutils import flip_bit_typed, mask, to_signed
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Output,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .checkpoint import FrameSnap, GoldenCapture, Snapshot
from .codegen import TIER_BATCH, TIER_CODEGEN, generate_function, resolve_tier
from .errors import (
    ArithmeticTrap,
    DetectionTrap,
    HangFault,
    InterpreterBug,
    MemoryFault,
    StackOverflow,
)
from .intrinsics import call_intrinsic, is_intrinsic
from .memory import GlobalLayout, MemoryState
from .ops import (
    default_value,
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
    format_output,
    reinterpret_loaded,
)
from .result import CRASH, DETECTED, HANG, OK, RunResult

_MASK64 = mask(64)

#: Engines compiled in this process.  Campaign workers must build one
#: engine per (module revision) and reuse it for every run; the
#: regression tests in ``tests/fi/test_engine_reuse.py`` watch this.
_ENGINE_BUILDS = 0


def engine_build_count() -> int:
    """How many ExecutionEngines this process has compiled so far."""
    return _ENGINE_BUILDS


@dataclass(frozen=True)
class Injection:
    """A single-bit transient fault in one dynamic instruction instance."""

    iid: int          # static instruction id (must produce a result)
    occurrence: int   # 1-based dynamic occurrence of that instruction
    bit: int          # bit position to flip in the destination register


def _maybe_inject(state, value, value_type):
    """Occurrence bookkeeping + bit flip for the armed injection.

    Shared by the closure tier, the codegen tier's inject variants, and
    the phi-move helper: every code location that can produce the armed
    instruction's value must route through this exact bookkeeping.
    """
    state.occurrence += 1
    if state.occurrence != state.inject_occurrence:
        return value
    state.activated = True
    return flip_bit_typed(value, state.inject_bit, value_type)


def _apply_phi_moves(state, frame, block, previous) -> None:
    """Parallel phi copy for entering ``block`` from ``previous``.

    Evaluate every incoming value first, then assign with per-phi
    injection checks — the one definition both interpreter loops (and
    the codegen tier's block-entry path) share, so they cannot diverge.
    """
    if block.phi_moves is None:
        return
    moves = block.phi_moves.get(previous)
    if moves:
        values = [fetch(frame) for _d, fetch, _i, _t in moves]
        for (dest, _fetch, iid, value_type), value in zip(moves, values):
            if state.inject_iid == iid:
                value = _maybe_inject(state, value, value_type)
            frame.slots[dest] = value


class _Frame:
    """One activation record: value slots plus per-frame alloca cache."""

    __slots__ = ("slots", "allocas", "owned")

    def __init__(self, n_slots: int):
        self.slots = [None] * n_slots
        self.allocas: dict[int, int] = {}
        self.owned: list[int] = []


class _State:
    """Per-run mutable state shared across frames."""

    __slots__ = (
        "memory", "outputs", "dynamic_count", "budget", "block_counts",
        "inject_iid", "inject_occurrence", "inject_bit", "occurrence",
        "activated", "call_depth", "call", "ret_value",
    )

    def __init__(self, memory: MemoryState, budget: int, n_blocks: int = 0):
        self.memory = memory
        self.outputs: list[str] = []
        self.dynamic_count = 0
        self.budget = budget
        #: Dense per-block execution counters, indexed by the engine's
        #: global block ordinal; converted to the block -> count mapping
        #: of RunResult at run end.
        self.block_counts: list[int] = [0] * n_blocks
        self.inject_iid = -1
        self.inject_occurrence = 0
        self.inject_bit = 0
        self.occurrence = 0
        self.activated = False
        self.call_depth = 0
        #: Call dispatch: the engine's ``_call`` for plain runs, or
        #: ``_capture_call`` during an instrumented golden pass.
        self.call = None
        #: Return-value mailbox of the codegen tier's block functions.
        self.ret_value = None


class _CaptureState(_State):
    """Extra bookkeeping for the snapshot-capturing golden pass."""

    __slots__ = ("records", "next_capture", "stride", "snapshots",
                 "max_snapshots")

    def __init__(self, memory: MemoryState, budget: int, stride: int,
                 max_snapshots: int, n_blocks: int = 0):
        super().__init__(memory, budget, n_blocks)
        #: Shadow stack of [compiled, frame, cblock, previous, step_index]
        #: records, innermost last; step_index is the position of the
        #: call step a frame is currently suspended at.
        self.records: list = []
        self.stride = stride
        self.next_capture = stride
        self.snapshots: list[Snapshot] = []
        self.max_snapshots = max_snapshots


# Terminator kinds.
_T_JUMP, _T_CBR, _T_RET = 0, 1, 2


class _CompiledBlock:
    __slots__ = ("block", "steps", "step_insts", "term_kind", "term_payload",
                 "cost", "phi_moves", "ordinal", "local_index")

    def __init__(self, block):
        self.block = block
        self.steps = []
        #: Source instruction of each step, parallel to ``steps`` — the
        #: checkpoint layer maps a suspended step index back to the call
        #: instruction whose return value a resumed frame must place.
        self.step_insts = []
        self.term_kind = _T_RET
        self.term_payload = None
        self.cost = 0
        #: predecessor _CompiledBlock -> [(dest_slot, fetch, iid, type)]
        self.phi_moves = None
        #: Module-global index into the dense block-counter array.
        self.ordinal = -1
        #: Index into the owning function's codegen dispatch tables.
        self.local_index = -1


class _CompiledFunction:
    __slots__ = ("function", "n_args", "n_slots", "slot_of", "blocks",
                 "entry", "cg_fast", "cg_inject", "cg_covered", "cg_iids",
                 "cg_tables")

    def __init__(self, function):
        self.function = function
        self.n_args = len(function.args)
        self.slot_of: dict[int, int] = {}
        next_slot = self.n_args
        for inst in function.instructions():
            if inst.has_result:
                self.slot_of[id(inst)] = next_slot
                next_slot += 1
        self.n_slots = next_slot
        self.blocks: dict = {}
        self.entry = None
        #: Codegen tier: block functions by local index (None = this
        #: function runs on the closure tier), their injection-capable
        #: twins, the per-block-function sets of iids those twins guard,
        #: and memoized per-injection dispatch tables.
        self.cg_fast = None
        self.cg_inject = None
        self.cg_covered = None
        self.cg_iids = frozenset()
        self.cg_tables: dict = {}

    def cg_table(self, inject_iid: int):
        """Dispatch table for one armed iid: the inject variant is
        selected only for block functions that guard that iid, so
        every other block runs with zero injection overhead."""
        if inject_iid < 0 or inject_iid not in self.cg_iids:
            return self.cg_fast
        table = self.cg_tables.get(inject_iid)
        if table is None:
            table = [
                inject if inject_iid in covered else fast
                for fast, inject, covered in zip(
                    self.cg_fast, self.cg_inject, self.cg_covered)
            ]
            self.cg_tables[inject_iid] = table
        return table


class ExecutionEngine:
    """Compiles a finalized module and executes it (optionally with a fault)."""

    def __init__(self, module: Module, max_dynamic: int = 20_000_000,
                 stack_limit: int = 256, tier: str | None = None):
        if not module.is_finalized:
            raise ValueError("finalize the module before building an engine")
        if "main" not in module.functions:
            raise ValueError("module has no main function")
        if module.functions["main"].args:
            raise ValueError("main must take no arguments")
        self.module = module
        self.max_dynamic = max_dynamic
        self.stack_limit = stack_limit
        self.layout = GlobalLayout(module)
        self._compiled: dict[str, _CompiledFunction] = {}
        for function in module.functions.values():
            self._compiled[function.name] = _CompiledFunction(function)
        for compiled in self._compiled.values():
            self._compile_function(compiled)
        # Global block ordinals index the dense per-run counter array
        # shared by both tiers and by checkpoint snapshots.
        order: list = []
        ordinals: dict = {}
        for compiled in self._compiled.values():
            for local_index, cblock in enumerate(compiled.blocks.values()):
                cblock.local_index = local_index
                cblock.ordinal = len(order)
                ordinals[cblock.block] = cblock.ordinal
                order.append(cblock.block)
        self._block_order = order
        self._ordinals = ordinals
        self._n_blocks = len(order)
        #: iid -> (home IR block, step position) for the checkpoint layer.
        self._homes: dict[int, tuple] | None = None
        self.tier = resolve_tier(tier)
        self.codegen_functions = 0
        self.codegen_fallbacks = 0
        self._codegen_built = False
        self._batch_runner = None
        self._analyses = None
        # The batch tier drains diverged lanes on generated block
        # functions, so it implies the codegen representation.
        self._codegen_on = self.tier in (TIER_CODEGEN, TIER_BATCH)
        if self._codegen_on:
            self._build_codegen()
        global _ENGINE_BUILDS
        _ENGINE_BUILDS += 1

    def _build_codegen(self) -> None:
        """Generate the codegen tier once, with per-function fallback.

        A function the generator cannot translate simply keeps running
        on the closure tier (``cg_fast is None``) — the same
        degradation-over-divergence contract as checkpointing.
        """
        if self._codegen_built:
            return
        self._codegen_built = True
        for compiled in self._compiled.values():
            try:
                fast, inject, covered, _source = generate_function(
                    self, compiled
                )
            except Exception:
                self.codegen_fallbacks += 1
            else:
                compiled.cg_fast = fast
                compiled.cg_inject = inject
                compiled.cg_covered = covered
                compiled.cg_iids = frozenset().union(*covered)
                self.codegen_functions += 1

    def configure_tier(self, tier: str | None) -> None:
        """(Re)select the execution tier for subsequent runs.

        Both representations coexist on one engine, so campaign workers
        can honor a per-span tier knob without recompiling anything —
        the engine-reuse invariant in ``tests/fi/test_engine_reuse.py``.
        """
        self.tier = resolve_tier(tier)
        self._codegen_on = self.tier in (TIER_CODEGEN, TIER_BATCH)
        if self._codegen_on:
            self._build_codegen()

    def block_ordinal(self, block) -> int:
        """Index of an IR block in the dense counter array."""
        return self._ordinals[block]

    def _block_counts_map(self, counts: list) -> dict:
        """Dense counter array -> the block -> count mapping of RunResult."""
        order = self._block_order
        return {order[index]: count
                for index, count in enumerate(counts) if count}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, injection: Injection | None = None,
            budget: int | None = None) -> RunResult:
        """Execute main once; classify crashes/hangs/detections."""
        memory = MemoryState(self.layout)
        state = _State(memory, budget or self.max_dynamic, self._n_blocks)
        state.call = self._call
        if injection is not None:
            target = self.module.instruction(injection.iid)
            if not target.has_result:
                raise ValueError(
                    f"instruction #{injection.iid} has no destination register"
                )
            if not 0 <= injection.bit < target.type.bits:
                raise ValueError(
                    f"bit {injection.bit} out of range for {target.type}"
                )
            state.inject_iid = injection.iid
            state.inject_occurrence = injection.occurrence
            state.inject_bit = injection.bit

        outcome, crash_reason = OK, ""
        try:
            self._call(self._compiled["main"], [], state)
        except (MemoryFault, ArithmeticTrap, StackOverflow) as fault:
            outcome, crash_reason = CRASH, str(fault)
        except HangFault as fault:
            outcome, crash_reason = HANG, str(fault)
        except DetectionTrap as fault:
            outcome, crash_reason = DETECTED, str(fault)

        return RunResult(
            outcome=outcome,
            outputs=state.outputs,
            dynamic_count=state.dynamic_count,
            crash_reason=crash_reason,
            activated=state.activated,
            block_counts=self._block_counts_map(state.block_counts),
            footprint_bytes=state.memory.footprint_bytes,
        )

    def golden(self) -> RunResult:
        """Fault-free reference run; raises if the program itself fails."""
        result = self.run()
        if result.outcome != OK:
            raise InterpreterBug(
                f"golden run of {self.module.name} failed: "
                f"{result.outcome} ({result.crash_reason})"
            )
        return result

    # ------------------------------------------------------------------
    # Interpretation loop
    # ------------------------------------------------------------------

    def _call(self, compiled: _CompiledFunction, args: list, state: _State,
              caller_step: int = -1):
        if state.call_depth >= self.stack_limit:
            raise StackOverflow(f"call depth exceeded {self.stack_limit}")
        state.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[: compiled.n_args] = args
        try:
            if self._codegen_on and compiled.cg_fast is not None:
                return self._cg_run(
                    compiled, frame, compiled.entry.local_index, state
                )
            return self._loop(compiled, frame, compiled.entry, None, state)
        finally:
            state.call_depth -= 1
            state.memory.free(frame.owned)

    def _cg_run(self, compiled, frame, index: int, state: _State):
        """The codegen tier's driver: each generated block function
        executes one (super)block iteration — successor phi moves
        included — and returns the next block's local index (-1 = ret)."""
        table = compiled.cg_table(state.inject_iid)
        while index >= 0:
            index = table[index](state, frame)
        return state.ret_value

    def _enter_block(self, compiled, frame, block, previous, state: _State):
        """Resume execution at the top of ``block`` (entered from
        ``previous``) on whichever tier ``compiled`` runs on."""
        if self._codegen_on and compiled.cg_fast is not None:
            _apply_phi_moves(state, frame, block, previous)
            return self._cg_run(compiled, frame, block.local_index, state)
        return self._loop(compiled, frame, block, previous, state)

    def _loop(self, compiled, frame, block, previous, state: _State):
        """The closure tier's block dispatch loop, from the top of
        ``block``.

        Keep in lockstep with :meth:`_capture_loop`, which is this loop
        plus shadow-stack/snapshot bookkeeping for the golden pass.
        """
        block_counts = state.block_counts
        while True:
            _apply_phi_moves(state, frame, block, previous)
            state.dynamic_count += block.cost
            if state.dynamic_count > state.budget:
                raise HangFault(state.dynamic_count)
            block_counts[block.ordinal] += 1
            for step in block.steps:
                step(state, frame)
            kind = block.term_kind
            if kind == _T_JUMP:
                previous = block
                block = block.term_payload
            elif kind == _T_CBR:
                fetch, true_block, false_block = block.term_payload
                previous = block
                block = true_block if fetch(frame) else false_block
            else:  # _T_RET
                fetch = block.term_payload
                return fetch(frame) if fetch is not None else None

    # ------------------------------------------------------------------
    # Checkpoint-and-fork execution (see repro.interp.checkpoint)
    # ------------------------------------------------------------------

    def capture(self, stride: int, max_snapshots: int = 256) -> GoldenCapture:
        """One instrumented golden run capturing resumable snapshots.

        Snapshots are taken at block boundaries, the first one at or
        after dynamic index ``stride`` and then every ``stride``
        instructions, up to ``max_snapshots``.  Raises
        :class:`InterpreterBug` if the fault-free program does not
        complete (the same contract as :meth:`golden`).
        """
        if stride < 1:
            raise ValueError(f"capture stride must be >= 1, got {stride}")
        state = _CaptureState(MemoryState(self.layout), self.max_dynamic,
                              stride, max_snapshots, self._n_blocks)
        state.call = self._capture_call
        try:
            self._capture_call(self._compiled["main"], [], state)
        except (MemoryFault, ArithmeticTrap, StackOverflow, HangFault,
                DetectionTrap) as fault:
            raise InterpreterBug(
                f"golden capture of {self.module.name} failed: {fault}"
            ) from fault
        result = RunResult(
            outcome=OK,
            outputs=state.outputs,
            dynamic_count=state.dynamic_count,
            block_counts=self._block_counts_map(state.block_counts),
            footprint_bytes=state.memory.footprint_bytes,
        )
        return GoldenCapture(self, result, state.snapshots, stride)

    def _capture_call(self, compiled: _CompiledFunction, args: list,
                      state: _CaptureState, caller_step: int = -1):
        if state.call_depth >= self.stack_limit:
            raise StackOverflow(f"call depth exceeded {self.stack_limit}")
        state.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[: compiled.n_args] = args
        records = state.records
        if records:
            records[-1][4] = caller_step  # caller now suspended at this step
        record = [compiled, frame, compiled.entry, None, -1]
        records.append(record)
        try:
            return self._capture_loop(compiled, frame, state, record)
        finally:
            records.pop()
            state.call_depth -= 1
            state.memory.free(frame.owned)

    def _capture_loop(self, compiled, frame, state: _CaptureState, record):
        """:meth:`_loop` plus shadow-stack updates and snapshot capture.

        The capture check sits at the very top of the loop — before the
        pending block's phi moves, cost, and count — so a snapshot sees
        only *completed* block iterations in every frame but the
        suspended mid-block ones recorded on the shadow stack.
        """
        block = record[2]
        previous = record[3]
        block_counts = state.block_counts
        while True:
            record[2] = block
            record[3] = previous
            if state.dynamic_count >= state.next_capture:
                self._take_snapshot(state)
            _apply_phi_moves(state, frame, block, previous)
            state.dynamic_count += block.cost
            if state.dynamic_count > state.budget:
                raise HangFault(state.dynamic_count)
            block_counts[block.ordinal] += 1
            for step in block.steps:
                step(state, frame)
            kind = block.term_kind
            if kind == _T_JUMP:
                previous = block
                block = block.term_payload
            elif kind == _T_CBR:
                fetch, true_block, false_block = block.term_payload
                previous = block
                block = true_block if fetch(frame) else false_block
            else:  # _T_RET
                fetch = block.term_payload
                return fetch(frame) if fetch is not None else None

    def _take_snapshot(self, state: _CaptureState) -> None:
        records = state.records
        last = len(records) - 1
        frames = tuple(
            FrameSnap(
                compiled, tuple(frame.slots), dict(frame.allocas),
                tuple(frame.owned), cblock, previous,
                step_index if index < last else -1,
            )
            for index, (compiled, frame, cblock, previous, step_index)
            in enumerate(records)
        )
        memory = state.memory
        state.snapshots.append(Snapshot(
            dynamic_count=state.dynamic_count,
            frames=frames,
            cells=dict(memory.cells),
            valid=set(memory.valid),
            stack_cursor=memory.stack_cursor,
            footprint_bytes=memory.footprint_bytes,
            outputs_len=len(state.outputs),
            block_counts=list(state.block_counts),
        ))
        if len(state.snapshots) >= state.max_snapshots:
            state.next_capture = state.budget + 1  # schedule exhausted
        else:
            state.next_capture = state.dynamic_count + state.stride

    def instruction_home(self, iid: int):
        """(home IR block, step position) of an instruction, or None.

        Position is the index in the home block's step list; phis are
        -1 (they execute as edge moves before any step).  Terminators
        and instructions of other modules have no home here.
        """
        if self._homes is None:
            homes: dict[int, tuple] = {}
            for compiled in self._compiled.values():
                for cblock in compiled.blocks.values():
                    for position, inst in enumerate(cblock.step_insts):
                        homes[inst.iid] = (cblock.block, position)
                    for phi in cblock.block.phis():
                        homes[phi.iid] = (cblock.block, -1)
            self._homes = homes
        return self._homes.get(iid)

    def resume_run(self, capture: GoldenCapture, snapshot: Snapshot,
                   injection: Injection | None = None,
                   budget: int | None = None) -> RunResult:
        """Restore ``snapshot`` and execute the remaining suffix.

        Equivalent to :meth:`run` with the same injection whenever the
        injection point lies at-or-after the snapshot (the scheduler's
        :meth:`GoldenCapture.snapshot_for` guarantees it): the restored
        state is bit-identical to the cold run's state at that point,
        and the engine holds no wall-clock or RNG state that could make
        the suffix diverge.
        """
        occurrence = 0
        if injection is not None:
            # The prefix already executed this many occurrences of the
            # target; the armed occurrence must fire in the suffix.
            occurrence = capture.prefix_occurrence(snapshot, injection.iid)
        return self.resume_snapshot(
            snapshot, injection, budget,
            occurrence=occurrence,
            outputs=capture.result.outputs[: snapshot.outputs_len],
        )

    def resume_snapshot(self, snapshot: Snapshot,
                        injection: Injection | None = None,
                        budget: int | None = None, *,
                        occurrence: int = 0,
                        outputs: list | None = None,
                        activated: bool = False) -> RunResult:
        """Execute a suffix from an explicit mid-run state.

        The general form of :meth:`resume_run`: callers provide the
        occurrence count the prefix already consumed and the output
        buffer as of the snapshot.  The batch tier uses this to drain a
        diverged lane — its snapshot is synthesized from lockstep state
        rather than a golden capture, and a lane whose fault already
        fired hands over ``activated=True`` with its occurrence count so
        the armed instance cannot fire twice.
        """
        state = _State(
            MemoryState.restored(
                dict(snapshot.cells), set(snapshot.valid),
                snapshot.stack_cursor, snapshot.footprint_bytes,
            ),
            budget or self.max_dynamic,
        )
        state.call = self._call
        state.outputs = list(outputs) if outputs is not None else []
        state.dynamic_count = snapshot.dynamic_count
        state.block_counts = list(snapshot.block_counts)
        state.activated = activated
        if injection is not None:
            target = self.module.instruction(injection.iid)
            if not target.has_result:
                raise ValueError(
                    f"instruction #{injection.iid} has no destination register"
                )
            if not 0 <= injection.bit < target.type.bits:
                raise ValueError(
                    f"bit {injection.bit} out of range for {target.type}"
                )
            state.inject_iid = injection.iid
            state.inject_occurrence = injection.occurrence
            state.inject_bit = injection.bit
            state.occurrence = occurrence

        outcome, crash_reason = OK, ""
        try:
            self._resume_frame(snapshot, 0, state)
        except (MemoryFault, ArithmeticTrap, StackOverflow) as fault:
            outcome, crash_reason = CRASH, str(fault)
        except HangFault as fault:
            outcome, crash_reason = HANG, str(fault)
        except DetectionTrap as fault:
            outcome, crash_reason = DETECTED, str(fault)

        return RunResult(
            outcome=outcome,
            outputs=state.outputs,
            dynamic_count=state.dynamic_count,
            crash_reason=crash_reason,
            activated=state.activated,
            block_counts=self._block_counts_map(state.block_counts),
            footprint_bytes=state.memory.footprint_bytes,
        )

    def _resume_frame(self, snapshot: Snapshot, depth: int, state: _State):
        """Rebuild one activation record and continue its execution.

        Outer frames are suspended at a call step: the callee (the next
        frame) resumes first, then its return value is placed exactly
        as the call step would have (injection hook included) and the
        block's remaining steps run.  The innermost frame resumes at
        the top of the block loop, where the capture was taken.
        """
        frec = snapshot.frames[depth]
        compiled = frec.compiled
        state.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[:] = frec.slots
        frame.allocas.update(frec.allocas)
        frame.owned.extend(frec.owned)
        try:
            if depth + 1 < len(snapshot.frames):
                value = self._resume_frame(snapshot, depth + 1, state)
                cblock = frec.cblock
                inst = cblock.step_insts[frec.step_index]
                if inst.has_result:
                    if state.inject_iid == inst.iid:
                        value = self._maybe_inject(state, value, inst.type)
                    frame.slots[compiled.slot_of[id(inst)]] = value
                return self._loop_from(
                    compiled, frame, cblock, frec.step_index + 1, state
                )
            return self._enter_block(compiled, frame, frec.cblock,
                                     frec.previous, state)
        finally:
            state.call_depth -= 1
            state.memory.free(frame.owned)

    @property
    def analyses(self):
        """The module's shared :class:`AnalysisManager`.

        The batch tier resolves reconvergence targets through it
        (``ipostdominators``), so the per-function results are cached
        once per module and shared with the modeling stack's query
        engine rather than recomputed per engine build.
        """
        if self._analyses is None:
            from ..cache.manager import analysis_manager_for
            self._analyses = analysis_manager_for(self.module)
        return self._analyses

    def batch_runner(self):
        """The lazily-built lockstep batch runner for this engine.

        Requires numpy (:data:`repro.interp.batch.HAVE_NUMPY`); callers
        that must degrade gracefully check that flag first.  Like the
        codegen tables, the runner is per-engine state reused across
        every group of trials.
        """
        if self._batch_runner is None:
            from .batch import BatchRunner
            self._batch_runner = BatchRunner(self)
        return self._batch_runner

    def _loop_from(self, compiled, frame, cblock, start: int, state: _State):
        """Finish a block from step ``start``, then rejoin the main loop."""
        steps = cblock.steps
        for index in range(start, len(steps)):
            steps[index](state, frame)
        kind = cblock.term_kind
        if kind == _T_RET:
            fetch = cblock.term_payload
            return fetch(frame) if fetch is not None else None
        if kind == _T_JUMP:
            block = cblock.term_payload
        else:  # _T_CBR
            fetch, true_block, false_block = cblock.term_payload
            block = true_block if fetch(frame) else false_block
        return self._enter_block(compiled, frame, block, cblock, state)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _compile_function(self, compiled: _CompiledFunction) -> None:
        function = compiled.function
        block_map = {
            block: _CompiledBlock(block) for block in function.blocks
        }
        for block, cblock in block_map.items():
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    continue  # executed as edge moves, not steps
                if inst.is_terminator:
                    self._compile_terminator(compiled, cblock, inst, block_map)
                else:
                    step_index = len(cblock.steps)
                    cblock.step_insts.append(inst)
                    cblock.steps.append(
                        self._compile_step(compiled, inst, step_index)
                    )
            cblock.cost = len(block.instructions)
        # Phi nodes become parallel copies on each incoming edge.
        for block, cblock in block_map.items():
            phis = block.phis()
            if not phis:
                continue
            cblock.phi_moves = {}
            for pred in block.predecessors:
                moves = []
                for phi in phis:
                    moves.append((
                        compiled.slot_of[id(phi)],
                        self._fetch(compiled, phi.value_for(pred)),
                        phi.iid,
                        phi.type,
                    ))
                cblock.phi_moves[block_map[pred]] = moves
        compiled.blocks = block_map
        compiled.entry = block_map[function.entry]

    def _fetch(self, compiled: _CompiledFunction, value: Value):
        """Closure returning the runtime value of an operand."""
        if isinstance(value, Constant):
            constant = value.value
            return lambda frame: constant
        if isinstance(value, GlobalVariable):
            address = self.layout.addresses[value.name]
            return lambda frame: address
        if isinstance(value, Argument):
            index = value.index
            return lambda frame: frame.slots[index]
        if isinstance(value, Instruction):
            slot = compiled.slot_of[id(value)]
            return lambda frame: frame.slots[slot]
        raise InterpreterBug(f"cannot fetch {value!r}")

    def _compile_terminator(self, compiled, cblock, inst, block_map) -> None:
        if isinstance(inst, Branch):
            if not inst.is_conditional:
                cblock.term_kind = _T_JUMP
                cblock.term_payload = block_map[inst.true_block]
            else:
                cblock.term_kind = _T_CBR
                cblock.term_payload = (
                    self._fetch(compiled, inst.cond),
                    block_map[inst.true_block],
                    block_map[inst.false_block],
                )
        elif isinstance(inst, Ret):
            cblock.term_kind = _T_RET
            cblock.term_payload = (
                self._fetch(compiled, inst.value)
                if inst.value is not None else None
            )
        else:
            raise InterpreterBug(f"unknown terminator {inst!r}")

    # -- step compilation ---------------------------------------------------

    def _compile_step(self, compiled, inst: Instruction, step_index: int):
        if isinstance(inst, BinOp):
            return self._step_binop(compiled, inst)
        if isinstance(inst, ICmp):
            return self._step_icmp(compiled, inst)
        if isinstance(inst, FCmp):
            return self._step_fcmp(compiled, inst)
        if isinstance(inst, Cast):
            return self._step_cast(compiled, inst)
        if isinstance(inst, Alloca):
            return self._step_alloca(compiled, inst)
        if isinstance(inst, Load):
            return self._step_load(compiled, inst)
        if isinstance(inst, Store):
            return self._step_store(compiled, inst)
        if isinstance(inst, GetElementPtr):
            return self._step_gep(compiled, inst)
        if isinstance(inst, Call):
            return self._step_call(compiled, inst, step_index)
        if isinstance(inst, Output):
            return self._step_output(compiled, inst)
        if isinstance(inst, Select):
            return self._step_select(compiled, inst)
        if isinstance(inst, Detect):
            return self._step_detect(compiled, inst)
        raise InterpreterBug(f"cannot compile {inst!r}")

    #: One shared definition (module level) serves both tiers; kept as a
    #: static method so the step closures below read naturally.
    _maybe_inject = staticmethod(_maybe_inject)

    def _step_binop(self, compiled, inst: BinOp):
        fa = self._fetch(compiled, inst.lhs)
        fb = self._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        op = inst.op
        bits = value_type.bits
        inject = self._maybe_inject

        if value_type.is_float:
            evaluate = lambda a, b: eval_float_binop(op, a, b, bits)
        elif op == "add":
            bit_mask = mask(bits)
            evaluate = lambda a, b: (a + b) & bit_mask
        elif op == "sub":
            bit_mask = mask(bits)
            evaluate = lambda a, b: (a - b) & bit_mask
        elif op == "mul":
            bit_mask = mask(bits)
            evaluate = lambda a, b: (a * b) & bit_mask
        elif op == "and":
            evaluate = lambda a, b: a & b
        elif op == "or":
            evaluate = lambda a, b: a | b
        elif op == "xor":
            evaluate = lambda a, b: a ^ b
        else:
            evaluate = lambda a, b: eval_int_binop(op, a, b, bits)

        def step(state, frame):
            value = evaluate(fa(frame), fb(frame))
            if state.inject_iid == iid:
                value = inject(state, value, value_type)
            frame.slots[dest] = value

        return step

    def _step_icmp(self, compiled, inst: ICmp):
        fa = self._fetch(compiled, inst.lhs)
        fb = self._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        predicate = inst.predicate
        bits = inst.lhs.type.bits
        value_type = inst.type
        inject = self._maybe_inject

        def step(state, frame):
            value = eval_icmp(predicate, fa(frame), fb(frame), bits)
            if state.inject_iid == iid:
                value = inject(state, value, value_type)
            frame.slots[dest] = value

        return step

    def _step_fcmp(self, compiled, inst: FCmp):
        fa = self._fetch(compiled, inst.lhs)
        fb = self._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        predicate = inst.predicate
        value_type = inst.type
        inject = self._maybe_inject

        def step(state, frame):
            value = eval_fcmp(predicate, fa(frame), fb(frame))
            if state.inject_iid == iid:
                value = inject(state, value, value_type)
            frame.slots[dest] = value

        return step

    def _step_cast(self, compiled, inst: Cast):
        fetch = self._fetch(compiled, inst.value)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        op = inst.op
        from_type = inst.value.type
        to_type = inst.type
        inject = self._maybe_inject

        def step(state, frame):
            value = eval_cast(op, fetch(frame), from_type, to_type)
            if state.inject_iid == iid:
                value = inject(state, value, to_type)
            frame.slots[dest] = value

        return step

    def _step_alloca(self, compiled, inst: Alloca):
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        count = inst.count
        elem_size = inst.elem_type.size_bytes
        value_type = inst.type
        inject = self._maybe_inject

        def step(state, frame):
            address = frame.allocas.get(iid)
            if address is None:
                address, elements = state.memory.allocate_stack(count, elem_size)
                frame.allocas[iid] = address
                frame.owned.extend(elements)
            if state.inject_iid == iid:
                address = inject(state, address, value_type)
            frame.slots[dest] = address

        return step

    def _step_load(self, compiled, inst: Load):
        fetch = self._fetch(compiled, inst.pointer)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        default = default_value(value_type)
        inject = self._maybe_inject
        is_float = value_type.is_float
        unsigned_max = 0 if is_float else value_type.max_unsigned

        def step(state, frame):
            value = state.memory.load(fetch(frame), default)
            # Fast path: the cell matches the load type (always true in
            # fault-free runs).  A corrupted address may land on a cell
            # of another type/width: reinterpret like hardware would.
            if is_float:
                if value.__class__ is not float:
                    value = reinterpret_loaded(value, value_type)
            elif value.__class__ is float or value > unsigned_max:
                value = reinterpret_loaded(value, value_type)
            if state.inject_iid == iid:
                value = inject(state, value, value_type)
            frame.slots[dest] = value

        return step

    def _step_store(self, compiled, inst: Store):
        fetch_value = self._fetch(compiled, inst.value)
        fetch_pointer = self._fetch(compiled, inst.pointer)

        def step(state, frame):
            state.memory.store(fetch_pointer(frame), fetch_value(frame))

        return step

    def _step_gep(self, compiled, inst: GetElementPtr):
        fetch_base = self._fetch(compiled, inst.base)
        fetch_index = self._fetch(compiled, inst.index)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        elem_size = inst.elem_size
        index_bits = inst.index.type.bits
        value_type = inst.type
        inject = self._maybe_inject

        def step(state, frame):
            index = to_signed(fetch_index(frame), index_bits)
            address = (fetch_base(frame) + index * elem_size) & _MASK64
            if state.inject_iid == iid:
                address = inject(state, address, value_type)
            frame.slots[dest] = address

        return step

    def _step_call(self, compiled, inst: Call, step_index: int):
        fetches = [self._fetch(compiled, arg) for arg in inst.args]
        callee = inst.callee
        result_type = inst.type
        has_result = inst.has_result
        dest = compiled.slot_of[id(inst)] if has_result else -1
        iid = inst.iid
        inject = self._maybe_inject

        if is_intrinsic(callee) and callee not in self.module.functions:
            def step(state, frame):
                args = [fetch(frame) for fetch in fetches]
                value = call_intrinsic(callee, args, result_type)
                if state.inject_iid == iid:
                    value = inject(state, value, result_type)
                frame.slots[dest] = value
            return step

        compiled_map = self._compiled

        # ``state.call`` dispatches to _call (plain runs) or
        # _capture_call (golden snapshot pass); the step index lets the
        # capture pass record where this frame is suspended.
        def step(state, frame):
            args = [fetch(frame) for fetch in fetches]
            value = state.call(compiled_map[callee], args, state, step_index)
            if has_result:
                if state.inject_iid == iid:
                    value = inject(state, value, result_type)
                frame.slots[dest] = value

        return step

    def _step_output(self, compiled, inst: Output):
        fetch = self._fetch(compiled, inst.value)
        value_type = inst.value.type
        precision = inst.precision

        def step(state, frame):
            state.outputs.append(
                format_output(fetch(frame), value_type, precision)
            )

        return step

    def _step_select(self, compiled, inst: Select):
        fetch_cond = self._fetch(compiled, inst.cond)
        fetch_true = self._fetch(compiled, inst.true_value)
        fetch_false = self._fetch(compiled, inst.false_value)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        inject = self._maybe_inject

        def step(state, frame):
            value = fetch_true(frame) if fetch_cond(frame) else fetch_false(frame)
            if state.inject_iid == iid:
                value = inject(state, value, value_type)
            frame.slots[dest] = value

        return step

    def _step_detect(self, compiled, inst: Detect):
        fetch_a = self._fetch(compiled, inst.original)
        fetch_b = self._fetch(compiled, inst.duplicate)
        is_float = inst.original.type.is_float
        iid = inst.iid

        def step(state, frame):
            a, b = fetch_a(frame), fetch_b(frame)
            if a == b:
                return
            if is_float and a != a and b != b:  # both NaN: no divergence
                return
            raise DetectionTrap(f"detect #{iid}: {a!r} != {b!r}")

        return step
