"""Run results produced by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Raw outcome of one execution (before comparing outputs with a golden run).
OK = "ok"
CRASH = "crash"
HANG = "hang"
DETECTED = "detected"


@dataclass
class RunResult:
    """Everything observed during one program execution."""

    outcome: str
    outputs: list[str] = field(default_factory=list)
    dynamic_count: int = 0
    crash_reason: str = ""
    #: True when an armed injection actually flipped a bit.
    activated: bool = False
    #: Execution count per basic block (block object -> count).
    block_counts: dict = field(default_factory=dict)
    #: Peak memory footprint in bytes (globals + stack), for the crash model.
    footprint_bytes: int = 0

    @property
    def completed(self) -> bool:
        return self.outcome == OK

    def instruction_counts(self) -> dict[int, int]:
        """Execution count per static instruction id, from block counts."""
        counts: dict[int, int] = {}
        for block, count in self.block_counts.items():
            for inst in block.instructions:
                counts[inst.iid] = counts.get(inst.iid, 0) + count
        return counts

    def output_text(self) -> str:
        return "\n".join(self.outputs)

    def same_output(self, other: "RunResult") -> bool:
        return self.outputs == other.outputs
