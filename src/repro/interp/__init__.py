"""Execution substrate: compiled interpreter, memory model, intrinsics."""

from .batch import DEFAULT_BATCH_LANES, HAVE_NUMPY, BatchRunner, GroupOutcome
from .checkpoint import GoldenCapture, Snapshot
from .codegen import TIER_BATCH, TIER_CLOSURE, TIER_CODEGEN, resolve_tier
from .engine import ExecutionEngine, Injection, engine_build_count
from .errors import (
    ArithmeticTrap,
    DetectionTrap,
    HangFault,
    InterpreterBug,
    MemoryFault,
    RuntimeFault,
    StackOverflow,
)
from .intrinsics import INTRINSICS, call_intrinsic, is_intrinsic
from .memory import GLOBAL_BASE, STACK_BASE, GlobalLayout, MemoryState
from .result import CRASH, DETECTED, HANG, OK, RunResult

__all__ = [
    "ArithmeticTrap", "BatchRunner", "CRASH", "DEFAULT_BATCH_LANES",
    "DETECTED", "DetectionTrap", "ExecutionEngine", "GLOBAL_BASE",
    "GlobalLayout", "GoldenCapture", "GroupOutcome", "HANG", "HAVE_NUMPY",
    "HangFault", "INTRINSICS", "Injection", "InterpreterBug", "MemoryFault",
    "MemoryState", "OK", "RunResult", "RuntimeFault", "STACK_BASE",
    "Snapshot", "StackOverflow", "TIER_BATCH", "TIER_CLOSURE", "TIER_CODEGEN",
    "call_intrinsic", "engine_build_count", "is_intrinsic", "resolve_tier",
]
