"""Golden-prefix snapshots for checkpoint-and-fork fault injection.

A fault-injection trial is bit-identical to the golden run up to the
injected dynamic instruction (the fault model arms exactly one dynamic
instance, Sec. II-A).  One *instrumented* golden execution therefore
captures resumable :class:`Snapshot`\\ s at a schedule of
dynamic-instruction indices, and every trial restores the nearest
snapshot at-or-before its injection point and executes only the
remaining suffix — the FastFlip insight applied at execution level.

Snapshots are taken at block boundaries (the top of the interpreter's
block loop, before the block's phi moves run), which makes the capture
points cheap to test for and gives a simple occurrence invariant: at a
capture point, an instruction's completed-execution count is its home
block's count in ``block_counts``, minus the suspended mid-block frames
that have not yet passed it (see :meth:`GoldenCapture.prefix_occurrence`).

A snapshot is immutable once captured and shared read-only by every
trial that forks from it; :meth:`GoldenCapture.resume` materializes
private copies of the memory image and frame slots before executing,
so no trial can corrupt the prefix for its siblings (the copy-on-write
discipline that makes suffix-only execution sound).  Engine state holds
no wall-clock or RNG, so a restored suffix replays exactly what a cold
run would have executed.
"""

from __future__ import annotations

import sys

#: Rough per-entry overhead of a Python dict/set slot plus a small boxed
#: value, used for the snapshot-footprint estimate reported by campaigns.
_ENTRY_BYTES = 60


def merge_block_counts(shared: list, delta) -> list:
    """Dense shared counters plus one lane's sparse ordinal deltas.

    The batch tier's reconvergence sides account block executions as
    sparse ``{ordinal: extra}`` deltas on top of the group's shared
    dense array — either one dict or a lane's list of frozen side
    segments, appended by reference as the lane passes through masked
    sides.  A lane that leaves the group mid-side (trap, hang, or drain
    through a synthesized :class:`Snapshot`) needs its *own* per-block
    view, which is the shared array with its deltas folded in.  Always
    returns a fresh list — snapshots outlive the group state they were
    cut from.
    """
    counts = list(shared)
    if delta:
        if type(delta) is list:
            for segment in delta:
                for ordinal, extra in segment.items():
                    counts[ordinal] += extra
        else:
            for ordinal, extra in delta.items():
                counts[ordinal] += extra
    return counts


class FrameSnap:
    """One suspended activation record inside a snapshot.

    ``step_index`` is the position (in the block's step list) of the
    call instruction this frame is suspended at, or -1 for the innermost
    frame, which resumes at the top of the block loop (phi moves of
    ``cblock`` have not run yet).
    """

    __slots__ = ("compiled", "slots", "allocas", "owned", "cblock",
                 "previous", "step_index")

    def __init__(self, compiled, slots, allocas, owned, cblock, previous,
                 step_index):
        self.compiled = compiled
        self.slots = slots
        self.allocas = allocas
        self.owned = owned
        self.cblock = cblock
        self.previous = previous
        self.step_index = step_index


class Snapshot:
    """Resumable image of one point of the golden execution.

    Everything a run needs: the frame stack (slots, alloca maps, owned
    stack addresses, resume positions), the memory image (cells,
    validity set, stack cursor, footprint), the output-buffer length,
    the per-block execution counts, and the dynamic-instruction index.
    """

    __slots__ = ("dynamic_count", "frames", "cells", "valid",
                 "stack_cursor", "footprint_bytes", "outputs_len",
                 "block_counts")

    def __init__(self, dynamic_count, frames, cells, valid, stack_cursor,
                 footprint_bytes, outputs_len, block_counts):
        self.dynamic_count = dynamic_count
        self.frames = frames
        self.cells = cells
        self.valid = valid
        self.stack_cursor = stack_cursor
        self.footprint_bytes = footprint_bytes
        self.outputs_len = outputs_len
        self.block_counts = block_counts

    def approx_bytes(self) -> int:
        """Estimated in-memory size (containers + boxed entries)."""
        total = (
            sys.getsizeof(self.cells) + sys.getsizeof(self.valid)
            + sys.getsizeof(self.block_counts)
            + _ENTRY_BYTES * (2 * len(self.cells) + len(self.valid)
                              + len(self.block_counts))
        )
        for frame in self.frames:
            total += (
                sys.getsizeof(frame.slots) + sys.getsizeof(frame.allocas)
                + sys.getsizeof(frame.owned)
                + _ENTRY_BYTES * (len(frame.slots) + 2 * len(frame.allocas)
                                  + len(frame.owned))
            )
        return total


class GoldenCapture:
    """The product of one instrumented golden run: result + snapshots.

    Tied to the :class:`~repro.interp.engine.ExecutionEngine` that
    captured it (snapshots reference its compiled blocks), so a capture
    is a per-process, per-engine object — campaign workers each build
    their own from their own golden pass and then share it read-only
    across every trial they execute.
    """

    __slots__ = ("engine", "result", "snapshots", "stride", "total_bytes")

    def __init__(self, engine, result, snapshots, stride):
        self.engine = engine
        self.result = result
        self.snapshots = snapshots
        self.stride = stride
        self.total_bytes = sum(s.approx_bytes() for s in snapshots)

    # -- occurrence accounting ----------------------------------------

    def prefix_occurrence(self, snapshot: Snapshot, iid: int) -> int:
        """Completed executions of instruction ``iid`` before ``snapshot``.

        Base count: the home block's entry in the snapshot's
        ``block_counts`` (incremented when a block iteration *starts*).
        Correction: every suspended mid-block frame sitting in the home
        block at a step index <= the instruction's position represents
        a started iteration that has **not** yet produced this
        instruction's result — including the suspended call itself.
        The innermost frame is excluded: its pending block iteration is
        not counted in ``block_counts`` at the capture point.
        """
        home = self.engine.instruction_home(iid)
        if home is None:
            return 0
        block, position = home
        count = snapshot.block_counts[self.engine.block_ordinal(block)]
        frames = snapshot.frames
        for index in range(len(frames) - 1):
            frame = frames[index]
            if frame.cblock.block is block and position >= frame.step_index:
                count -= 1
        return count

    def snapshot_for(self, injection) -> Snapshot | None:
        """Latest snapshot strictly before the injection's dynamic point.

        A snapshot is usable iff the armed occurrence has not completed
        yet (``prefix_occurrence < occurrence``).  Completed-execution
        counts are monotone over the golden run, so a binary search over
        the capture schedule finds the rightmost usable snapshot; None
        means the injection fires before the first snapshot (the trial
        then runs cold from ``main``).
        """
        if self.engine.instruction_home(injection.iid) is None:
            return None
        snapshots = self.snapshots
        lo, hi = 0, len(snapshots)
        while lo < hi:
            mid = (lo + hi) // 2
            if (self.prefix_occurrence(snapshots[mid], injection.iid)
                    < injection.occurrence):
                lo = mid + 1
            else:
                hi = mid
        return snapshots[lo - 1] if lo else None

    # -- forking -------------------------------------------------------

    def resume(self, snapshot: Snapshot, injection=None,
               budget: int | None = None):
        """Execute the suffix from ``snapshot`` (optionally with a fault).

        Returns a :class:`~repro.interp.result.RunResult` identical to a
        cold ``engine.run(injection)`` whenever the injection point lies
        at-or-after the snapshot — the contract the differential tests
        in ``tests/fi/test_checkpoint.py`` lock in.
        """
        return self.engine.resume_run(self, snapshot, injection, budget)
