"""Runtime error taxonomy for the interpreter.

These map one-to-one onto the failure classes of the paper's fault model:
crashes (hardware trap / OS kill), hangs (execution budget exceeded), and
detections (a protection check fired).
"""

from __future__ import annotations


class RuntimeFault(Exception):
    """Base class for faults raised while interpreting a program."""


class MemoryFault(RuntimeFault):
    """Out-of-bounds or misaligned memory access: the program crashes."""

    def __init__(self, address: int, kind: str):
        super().__init__(f"{kind} at invalid address {address:#x}")
        self.address = address
        self.kind = kind


class ArithmeticTrap(RuntimeFault):
    """Integer division by zero or signed overflow trap (SIGFPE)."""


class HangFault(RuntimeFault):
    """The dynamic instruction budget was exceeded."""

    def __init__(self, executed: int):
        super().__init__(f"dynamic instruction budget exceeded ({executed})")
        self.executed = executed


class StackOverflow(RuntimeFault):
    """Call depth exceeded the stack limit."""


class DetectionTrap(RuntimeFault):
    """A duplication check (detect instruction) observed a mismatch."""


class InterpreterBug(RuntimeError):
    """Internal invariant violation — a bug in this library, not a fault."""
