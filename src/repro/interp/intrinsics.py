"""Math intrinsics callable from IR without a module-level definition.

Domain errors follow C semantics (NaN / infinities) instead of raising,
so that corrupted inputs keep executing rather than killing the
interpreter — a soft error reaching ``sqrt`` of a negative number yields
NaN, which then propagates through the data flow like it would natively.
"""

from __future__ import annotations

import math

from ..ir.bitutils import truncate_float
from ..ir.types import FloatType, Type


def _guard(fn, *args) -> float:
    try:
        return fn(*args)
    except ValueError:
        return math.nan
    except OverflowError:
        return math.inf


def _sqrt(x: float) -> float:
    return _guard(math.sqrt, x) if x >= 0 or math.isnan(x) else math.nan


def _log(x: float) -> float:
    if x > 0:
        return _guard(math.log, x)
    if x == 0:
        return -math.inf
    return math.nan


def _exp(x: float) -> float:
    return _guard(math.exp, x)


def _pow(x: float, y: float) -> float:
    return _guard(math.pow, x, y)


INTRINSICS = {
    "sqrt": _sqrt,
    "exp": _exp,
    "log": _log,
    "sin": lambda x: _guard(math.sin, x),
    "cos": lambda x: _guard(math.cos, x),
    "fabs": lambda x: abs(x),
    "pow": _pow,
    "floor": lambda x: _guard(math.floor, x) if math.isfinite(x) else x,
    "ceil": lambda x: _guard(math.ceil, x) if math.isfinite(x) else x,
}


def call_intrinsic(name: str, args, result_type: Type):
    """Invoke an intrinsic, rounding the result to the target FP width."""
    fn = INTRINSICS[name]
    result = fn(*[float(a) for a in args])
    if isinstance(result_type, FloatType):
        return truncate_float(float(result), result_type)
    return result


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS
