"""Segmented memory model.

Memory is a flat 64-bit address space with two segments: a data segment
holding module globals (laid out once per module) and a stack segment
grown per call frame.  Validity is tracked per *element address*: a load
or store is legal only at the exact addresses handed out by allocations.
Anything else — including addresses produced by corrupted pointer bits —
raises :class:`MemoryFault`, which the fault injector classifies as a
crash.  This matches the paper's crash model (reads/writes outside the
program's memory segments, approximated there from /proc memory maps).
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.types import Type
from .errors import MemoryFault

#: Segment bases.  Chosen so that single-bit flips of a valid address are
#: overwhelmingly out of segment, like real sparse address spaces.
GLOBAL_BASE = 0x0000_0000_0001_0000
STACK_BASE = 0x0000_7FFF_0000_0000


class GlobalLayout:
    """Per-module, immutable placement of globals in the data segment."""

    def __init__(self, module: Module):
        self.addresses: dict[str, int] = {}
        self.init_cells: list[tuple[int, object]] = []
        self.valid_addresses: list[int] = []
        self.elem_types: dict[int, Type] = {}
        cursor = GLOBAL_BASE
        for global_var in module.globals.values():
            elem_size = global_var.elem_type.size_bytes
            self.addresses[global_var.name] = cursor
            for index, value in enumerate(global_var.initializer):
                address = cursor + index * elem_size
                self.valid_addresses.append(address)
                if global_var.elem_type.is_float:
                    self.init_cells.append((address, float(value)))
                else:
                    self.init_cells.append((address, int(value)))
            cursor += global_var.count * elem_size
            # Pad between globals so a small index overflow of one array
            # does not silently land in the next one.
            cursor += 64
        self.end = cursor

    @property
    def total_bytes(self) -> int:
        return self.end - GLOBAL_BASE


class MemoryState:
    """Mutable per-run memory: cells, validity set, and a stack pointer."""

    __slots__ = ("cells", "valid", "stack_cursor", "footprint_bytes")

    def __init__(self, layout: GlobalLayout):
        self.cells: dict[int, object] = dict(layout.init_cells)
        self.valid: set[int] = set(layout.valid_addresses)
        self.stack_cursor = STACK_BASE
        self.footprint_bytes = layout.total_bytes

    @classmethod
    def restored(cls, cells: dict, valid: set, stack_cursor: int,
                 footprint_bytes: int) -> "MemoryState":
        """Rebuild a run-ready memory image from snapshot fields.

        The caller must pass private copies: snapshots are immutable
        and shared across fault-injection trials, so every restore
        materializes its own cells/valid before mutating them.
        """
        memory = cls.__new__(cls)
        memory.cells = cells
        memory.valid = valid
        memory.stack_cursor = stack_cursor
        memory.footprint_bytes = footprint_bytes
        return memory

    # -- allocation -----------------------------------------------------------

    def allocate_stack(self, count: int, elem_size: int) -> tuple[int, list[int]]:
        """Reserve a stack array; returns (base address, element addresses)."""
        base = self.stack_cursor
        addresses = [base + i * elem_size for i in range(count)]
        self.valid.update(addresses)
        size = count * elem_size
        self.stack_cursor += size + 16  # pad slots apart
        self.footprint_bytes += size
        return base, addresses

    def free(self, addresses: list[int]) -> None:
        """Release stack addresses when a frame is popped."""
        for address in addresses:
            self.valid.discard(address)
            self.cells.pop(address, None)

    # -- access ------------------------------------------------------------------

    def load(self, address: int, default):
        if address not in self.valid:
            raise MemoryFault(address, "load")
        return self.cells.get(address, default)

    def store(self, address: int, value) -> None:
        if address not in self.valid:
            raise MemoryFault(address, "store")
        self.cells[address] = value

    def is_valid(self, address: int) -> bool:
        return address in self.valid
