"""Value semantics of the mini-IR, shared by the fast engine, the
profiling interpreter, and the model's tuple derivations.

Integers are kept in canonical unsigned two's-complement form for their
width; floats are Python floats (f32 results are rounded to single
precision after every operation).
"""

from __future__ import annotations

import math

from ..ir.bitutils import (
    from_signed,
    mask,
    to_signed,
    truncate_float,
)
from ..ir.types import FloatType, IntType, PointerType, Type
from .errors import ArithmeticTrap


# ---------------------------------------------------------------------------
# Integer binary operations
# ---------------------------------------------------------------------------

def eval_int_binop(op: str, a: int, b: int, bits: int) -> int:
    """Evaluate an integer binop on canonical unsigned operands."""
    if op == "add":
        return (a + b) & mask(bits)
    if op == "sub":
        return (a - b) & mask(bits)
    if op == "mul":
        return (a * b) & mask(bits)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b % bits)) & mask(bits)
    if op == "lshr":
        return a >> (b % bits)
    if op == "ashr":
        return from_signed(to_signed(a, bits) >> (b % bits), bits)
    if op == "sdiv":
        sa, sb = to_signed(a, bits), to_signed(b, bits)
        if sb == 0:
            raise ArithmeticTrap("signed division by zero")
        if sa == -(1 << (bits - 1)) and sb == -1:
            raise ArithmeticTrap("signed division overflow")
        return from_signed(int(_c_div(sa, sb)), bits)
    if op == "udiv":
        if b == 0:
            raise ArithmeticTrap("unsigned division by zero")
        return a // b
    if op == "srem":
        sa, sb = to_signed(a, bits), to_signed(b, bits)
        if sb == 0:
            raise ArithmeticTrap("signed remainder by zero")
        return from_signed(sa - _c_div(sa, sb) * sb, bits)
    if op == "urem":
        if b == 0:
            raise ArithmeticTrap("unsigned remainder by zero")
        return a % b
    raise ValueError(f"unknown integer binop {op}")


def _c_div(a: int, b: int) -> int:
    """C-style truncating division (Python's // floors)."""
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


# ---------------------------------------------------------------------------
# Floating point binary operations
# ---------------------------------------------------------------------------

def eval_float_binop(op: str, a: float, b: float, bits: int) -> float:
    if op == "fadd":
        result = a + b
    elif op == "fsub":
        result = a - b
    elif op == "fmul":
        result = a * b
    elif op == "fdiv":
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                result = math.nan
            else:
                result = math.copysign(math.inf, a) * math.copysign(1.0, b)
        else:
            result = a / b
    elif op == "frem":
        result = math.fmod(a, b) if b != 0.0 else math.nan
    else:
        raise ValueError(f"unknown float binop {op}")
    if bits == 32:
        return truncate_float(result, FloatType(32))
    return result


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

def eval_icmp(pred: str, a: int, b: int, bits: int) -> int:
    if pred == "eq":
        return int(a == b)
    if pred == "ne":
        return int(a != b)
    if pred in ("ult", "ule", "ugt", "uge"):
        if pred == "ult":
            return int(a < b)
        if pred == "ule":
            return int(a <= b)
        if pred == "ugt":
            return int(a > b)
        return int(a >= b)
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if pred == "slt":
        return int(sa < sb)
    if pred == "sle":
        return int(sa <= sb)
    if pred == "sgt":
        return int(sa > sb)
    if pred == "sge":
        return int(sa >= sb)
    raise ValueError(f"unknown icmp predicate {pred}")


def eval_fcmp(pred: str, a: float, b: float) -> int:
    if math.isnan(a) or math.isnan(b):
        return 0  # ordered comparisons are false on NaN
    if pred == "oeq":
        return int(a == b)
    if pred == "one":
        return int(a != b)
    if pred == "olt":
        return int(a < b)
    if pred == "ole":
        return int(a <= b)
    if pred == "ogt":
        return int(a > b)
    if pred == "oge":
        return int(a >= b)
    raise ValueError(f"unknown fcmp predicate {pred}")


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------

def eval_cast(op: str, value, from_type: Type, to_type: Type):
    if op == "trunc":
        return int(value) & mask(to_type.bits)
    if op == "zext":
        return int(value)
    if op == "sext":
        return from_signed(to_signed(int(value), from_type.bits), to_type.bits)
    if op == "fptrunc" or op == "fpext":
        return truncate_float(float(value), to_type)
    if op == "sitofp":
        result = float(to_signed(int(value), from_type.bits))
        return truncate_float(result, to_type)
    if op == "uitofp":
        return truncate_float(float(int(value)), to_type)
    if op in ("fptosi", "fptoui"):
        return _float_to_int(float(value), to_type, signed=(op == "fptosi"))
    if op == "bitcast":
        return value
    raise ValueError(f"unknown cast {op}")


def _float_to_int(value: float, to_type: IntType, signed: bool) -> int:
    """Saturating float-to-int (LLVM leaves this UB; we saturate)."""
    if math.isnan(value):
        return 0
    if signed:
        low, high = to_type.min_signed, to_type.max_signed
    else:
        low, high = 0, to_type.max_unsigned
    if value <= low:
        clamped = low
    elif value >= high:
        clamped = high
    else:
        clamped = int(value)  # trunc toward zero
    return from_signed(clamped, to_type.bits) if signed else clamped


# ---------------------------------------------------------------------------
# Output formatting (printf stand-in)
# ---------------------------------------------------------------------------

def format_output(value, value_type: Type, precision: int | None) -> str:
    """Render an output value the way the program's printf would."""
    if isinstance(value_type, IntType):
        return str(to_signed(int(value), value_type.bits))
    if isinstance(value_type, FloatType):
        digits = precision if precision is not None else 17
        return f"%.{digits}g" % float(value)
    if isinstance(value_type, PointerType):
        return f"{int(value):#x}"
    raise ValueError(f"cannot output a {value_type} value")


def default_value(value_type: Type):
    """Zero value of a type (uninitialized memory reads as zero)."""
    return 0.0 if value_type.is_float else 0


def reinterpret_loaded(value, value_type: Type):
    """Coerce a memory cell value to the loading instruction's type.

    In fault-free execution every load reads a cell of its own type, but
    a corrupted address can land on a cell of a different type or width;
    real hardware would reinterpret the raw bytes, and so do we.
    """
    from ..ir.bitutils import bits_to_float, float_to_bits

    if isinstance(value_type, FloatType):
        if isinstance(value, float):
            return value
        return bits_to_float(int(value) & mask(value_type.bits),
                             value_type.bits)
    if isinstance(value, float):
        return float_to_bits(value, 64) & mask(value_type.bits)
    return int(value) & mask(value_type.bits)
