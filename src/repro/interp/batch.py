"""Batch execution tier: N fault-injection trials in numpy lockstep.

Campaign trials of one module share almost all of their execution: every
trial replays the golden prefix up to its injection point, and most
faults corrupt a value without (immediately) changing control flow.  The
batch tier exploits both facts by running a *group* of trials as one
lockstep execution with one lane per trial:

* **Shared control flow.**  The group maintains a single frame stack,
  block counters, dynamic-instruction count and memory image.  A slot
  (or memory cell) holds a plain Python scalar while its value is
  uniform across lanes — the dominant case, paid for once per group —
  and becomes a numpy array of per-lane values once any lane diverges.
  Straight-line arithmetic over diverged values executes as vectorized
  numpy ops over all lanes at once.

* **Per-lane faults.**  Each lane arms its own :class:`Injection`;
  occurrence bookkeeping runs per lane, and the armed occurrence flips
  one bit in that lane's component only (promoting the value to an
  array on first divergence).

* **Divergence park-and-remerge (SIMT reconvergence).**  Lockstep
  requires uniform control flow.  A per-lane trap (division, memory
  fault, detector) finishes that lane in place with its outcome.  A
  conditional branch whose condition differs across lanes reconverges
  at the branch's immediate post-dominator
  (:func:`repro.analysis.postdominators`, cached per function): each
  side runs as a masked *sub-run* against a private frame clone and a
  masked memory view, accounting per-lane dynamic-count/block-count
  deltas, and *parks* when it reaches the reconvergence block; the
  group then re-merges the surviving lanes' slots and resumes lockstep
  (see DESIGN.md §12 for the mask-stack protocol and merge rules).

* **Drain fallback.**  When reconvergence is unsafe or impossible —
  no post-dominator inside the function (an arm returns, or spins
  without an exit), an alloca anywhere in the divergent region
  (``MemoryState.free`` never rolls back the stack cursor, so merged
  lanes would disagree on future alloca addresses), or the mask stack
  at its depth cap — minority lanes are *peeled* the PR-6 way: each
  lane's scalar state is materialized as a standard checkpoint
  :class:`~repro.interp.checkpoint.Snapshot` and drained to completion
  on the scalar codegen tier via
  :meth:`~repro.interp.engine.ExecutionEngine.resume_snapshot`.
  ``REPRO_BATCH_RECONVERGE=0`` forces this path everywhere.  Either
  way no count is ever lost — every lane produces exactly the
  :class:`~repro.interp.result.RunResult` its scalar run would have.

Semantics discipline (see DESIGN.md §10): numpy dtypes never leak.
Integers live in uint64 arrays (canonical unsigned form of any width;
uint64 arithmetic wraps mod 2^64, then masks to the type width exactly
like the scalar tier's ``& mask(bits)``); floats live in float64 arrays
(f32 results round through ``astype(float32)``, which is the same
round-to-nearest-even as ``truncate_float``).  Everything trap-raising
or conversion-sensitive (div/rem, casts, ``frem``, intrinsics, output
formatting, load reinterpretation) runs per-lane through the *exact*
helpers of :mod:`repro.interp.ops`, and any value extracted from a lane
is coerced back to a plain Python ``int``/``float`` first.
"""

from __future__ import annotations

from ..analysis.dominators import VIRTUAL_EXIT
from ..core.env import env_flag
from ..ir.bitutils import flip_bit_typed, mask, to_signed
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Output,
    Ret,
    Select,
    Store,
)
from .checkpoint import FrameSnap, Snapshot, merge_block_counts
from .engine import _T_CBR, _T_JUMP, _Frame
from .errors import (
    ArithmeticTrap,
    DetectionTrap,
    HangFault,
    InterpreterBug,
    MemoryFault,
    StackOverflow,
)
from .intrinsics import call_intrinsic, is_intrinsic
from .memory import MemoryState
from .ops import (
    default_value,
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
    format_output,
    reinterpret_loaded,
)
from .result import CRASH, DETECTED, HANG, OK, RunResult

try:  # numpy ships with the dev extras, not the (empty) base deps
    import numpy as np

    HAVE_NUMPY = True
    _ND = np.ndarray
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None
    HAVE_NUMPY = False

    class _ND:  # placeholder: `type(x) is _ND` is then always False
        pass


_MASK64 = mask(64)

#: Lane count used when the batch tier is selected without an explicit
#: ``--batch-lanes``; large enough to amortize lockstep dispatch, small
#: enough that divergence drains stay short.
DEFAULT_BATCH_LANES = 16

#: Sentinel for "this lane's cell does not exist" inside object-dtype
#: memory arrays (a scalar run would have no entry in ``cells`` at all).
_MISSING = object()

#: Sentinel for "this lane did not emit this output entry": inside a
#: reconvergence side only the active lanes append, so shared output
#: entries need a hole the per-lane extraction can skip.
_NO_OUT = object()

#: Memoization slot for "reconvergence info not computed yet".
_UNSET = object()

#: Nested reconvergence splits beyond this depth fall back to the
#: scalar drain.  Loop-exit divergence re-splits once per departing
#: wave of lanes, so the cap bounds recursion without capping the
#: common one-or-two-deep diamond case.
_MAX_MASK_DEPTH = 24

#: Tail-drain divisor: once a parked re-split leaves at most
#: ``lanes // _TAIL_DIV`` lanes still running, the stragglers are
#: peeled to the scalar drain instead of paying full-width masked
#: overhead per op.
_TAIL_DIV = 8


class _AllLanesDone(Exception):
    """Internal unwind signal: every lane of the group has a result."""


def _lane_value(value, lane: int):
    """Extract one lane's component as a plain Python value."""
    if type(value) is _ND:
        kind = value.dtype.kind
        if kind == "f":
            return float(value[lane])
        if kind in ("u", "i"):
            return int(value[lane])
        return value[lane]  # object arrays hold Python values (or _MISSING)
    return value


def _lane_array(lanes: int, value_type):
    """Fresh per-lane result array of a register type's dtype."""
    if value_type.is_float:
        return np.zeros(lanes, dtype=np.float64)
    return np.zeros(lanes, dtype=np.uint64)


def _promote(value, lanes: int, value_type):
    """Broadcast a uniform scalar into a fresh per-lane array."""
    if value_type.is_float:
        return np.full(lanes, value, dtype=np.float64)
    return np.full(lanes, value, dtype=np.uint64)


def _object_copy(value, lanes: int):
    """Copy a cell value into a fresh object array of Python values."""
    out = np.empty(lanes, dtype=object)
    if type(value) is _ND:
        if value.dtype.kind == "O":
            out[:] = value
        else:
            out[:] = value.tolist()  # numpy scalars -> Python ints/floats
    else:
        out[:] = [value] * lanes
    return out


def _signed_vec(value, bits: int):
    """Canonical-unsigned lanes -> signed values (int64 array)."""
    if type(value) is not _ND:
        return to_signed(value, bits)
    if bits == 64:
        return value.astype(np.int64)  # same-width reinterpret
    signed = value.astype(np.int64)
    sign_bit = 1 << (bits - 1)
    return np.where(value >= sign_bit, signed - (1 << bits), signed)


def _sext64_vec(value, bits: int):
    """Sign-extend canonical lanes to 64-bit in the uint64 wrap domain."""
    if bits == 64:
        return value
    if value.dtype.kind == "u":
        # Branchless: xor moves the sign bit to a bias, the subtraction
        # wraps mod 2^64 — negatives land on ``value | high`` exactly.
        sign_bit = np.uint64(1 << (bits - 1))
        return (value ^ sign_bit) - sign_bit
    sign_bit = 1 << (bits - 1)
    high = (~mask(bits)) & _MASK64
    return np.where((value & sign_bit) != 0, value | high, value)


def _int_vector_op(op: str, bits: int):
    """Vectorized integer binop over uint64 lanes, or None if the op
    must run per-lane (division/remainder can trap per lane)."""
    bit_mask = mask(bits)
    if op == "add":
        return lambda a, b: (a + b) & bit_mask
    if op == "sub":
        return lambda a, b: (a - b) & bit_mask
    if op == "mul":
        return lambda a, b: (a * b) & bit_mask
    if op == "and":
        return lambda a, b: a & b
    if op == "or":
        return lambda a, b: a | b
    if op == "xor":
        return lambda a, b: a ^ b
    if op == "shl":
        return lambda a, b: (a << (b % bits)) & bit_mask
    if op == "lshr":
        return lambda a, b: a >> (b % bits)
    if op == "ashr":
        def ashr(a, b):
            shift = b % bits
            if type(shift) is _ND:
                # int64 shift counts: a uniform negative dividend must
                # not meet a uint64 array under NEP 50 promotion.
                shift = shift.astype(np.int64)
            shifted = np.right_shift(_signed_vec(a, bits), shift)
            return shifted.astype(np.uint64) & np.uint64(bit_mask)
        return ashr
    return None  # sdiv/udiv/srem/urem: per-lane, trap-capable


def _float_vector_op(op: str, bits: int):
    """Vectorized float binop over float64 lanes, or None (frem runs
    per-lane through ``eval_float_binop`` for exact fmod parity)."""
    if op == "fadd":
        base = lambda a, b: a + b
    elif op == "fsub":
        base = lambda a, b: a - b
    elif op == "fmul":
        base = lambda a, b: a * b
    elif op == "fdiv":
        # IEEE division: numpy's inf/nan specials coincide case-by-case
        # with eval_float_binop's explicit zero-divisor handling.
        base = lambda a, b: np.divide(a, b)
    else:
        return None
    if bits == 32:
        def rounded(a, b):
            return base(a, b).astype(np.float32).astype(np.float64)
        return rounded
    return base


def _icmp_vector(pred: str, bits: int):
    if pred == "eq":
        return lambda a, b: a == b
    if pred == "ne":
        return lambda a, b: a != b
    if pred == "ult":
        return lambda a, b: a < b
    if pred == "ule":
        return lambda a, b: a <= b
    if pred == "ugt":
        return lambda a, b: a > b
    if pred == "uge":
        return lambda a, b: a >= b
    signed = {
        "slt": lambda a, b: a < b,
        "sle": lambda a, b: a <= b,
        "sgt": lambda a, b: a > b,
        "sge": lambda a, b: a >= b,
    }[pred]
    # Signed order in the canonical-unsigned domain: flipping the sign
    # bit is an order-preserving map from signed onto unsigned, so one
    # xor per operand replaces the widen-and-rebias of ``_signed_vec``.
    bias = np.uint64(1 << (bits - 1))
    return lambda a, b: signed(a ^ bias, b ^ bias)


def _fcmp_vector(pred: str):
    # numpy comparisons are already false on NaN, matching eval_fcmp's
    # ordered semantics — except "one", which needs the NaN mask spelled
    # out (NaN != x is True elementwise).
    if pred == "oeq":
        return lambda a, b: a == b
    if pred == "one":
        return lambda a, b: (a != b) & ~np.isnan(a) & ~np.isnan(b)
    if pred == "olt":
        return lambda a, b: a < b
    if pred == "ole":
        return lambda a, b: a <= b
    if pred == "ogt":
        return lambda a, b: a > b
    if pred == "oge":
        return lambda a, b: a >= b
    return None


class _MaskedMemory(MemoryState):
    """One reconvergence side's view of the group's shared memory.

    Shares the ``cells``/``valid`` dicts with the real image (loads pass
    straight through); a *uniform-address* store merges only the active
    lanes' components, so the parked side's writes survive untouched.
    Divergent-address stores already scatter per active lane through
    object cells and need no override.  Stack allocation is statically
    precluded inside reconvergence regions (``_compute_reconv``); the
    override here is the backstop that turns a screening bug into a
    loud :class:`InterpreterBug` instead of silent count corruption.
    """

    __slots__ = ("_sim",)

    def __init__(self, shared: MemoryState, sim):
        self.cells = shared.cells
        self.valid = shared.valid
        self.stack_cursor = shared.stack_cursor
        self.footprint_bytes = shared.footprint_bytes
        self._sim = sim

    def allocate_stack(self, count: int, elem_size: int):
        raise InterpreterBug(
            "alloca inside a reconvergence side (region screening bug)"
        )

    def store(self, address: int, value) -> None:
        if address not in self.valid:
            raise MemoryFault(address, "store")
        sim = self._sim
        lanes = sim.lanes
        active_list = sim.active_list
        cells = self.cells
        old = cells.get(address, _MISSING)
        if type(old) is not _ND:
            # No-op store fast path (ints only: 0.0 == -0.0 yet they
            # differ bitwise, so floats always take the merge path).
            if type(value) is not _ND and type(old) is type(value) \
                    and old == value and value.__class__ is not float:
                return
            # Promote a uniform scalar cell straight to a *numeric*
            # lane array when the kinds line up: object cells would
            # push every later load onto the per-lane coercion path.
            if old.__class__ is float and (
                value.dtype.kind == "f" if type(value) is _ND
                else value.__class__ is float
            ):
                merged = np.full(lanes, old, dtype=np.float64)
            elif old.__class__ is int and 0 <= old <= _MASK64 and (
                value.dtype.kind == "u" if type(value) is _ND
                else value.__class__ is int and 0 <= value <= _MASK64
            ):
                merged = np.full(lanes, old, dtype=np.uint64)
            else:
                merged = _object_copy(old, lanes)
        elif old.dtype.kind == "O":
            merged = old.copy()
        elif type(value) is _ND and value.dtype == old.dtype:
            merged = old.copy()
        elif type(value) is not _ND and (
            (old.dtype.kind == "f") == (value.__class__ is float)
        ):
            merged = old.copy()
        else:
            merged = _object_copy(old, lanes)
        if merged.dtype.kind == "O":
            for lane in active_list:
                merged[lane] = _lane_value(value, lane)
        elif type(value) is _ND:
            mask = sim.active_mask
            merged[mask] = value[mask]
        else:
            merged[sim.active_mask] = value
        cells[address] = merged


class _GroupState:
    """Mutable state of one lockstep group (mirrors engine._State)."""

    __slots__ = (
        "lanes", "live", "live_mask", "live_list", "n_live", "memory",
        "outputs", "dynamic_count", "budget", "block_counts", "armed",
        "inject_occurrence", "inject_bit", "occurrence", "activated",
        "injections", "records", "call_depth", "results", "divergences",
        "drain_executed", "active", "active_mask", "active_list",
        "n_active", "mask_depth", "dyn_delta", "block_delta", "max_delta",
        "pending_cost", "pending_blocks", "active_peak",
        "side_executed", "reconverged", "drains", "just_merged",
    )

    def __init__(self, lanes: int, budget: int):
        self.lanes = lanes
        self.live = [True] * lanes
        #: Same predicate three ways, each serving a different access
        #: pattern: per-lane checks (list), vectorized branch partition
        #: (bool array), and sparse iteration once lanes start exiting.
        self.live_mask = np.ones(lanes, dtype=bool)
        self.live_list = list(range(lanes))
        self.n_live = lanes
        #: The *active* set is the mask-stack top: the lanes currently
        #: executing.  At depth 0 it equals the live set; inside a
        #: reconvergence side it is that side's surviving lanes.  All
        #: per-lane iteration in the step closures runs over it.
        self.active = [True] * lanes
        self.active_mask = np.ones(lanes, dtype=bool)
        self.active_list = list(range(lanes))
        self.n_active = lanes
        self.mask_depth = 0
        #: Per-lane divergence deltas, preallocated once per group (no
        #: per-step allocation): a lane's true dynamic count is
        #: ``dynamic_count + dyn_delta[lane]``; its block counts are the
        #: shared dense array plus its ``block_delta`` segment list
        #: (frozen side dicts, shared by reference).
        self.dyn_delta = np.zeros(lanes, dtype=np.int64)
        self.block_delta: list = [None] * lanes
        self.max_delta = 0
        #: Side-uniform accounting not yet applied per lane: every block
        #: a side executes costs the *same* for all of its still-active
        #: lanes, so the hot path accrues one scalar cost and one sparse
        #: block dict (O(1) per block) and flushes them onto
        #: ``dyn_delta``/``block_delta`` only when the active set is
        #: about to change (lane finish, peel, nested split, park).
        #: ``active_peak`` caches max(dyn_delta[active]) so the budget
        #: probe stays scalar.
        self.pending_cost = 0
        self.pending_blocks: dict[int, int] = {}
        self.active_peak = 0
        self.side_executed = 0
        self.memory = None
        self.outputs: list = []
        self.dynamic_count = 0
        self.budget = budget
        self.block_counts: list[int] = []
        #: iid -> lanes armed on it (occurrence bookkeeping per lane).
        self.armed: dict[int, list[int]] = {}
        self.inject_occurrence = [0] * lanes
        self.inject_bit = [0] * lanes
        self.occurrence = [0] * lanes
        self.activated = [False] * lanes
        self.injections: list = [None] * lanes
        #: Shadow stack of [compiled, frame, cblock, previous, step_index]
        #: records (same shape as the capture pass), so any lane can be
        #: materialized as a checkpoint Snapshot at a block boundary.
        self.records: list = []
        self.call_depth = 0
        self.results: list = [None] * lanes
        self.divergences = 0
        self.drain_executed = 0
        self.reconverged = 0
        self.drains = 0
        self.just_merged = False


class GroupOutcome:
    """Per-lane results plus the group's throughput accounting."""

    __slots__ = ("results", "divergences", "executed", "skipped",
                 "reconverged", "drains", "drain_executed")

    def __init__(self, results, divergences, executed, skipped,
                 reconverged=0, drains=0, drain_executed=0):
        self.results = results
        self.divergences = divergences
        self.executed = executed
        self.skipped = skipped
        self.reconverged = reconverged
        self.drains = drains
        self.drain_executed = drain_executed


class BatchRunner:
    """Lockstep executor for groups of trials on one engine.

    Reuses the engine's compiled representation (blocks, operand fetch
    closures, phi-move tables, terminators) and compiles one extra
    *batch step* per instruction, lazily and once per engine: a closure
    with a scalar fast path for uniform operands and numpy paths for
    diverged ones.  Construction requires numpy.
    """

    def __init__(self, engine):
        if not HAVE_NUMPY:
            raise InterpreterBug("batch tier requires numpy")
        self.engine = engine
        self._bsteps: dict[int, list] = {}
        #: Reconvergence on divergent branches (park-and-remerge) vs the
        #: PR-6 peel-and-drain everywhere.  The env knob exists for the
        #: CI differential (both modes must be bit-identical to scalar)
        #: and as an operational escape hatch.
        self.reconverge = env_flag("REPRO_BATCH_RECONVERGE", True)
        #: id(branch cblock) -> reconvergence target cblock | None.
        self._reconv: dict[int, object] = {}
        #: function name -> is its whole call tree alloca-free?
        self._allocfree_memo: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Reconvergence targets
    # ------------------------------------------------------------------

    def _reconv_target(self, compiled, cblock):
        """The branch's reconvergence cblock, or None to force a drain.

        Memoized per branch block; the underlying immediate
        post-dominator map is cached per function in the module's
        shared :class:`AnalysisManager` (``ipostdominators``).
        """
        key = id(cblock)
        info = self._reconv.get(key, _UNSET)
        if info is _UNSET:
            info = self._compute_reconv(compiled, cblock)
            self._reconv[key] = info
        return info

    def _compute_reconv(self, compiled, cblock):
        target = self.engine.analyses.ipostdominators(
            compiled.function
        ).get(cblock.block)
        if target is None or target is VIRTUAL_EXIT:
            # Function-boundary divergence: an arm returns (or never
            # reaches an exit), so there is no in-function park point.
            return None
        # The divergent region: every block reachable from either
        # successor without passing through the target.  Reject regions
        # that allocate stack memory (directly or via any callee):
        # MemoryState.free never rolls the stack cursor back, so lanes
        # taking different arms would disagree on every later alloca
        # address — those branches keep the scalar drain.
        region = set()
        work = list(cblock.block.successors)
        while work:
            block = work.pop()
            if block is target or block in region:
                continue
            region.add(block)
            work.extend(block.successors)
        functions = self.engine.module.functions
        for block in region:
            for inst in block.instructions:
                if isinstance(inst, Alloca):
                    return None
                if isinstance(inst, Ret):
                    # Unreachable if the post-dominator analysis holds;
                    # kept as a cheap belt-and-braces screen.
                    return None
                if isinstance(inst, Call) and inst.callee in functions \
                        and not self._allocfree(inst.callee):
                    return None
        return compiled.blocks[target]

    def _allocfree(self, name: str) -> bool:
        """Is ``name``'s entire call tree free of allocas?  Conservative
        on recursion: an in-progress function counts as allocating."""
        memo = self._allocfree_memo
        cached = memo.get(name)
        if cached is not None:
            return cached
        memo[name] = False  # cycle guard / conservative default
        function = self.engine.module.functions.get(name)
        if function is None:
            return False
        functions = self.engine.module.functions
        for inst in function.instructions():
            if isinstance(inst, Alloca):
                return False
            if isinstance(inst, Call) and inst.callee in functions \
                    and not self._allocfree(inst.callee):
                return False
        memo[name] = True
        return True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_group(self, trials, snapshot: Snapshot | None = None,
                  base_outputs=None, occurrences=None,
                  budget: int | None = None) -> GroupOutcome:
        """Execute one group of trials in lockstep.

        ``trials[i]`` is the :class:`Injection` for lane ``i`` (or None
        for a fault-free lane).  With ``snapshot`` the whole group
        restores from one golden-prefix checkpoint; ``occurrences[i]``
        must then carry ``prefix_occurrence(snapshot, iid_i)`` and
        ``base_outputs`` the golden outputs as of the snapshot — the
        same seeding the scalar resume path uses.
        """
        engine = self.engine
        lanes = len(trials)
        if lanes < 1:
            raise ValueError("batch group needs at least one lane")
        sim = _GroupState(lanes, budget or engine.max_dynamic)
        for lane, injection in enumerate(trials):
            if injection is None:
                continue
            target = engine.module.instruction(injection.iid)
            if not target.has_result:
                raise ValueError(
                    f"instruction #{injection.iid} has no destination register"
                )
            if not 0 <= injection.bit < target.type.bits:
                raise ValueError(
                    f"bit {injection.bit} out of range for {target.type}"
                )
            sim.injections[lane] = injection
            sim.armed.setdefault(injection.iid, []).append(lane)
            sim.inject_occurrence[lane] = injection.occurrence
            sim.inject_bit[lane] = injection.bit
            if occurrences is not None:
                sim.occurrence[lane] = occurrences[lane]
        if snapshot is not None:
            sim.memory = MemoryState.restored(
                dict(snapshot.cells), set(snapshot.valid),
                snapshot.stack_cursor, snapshot.footprint_bytes,
            )
            sim.dynamic_count = snapshot.dynamic_count
            sim.block_counts = list(snapshot.block_counts)
            sim.outputs = list(base_outputs) if base_outputs else []
        else:
            sim.memory = MemoryState(engine.layout)
            sim.block_counts = [0] * engine._n_blocks

        start_count = sim.dynamic_count
        with np.errstate(all="ignore"):
            try:
                if snapshot is None:
                    self._bcall(sim, engine._compiled["main"], [], -1)
                else:
                    self._bresume_frame(sim, snapshot, 0)
                self._finish_live(sim, OK, "")
            except _AllLanesDone:
                pass
            except (MemoryFault, ArithmeticTrap, StackOverflow) as fault:
                self._finish_live(sim, CRASH, str(fault))
            except HangFault as fault:
                self._finish_live(sim, HANG, str(fault))
            except DetectionTrap as fault:
                self._finish_live(sim, DETECTED, str(fault))

        executed = (
            (sim.dynamic_count - start_count)
            + sim.side_executed + sim.drain_executed
        )
        logical = sum(result.dynamic_count for result in sim.results)
        return GroupOutcome(
            sim.results, sim.divergences, executed,
            max(0, logical - executed),
            sim.reconverged, sim.drains, sim.drain_executed,
        )

    # ------------------------------------------------------------------
    # Lane lifecycle
    # ------------------------------------------------------------------

    def _lane_outputs(self, sim: _GroupState, lane: int) -> list[str]:
        out = []
        for entry in sim.outputs:
            if type(entry) is str:
                out.append(entry)
            else:
                value = entry[lane]
                if value is not _NO_OUT:
                    out.append(value)
        return out

    def _retire_lane(self, sim: _GroupState, lane: int) -> None:
        sim.live[lane] = False
        sim.live_mask[lane] = False
        sim.live_list.remove(lane)
        sim.n_live -= 1
        if sim.active[lane]:
            sim.active[lane] = False
            sim.active_mask[lane] = False
            sim.active_list.remove(lane)
            sim.n_active -= 1

    def _finish_lane(self, sim: _GroupState, lane: int, outcome: str,
                     reason: str, divergence: bool) -> None:
        if sim.pending_cost or sim.pending_blocks:
            self._flush_pending(sim)
        self._retire_lane(sim, lane)
        if divergence:
            sim.divergences += 1
        sim.results[lane] = RunResult(
            outcome=outcome,
            outputs=self._lane_outputs(sim, lane),
            dynamic_count=sim.dynamic_count + int(sim.dyn_delta[lane]),
            crash_reason=reason,
            activated=sim.activated[lane],
            block_counts=self.engine._block_counts_map(
                merge_block_counts(sim.block_counts, sim.block_delta[lane])
            ),
            footprint_bytes=sim.memory.footprint_bytes,
        )

    def _finish_live(self, sim: _GroupState, outcome: str,
                     reason: str) -> None:
        for lane in list(sim.live_list):
            self._finish_lane(sim, lane, outcome, reason, divergence=False)

    def _lane_snapshot(self, sim: _GroupState, lane: int, succ_cblock,
                       from_cblock) -> Snapshot:
        """Materialize one lane's scalar state as a checkpoint Snapshot.

        The lane resumes at the top of ``succ_cblock`` entered from
        ``from_cblock`` (phi moves pending), exactly like the innermost
        frame of a capture-pass snapshot; outer frames stay suspended at
        their recorded call steps.
        """
        records = sim.records
        last = len(records) - 1
        frames = []
        for index, (compiled, frame, cblock, previous, step) in \
                enumerate(records):
            slots = tuple(_lane_value(v, lane) for v in frame.slots)
            if index < last:
                frames.append(FrameSnap(
                    compiled, slots, dict(frame.allocas),
                    tuple(frame.owned), cblock, previous, step,
                ))
            else:
                frames.append(FrameSnap(
                    compiled, slots, dict(frame.allocas),
                    tuple(frame.owned), succ_cblock, from_cblock, -1,
                ))
        memory = sim.memory
        cells = {}
        for address, value in memory.cells.items():
            extracted = _lane_value(value, lane)
            if extracted is not _MISSING:
                cells[address] = extracted
        return Snapshot(
            dynamic_count=sim.dynamic_count + int(sim.dyn_delta[lane]),
            frames=tuple(frames),
            cells=cells,
            valid=set(memory.valid),
            stack_cursor=memory.stack_cursor,
            footprint_bytes=memory.footprint_bytes,
            outputs_len=len(sim.outputs),
            block_counts=merge_block_counts(
                sim.block_counts, sim.block_delta[lane]
            ),
        )

    def _peel_lanes(self, sim: _GroupState, lanes, succ_cblock,
                    from_cblock) -> None:
        """Drain diverged lanes on the scalar codegen tier."""
        if sim.pending_cost or sim.pending_blocks:
            self._flush_pending(sim)
        for lane in lanes:
            snapshot = self._lane_snapshot(sim, lane, succ_cblock,
                                           from_cblock)
            result = self.engine.resume_snapshot(
                snapshot, sim.injections[lane], sim.budget,
                occurrence=sim.occurrence[lane],
                outputs=self._lane_outputs(sim, lane),
                activated=sim.activated[lane],
            )
            self._retire_lane(sim, lane)
            sim.divergences += 1
            sim.drains += 1
            sim.drain_executed += (
                result.dynamic_count
                - (sim.dynamic_count + int(sim.dyn_delta[lane]))
            )
            sim.results[lane] = result

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def _binject(self, sim: _GroupState, value, value_type, lanes_armed):
        """Per-lane occurrence bookkeeping + bit flip (cf. _maybe_inject).

        Lanes whose flip has fired (and lanes that left the group) are
        disarmed in place: their occurrence count is frozen at the fire
        point, so a later peel hands the drain an exact prefix count
        while the lockstep loop stops paying for bookkeeping.
        """
        disarm = False
        for lane in lanes_armed:
            if not sim.active[lane]:
                # Inactive-but-live lanes (parked on the other side of a
                # reconvergence split) are not executing this step, so
                # their occurrence must not advance; only dead lanes
                # trigger the rebuild below.
                disarm = disarm or not sim.live[lane]
                continue
            sim.occurrence[lane] += 1
            if sim.occurrence[lane] != sim.inject_occurrence[lane]:
                continue
            sim.activated[lane] = True
            disarm = True
            if type(value) is _ND:
                value = value.copy()  # never mutate a shared array
            else:
                value = _promote(value, sim.lanes, value_type)
            value[lane] = flip_bit_typed(
                _lane_value(value, lane), sim.inject_bit[lane], value_type
            )
        if disarm:
            lanes_armed[:] = [
                lane for lane in lanes_armed
                if sim.live[lane]
                and sim.occurrence[lane] < sim.inject_occurrence[lane]
            ]
        return value

    # ------------------------------------------------------------------
    # Lockstep interpretation loop (mirrors engine._capture_loop)
    # ------------------------------------------------------------------

    def _bcall(self, sim: _GroupState, compiled, args, caller_step: int):
        if sim.call_depth >= self.engine.stack_limit:
            raise StackOverflow(
                f"call depth exceeded {self.engine.stack_limit}"
            )
        sim.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[: compiled.n_args] = args
        records = sim.records
        if records:
            records[-1][4] = caller_step
        record = [compiled, frame, compiled.entry, None, -1]
        records.append(record)
        try:
            return self._bloop(sim, compiled, frame, compiled.entry, None,
                               record)
        finally:
            records.pop()
            sim.call_depth -= 1
            sim.memory.free(frame.owned)

    def _bphi_moves(self, sim: _GroupState, frame, block, previous) -> None:
        if block.phi_moves is None:
            return
        moves = block.phi_moves.get(previous)
        if moves:
            values = [fetch(frame) for _d, fetch, _i, _t in moves]
            armed = sim.armed
            for (dest, _fetch, iid, value_type), value in zip(moves, values):
                lanes_armed = armed.get(iid)
                if lanes_armed:
                    value = self._binject(sim, value, value_type, lanes_armed)
                frame.slots[dest] = value

    def _branch_target(self, sim: _GroupState, frame, cblock, compiled,
                       record, cond=_UNSET):
        """Resolve a conditional branch.

        On a divergent condition, the preferred path is park-and-remerge
        through the branch's reconvergence block (``sim.just_merged`` is
        set so the caller skips the already-applied phi moves); when
        that is unsafe — no in-function post-dominator, an alloca in the
        region, or the mask stack at its cap — minority lanes are peeled
        onto the scalar drain instead.
        """
        fetch, true_block, false_block = cblock.term_payload
        if cond is _UNSET:
            cond = fetch(frame)
        if type(cond) is not _ND:
            return true_block if cond else false_block
        taken = (cond != 0) & sim.active_mask
        n_taken = int(taken.sum())
        if n_taken == sim.n_active:
            return true_block
        if n_taken == 0:
            return false_block
        if self.reconverge and sim.mask_depth < _MAX_MASK_DEPTH:
            target = self._reconv_target(compiled, cblock)
            if target is not None:
                takers = np.nonzero(taken)[0].tolist()
                fallers = np.nonzero(
                    sim.active_mask & ~taken
                )[0].tolist()
                self._split_and_merge(
                    sim, frame, record, compiled, cblock,
                    takers, true_block, fallers, false_block, target,
                )
                sim.just_merged = True
                return target
        if 2 * n_taken >= sim.n_active:
            fallers = np.nonzero(sim.active_mask & ~taken)[0].tolist()
            self._peel_lanes(sim, fallers, false_block, cblock)
            return true_block
        takers = np.nonzero(taken)[0].tolist()
        self._peel_lanes(sim, takers, true_block, cblock)
        return false_block

    # ------------------------------------------------------------------
    # Reconvergence: masked sub-runs, parking, and lane re-merge
    # ------------------------------------------------------------------

    def _split_and_merge(self, sim: _GroupState, frame, record, compiled,
                         cblock, takers, true_block, fallers, false_block,
                         target) -> None:
        """Run both sides of a divergent branch to ``target`` and merge.

        The mask stack is the Python call stack: each nesting level
        saves the parent's active set in locals, runs the two sides as
        masked sub-runs (private frame clone, shared-but-masked memory),
        and restores ``active = parent_active ∧ live`` on the way out.
        Slot merging happens only after *both* sides finished, against
        the untouched parent frame, so the sides are order-independent.
        """
        if sim.pending_cost or sim.pending_blocks:
            # Settle the enclosing side's uniform accounting before the
            # active set is partitioned.
            self._flush_pending(sim)
        shared_memory = sim.memory
        if sim.mask_depth == 0:
            # One proxy serves every nesting level: it reads the active
            # set dynamically at store time.
            sim.memory = _MaskedMemory(shared_memory, sim)
        sim.mask_depth += 1
        saved_active = sim.active
        saved_mask = sim.active_mask
        saved_list = sim.active_list
        merges = []
        try:
            for lanes, start in (
                (takers, true_block), (fallers, false_block),
            ):
                merges.extend(self._run_side(sim, frame, record, compiled,
                                             lanes, start, cblock, target))
        finally:
            sim.mask_depth -= 1
            if sim.mask_depth == 0:
                sim.memory = shared_memory
            # Pop the mask: parent active set minus lanes that finished
            # inside the sides.
            live = sim.live
            for lane in saved_list:
                if not live[lane]:
                    saved_active[lane] = False
            sim.active = saved_active
            np.logical_and(saved_mask, sim.live_mask, out=saved_mask)
            sim.active_mask = saved_mask
            sim.active_list = [lane for lane in saved_list if live[lane]]
            sim.n_active = len(sim.active_list)
            self._refresh_active_peak(sim)
        for side_lanes, changes in merges:
            self._merge_slots(sim, frame.slots, side_lanes, changes)
        sim.reconverged += 1
        peak = int(sim.dyn_delta.max())
        if peak > sim.max_delta:
            sim.max_delta = peak
        if sim.n_active == 0:
            raise _AllLanesDone

    def _run_side(self, sim: _GroupState, frame, record, compiled, lanes,
                  start_block, branch_block, target):
        """Execute one side's lanes up to the reconvergence block.

        Runs against a private clone of the branching frame (slots are
        shared by reference until written — the merge detects changes by
        identity) with the side's lanes as the active set.  Parks after
        applying the target block's phi moves for this side's edge.

        Lanes that reach ``target`` early — a divergent branch inside
        the side with the reconvergence block as a direct successor,
        the shape every staggered loop exit takes — park *in place* at
        the same mask depth (:meth:`_park_lanes`) instead of opening a
        recursive split per exit iteration, so a loop draining its
        lanes over N iterations costs N parks, not N nesting levels.
        Returns a list of ``(lanes, changed slots)`` merge entries: one
        per in-place park plus one for the lanes that ran to the final
        park (empty when every lane finished first via trap/hang/drain).
        """
        side_frame = _Frame(compiled.n_slots)
        side_frame.slots[:] = frame.slots
        side_frame.allocas.update(frame.allocas)
        # ``owned`` stays empty: the region is alloca-free, and stack
        # ownership remains with the parent frame either way.
        sim.active = [False] * sim.lanes
        for lane in lanes:
            sim.active[lane] = True
        side_mask = np.zeros(sim.lanes, dtype=bool)
        side_mask[lanes] = True
        sim.active_mask = side_mask
        sim.active_list = list(lanes)
        sim.n_active = len(lanes)
        self._refresh_active_peak(sim)
        side_record = [compiled, side_frame, start_block, branch_block, -1]
        sim.records[-1] = side_record
        parked: list = []
        try:
            block = start_block
            previous = branch_block
            while block is not target:
                side_record[2] = block
                side_record[3] = previous
                self._bphi_moves(sim, side_frame, block, previous)
                self._side_account(sim, block)
                for bstep in self._block_steps(compiled, block):
                    bstep(sim, side_frame)
                kind = block.term_kind
                if kind == _T_JUMP:
                    previous = block
                    block = block.term_payload
                elif kind == _T_CBR:
                    fetch, tblock, fblock = block.term_payload
                    cond = fetch(side_frame)
                    if type(cond) is _ND and (
                            tblock is target or fblock is target):
                        taken = (cond != 0) & sim.active_mask
                        n_taken = int(taken.sum())
                        if 0 < n_taken < sim.n_active:
                            if tblock is target:
                                leave = np.nonzero(taken)[0].tolist()
                                stay = fblock
                            else:
                                leave = np.nonzero(
                                    sim.active_mask & ~taken
                                )[0].tolist()
                                stay = tblock
                            parked.append(self._park_lanes(
                                sim, frame, side_frame, block, target,
                                leave,
                            ))
                            if sim.n_active <= sim.lanes // _TAIL_DIV:
                                # Narrow tail: a handful of stragglers
                                # still looping pay full-width masked
                                # overhead per op — the scalar drain is
                                # cheaper from here on.
                                self._peel_lanes(
                                    sim, list(sim.active_list), stay,
                                    block,
                                )
                                return parked
                            previous = block
                            block = stay
                            continue
                    nxt = self._branch_target(sim, side_frame, block,
                                              compiled, side_record, cond)
                    if sim.just_merged:
                        sim.just_merged = False
                        previous = None
                    else:
                        previous = block
                    block = nxt
                else:  # _T_RET: contradicts target post-dominating us
                    raise InterpreterBug(
                        "reconvergence side returned before its target"
                    )
            # Park: apply the reconvergence block's phi moves for this
            # side's incoming edge, then leave the merge to the caller.
            side_record[2] = target
            side_record[3] = previous
            self._bphi_moves(sim, side_frame, target, previous)
            if sim.pending_cost or sim.pending_blocks:
                self._flush_pending(sim)
        except _AllLanesDone:
            if sim.n_live == 0:
                raise
            return parked  # active lanes finished; parked ones merge
        except (MemoryFault, ArithmeticTrap, StackOverflow) as fault:
            self._finish_side(sim, CRASH, str(fault))
            return parked
        except DetectionTrap as fault:
            self._finish_side(sim, DETECTED, str(fault))
            return parked
        finally:
            sim.records[-1] = record
        survivors = list(sim.active_list)
        if survivors:
            changes = [
                (index, value)
                for index, (value, old) in enumerate(
                    zip(side_frame.slots, frame.slots)
                )
                if value is not old
            ]
            parked.append((survivors, changes))
        return parked

    def _park_lanes(self, sim: _GroupState, frame, side_frame,
                    branch_block, target, lanes):
        """Park early arrivals at the reconvergence block, in place.

        Applies the target's phi moves for the ``branch_block`` edge
        masked to the parking lanes only (they become the active set
        while the moves run, so injection occurrence bookkeeping stays
        per-lane exact), then snapshots their merge entry by identity
        diff against the parent frame.  The captured slot arrays stay
        valid while the rest of the side keeps executing because the
        batch tier never mutates lane-value arrays in place.
        """
        if sim.pending_cost or sim.pending_blocks:
            self._flush_pending(sim)
        moves = target.phi_moves.get(branch_block) \
            if target.phi_moves else None
        if moves:
            saved_active = sim.active
            saved_mask = sim.active_mask
            saved_list = sim.active_list
            saved_n = sim.n_active
            park_active = [False] * sim.lanes
            park_mask = np.zeros(sim.lanes, dtype=bool)
            for lane in lanes:
                park_active[lane] = True
            park_mask[lanes] = True
            sim.active = park_active
            sim.active_mask = park_mask
            sim.active_list = list(lanes)
            sim.n_active = len(lanes)
            try:
                values = [fetch(side_frame) for _d, fetch, _i, _t in moves]
                armed = sim.armed
                slots = side_frame.slots
                for (dest, _fetch, iid, value_type), value in \
                        zip(moves, values):
                    lanes_armed = armed.get(iid)
                    if lanes_armed:
                        value = self._binject(sim, value, value_type,
                                              lanes_armed)
                    self._merge_slots(sim, slots, lanes, [(dest, value)])
            finally:
                sim.active = saved_active
                sim.active_mask = saved_mask
                sim.active_list = saved_list
                sim.n_active = saved_n
        changes = [
            (index, value)
            for index, (value, old) in enumerate(
                zip(side_frame.slots, frame.slots)
            )
            if value is not old
        ]
        active = sim.active
        active_mask = sim.active_mask
        active_list = sim.active_list
        for lane in lanes:
            active[lane] = False
            active_mask[lane] = False
            active_list.remove(lane)
        sim.n_active -= len(lanes)
        self._refresh_active_peak(sim)
        return (list(lanes), changes)

    def _finish_side(self, sim: _GroupState, outcome: str,
                     reason: str) -> None:
        """A uniform fault inside a side finishes its active lanes
        (each with its own delta-adjusted counts)."""
        for lane in list(sim.active_list):
            self._finish_lane(sim, lane, outcome, reason, divergence=True)

    def _side_account(self, sim: _GroupState, block) -> None:
        """Cost/hang/block accounting inside a side (the masked twin of
        the shared-counter fast path in ``_bloop``).

        Every still-active lane of the side executes the same blocks, so
        the accounting is *side-uniform*: one scalar cost and one sparse
        block dict accrue in O(1) per block and are flushed onto the
        per-lane deltas only when the active set is about to change
        (:meth:`_flush_pending`).  The scalar order is preserved — cost
        first, hang check second — so a lane that crosses the budget
        hangs *without* counting the block."""
        cost = block.cost
        sim.pending_cost += cost
        sim.side_executed += cost
        if (sim.dynamic_count + sim.active_peak + sim.pending_cost
                > sim.budget):
            self._side_hang_scan(sim)
        pending = sim.pending_blocks
        ordinal = block.ordinal
        pending[ordinal] = pending.get(ordinal, 0) + 1

    def _flush_pending(self, sim: _GroupState) -> None:
        """Apply side-uniform pending accounting to every active lane.

        Must run before any change to the active set — a finishing or
        peeling lane takes its share with it, and a nested split's sides
        must start from settled parent deltas."""
        cost = sim.pending_cost
        if cost:
            sim.dyn_delta[sim.active_mask] += cost
            sim.pending_cost = 0
            sim.active_peak += cost
        blocks = sim.pending_blocks
        if blocks:
            # The settled segment is frozen (a fresh dict takes over as
            # pending), so lanes share it by reference: one list append
            # per lane, merged only if the lane's counts are ever read.
            sim.pending_blocks = {}
            block_delta = sim.block_delta
            for lane in sim.active_list:
                segments = block_delta[lane]
                if segments is None:
                    block_delta[lane] = [blocks]
                else:
                    segments.append(blocks)

    def _refresh_active_peak(self, sim: _GroupState) -> None:
        if sim.n_active:
            sim.active_peak = int(sim.dyn_delta[sim.active_mask].max())
        else:
            sim.active_peak = 0

    def _side_hang_scan(self, sim: _GroupState) -> None:
        """The budget probe tripped inside a side: settle pending costs,
        finish the lanes that actually crossed (``active_peak`` is only
        an upper bound), and re-tighten the bound for the rest."""
        self._flush_pending(sim)
        base = sim.dynamic_count
        budget = sim.budget
        dyn_delta = sim.dyn_delta
        for lane in list(sim.active_list):
            count = base + int(dyn_delta[lane])
            if count > budget:
                self._finish_lane(sim, lane, HANG, str(HangFault(count)),
                                  divergence=False)
        if sim.n_active == 0:
            raise _AllLanesDone
        self._refresh_active_peak(sim)

    def _hang_scan(self, sim: _GroupState) -> None:
        """Budget check once lanes carry divergence deltas: finish the
        lanes that crossed, keep the rest running.  With every delta at
        zero this is exactly the old uniform HangFault (all live lanes
        cross together)."""
        base = sim.dynamic_count
        budget = sim.budget
        for lane in list(sim.active_list):
            count = base + int(sim.dyn_delta[lane])
            if count > budget:
                self._finish_lane(sim, lane, HANG, str(HangFault(count)),
                                  divergence=False)
        if sim.n_active == 0:
            raise _AllLanesDone

    def _merge_slots(self, sim: _GroupState, parent_slots, lanes,
                     changes) -> None:
        """Fold one parked side's slot writes back into the parent frame.

        ``changes`` are (slot index, side value) pairs whose value
        object differs from the parent's (identity check — the batch
        tier never mutates lane-value arrays in place).  Only the
        side's surviving lanes' components are adopted; the rest keep
        the parent's view.
        """
        n_lanes = sim.lanes
        for index, value in changes:
            old = parent_slots[index]
            if old is None:
                # SSA dominance: no other lane can read this slot before
                # writing it, so adopting the side's array wholesale is
                # safe and allocation-free.
                parent_slots[index] = value
                continue
            if type(old) is not _ND:
                if type(value) is not _ND and type(old) is type(value) \
                        and old == value and value.__class__ is not float:
                    continue
                if old.__class__ is float:
                    merged = np.full(n_lanes, old, dtype=np.float64)
                elif old.__class__ is int:
                    merged = np.full(n_lanes, old, dtype=np.uint64)
                else:  # non-numeric scalar (defensive): object lanes
                    merged = _object_copy(old, n_lanes)
            else:
                merged = old.copy()
            if merged.dtype.kind == "O":
                for lane in lanes:
                    merged[lane] = _lane_value(value, lane)
            elif type(value) is _ND:
                for lane in lanes:
                    merged[lane] = value[lane]
            else:
                for lane in lanes:
                    merged[lane] = value
            parent_slots[index] = merged

    def _bloop(self, sim: _GroupState, compiled, frame, block, previous,
               record):
        block_counts = sim.block_counts
        while True:
            record[2] = block
            record[3] = previous
            self._bphi_moves(sim, frame, block, previous)
            if sim.mask_depth:
                # Re-entered via a nested call made inside a side: keep
                # the per-lane delta accounting of the enclosing side.
                self._side_account(sim, block)
            else:
                sim.dynamic_count += block.cost
                if sim.dynamic_count + sim.max_delta > sim.budget:
                    self._hang_scan(sim)
                block_counts[block.ordinal] += 1
            for bstep in self._block_steps(compiled, block):
                bstep(sim, frame)
            kind = block.term_kind
            if kind == _T_JUMP:
                previous = block
                block = block.term_payload
            elif kind == _T_CBR:
                target = self._branch_target(sim, frame, block, compiled,
                                             record)
                if sim.just_merged:
                    sim.just_merged = False
                    previous = None
                else:
                    previous = block
                block = target
            else:  # _T_RET
                fetch = block.term_payload
                return fetch(frame) if fetch is not None else None

    def _bloop_from(self, sim: _GroupState, compiled, frame, cblock,
                    start: int, record):
        """Finish a mid-block resumed frame, then rejoin the main loop."""
        steps = self._block_steps(compiled, cblock)
        for index in range(start, len(steps)):
            steps[index](sim, frame)
        kind = cblock.term_kind
        if kind == _T_JUMP:
            block = cblock.term_payload
        elif kind == _T_CBR:
            block = self._branch_target(sim, frame, cblock, compiled,
                                        record)
            if sim.just_merged:
                sim.just_merged = False
                return self._bloop(sim, compiled, frame, block, None,
                                   record)
        else:  # _T_RET
            fetch = cblock.term_payload
            return fetch(frame) if fetch is not None else None
        return self._bloop(sim, compiled, frame, block, cblock, record)

    def _bresume_frame(self, sim: _GroupState, snapshot: Snapshot,
                       depth: int):
        """Rebuild one suspended activation record in lockstep form
        (mirrors engine._resume_frame: callee first, then the call's
        return value placement, then the rest of the block)."""
        frec = snapshot.frames[depth]
        compiled = frec.compiled
        sim.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[:] = frec.slots
        frame.allocas.update(frec.allocas)
        frame.owned.extend(frec.owned)
        record = [compiled, frame, frec.cblock, frec.previous,
                  frec.step_index]
        sim.records.append(record)
        try:
            if depth + 1 < len(snapshot.frames):
                value = self._bresume_frame(sim, snapshot, depth + 1)
                cblock = frec.cblock
                inst = cblock.step_insts[frec.step_index]
                if inst.has_result:
                    lanes_armed = sim.armed.get(inst.iid)
                    if lanes_armed:
                        value = self._binject(sim, value, inst.type,
                                              lanes_armed)
                    frame.slots[compiled.slot_of[id(inst)]] = value
                return self._bloop_from(sim, compiled, frame, cblock,
                                        frec.step_index + 1, record)
            return self._bloop(sim, compiled, frame, frec.cblock,
                               frec.previous, record)
        finally:
            sim.records.pop()
            sim.call_depth -= 1
            sim.memory.free(frame.owned)

    # ------------------------------------------------------------------
    # Per-lane evaluation helpers
    # ------------------------------------------------------------------

    def _per_lane_binop(self, sim: _GroupState, evaluate, a, b, value_type):
        """Trap-capable binop, lane by lane, through the scalar helper."""
        out = _lane_array(sim.lanes, value_type)
        crashed = []
        for lane in sim.active_list:
            try:
                out[lane] = evaluate(_lane_value(a, lane),
                                     _lane_value(b, lane))
            except ArithmeticTrap as fault:
                crashed.append((lane, str(fault)))
        for lane, reason in crashed:
            self._finish_lane(sim, lane, CRASH, reason, divergence=True)
        if sim.n_active == 0:
            raise _AllLanesDone
        return out

    # ------------------------------------------------------------------
    # Batch-step compilation
    # ------------------------------------------------------------------

    def _block_steps(self, compiled, cblock):
        steps = self._bsteps.get(id(cblock))
        if steps is None:
            steps = [
                self._compile_bstep(compiled, inst, index)
                for index, inst in enumerate(cblock.step_insts)
            ]
            self._bsteps[id(cblock)] = steps
        return steps

    def _compile_bstep(self, compiled, inst, step_index):
        if isinstance(inst, BinOp):
            return self._bstep_binop(compiled, inst)
        if isinstance(inst, ICmp):
            return self._bstep_icmp(compiled, inst)
        if isinstance(inst, FCmp):
            return self._bstep_fcmp(compiled, inst)
        if isinstance(inst, Cast):
            return self._bstep_cast(compiled, inst)
        if isinstance(inst, Alloca):
            return self._bstep_alloca(compiled, inst)
        if isinstance(inst, Load):
            return self._bstep_load(compiled, inst)
        if isinstance(inst, Store):
            return self._bstep_store(compiled, inst)
        if isinstance(inst, GetElementPtr):
            return self._bstep_gep(compiled, inst)
        if isinstance(inst, Call):
            return self._bstep_call(compiled, inst, step_index)
        if isinstance(inst, Output):
            return self._bstep_output(compiled, inst)
        if isinstance(inst, Select):
            return self._bstep_select(compiled, inst)
        if isinstance(inst, Detect):
            return self._bstep_detect(compiled, inst)
        raise InterpreterBug(f"cannot batch-compile {inst!r}")

    def _bstep_binop(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.lhs)
        fetch_b = self.engine._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        op = inst.op
        bits = value_type.bits
        binject = self._binject
        per_lane = self._per_lane_binop

        if value_type.is_float:
            scalar = lambda a, b: eval_float_binop(op, a, b, bits)
            vector = _float_vector_op(op, bits)
        else:
            scalar = lambda a, b: eval_int_binop(op, a, b, bits)
            vector = _int_vector_op(op, bits)

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                value = scalar(a, b)  # uniform; a trap hits every lane
            elif vector is not None:
                value = vector(a, b)
            else:
                value = per_lane(sim, scalar, a, b, value_type)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_icmp(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.lhs)
        fetch_b = self.engine._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        predicate = inst.predicate
        bits = inst.lhs.type.bits
        value_type = inst.type
        binject = self._binject
        vector = _icmp_vector(predicate, bits)

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                value = eval_icmp(predicate, a, b, bits)
            else:
                value = vector(a, b).astype(np.uint64)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_fcmp(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.lhs)
        fetch_b = self.engine._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        predicate = inst.predicate
        value_type = inst.type
        binject = self._binject
        vector = _fcmp_vector(predicate)

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                value = eval_fcmp(predicate, a, b)
            elif vector is not None:
                value = vector(a, b).astype(np.uint64)
            else:  # pragma: no cover - all IR predicates are vectorized
                out = _lane_array(sim.lanes, value_type)
                for lane in sim.active_list:
                    out[lane] = eval_fcmp(
                        predicate, _lane_value(a, lane), _lane_value(b, lane)
                    )
                value = out
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_cast(self, compiled, inst):
        fetch = self.engine._fetch(compiled, inst.value)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        op = inst.op
        from_type = inst.value.type
        to_type = inst.type
        binject = self._binject

        if op == "trunc":
            to_mask = mask(to_type.bits)
            vector = lambda a: a & to_mask
        elif op == "zext":
            vector = lambda a: a  # canonical form is width-independent
        elif op == "sext":
            from_bits = from_type.bits
            to_mask = mask(to_type.bits)
            vector = lambda a: (
                _signed_vec(a, from_bits).astype(np.uint64) & np.uint64(to_mask)
            )
        else:
            vector = None  # fp casts & conversions: exact per-lane helper

        def bstep(sim, frame):
            a = fetch(frame)
            if type(a) is not _ND:
                value = eval_cast(op, a, from_type, to_type)
            elif vector is not None:
                value = vector(a)
            else:
                out = _lane_array(sim.lanes, to_type)
                for lane in sim.active_list:
                    out[lane] = eval_cast(
                        op, _lane_value(a, lane), from_type, to_type
                    )
                value = out
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, to_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_alloca(self, compiled, inst):
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        count = inst.count
        elem_size = inst.elem_type.size_bytes
        value_type = inst.type
        binject = self._binject

        def bstep(sim, frame):
            address = frame.allocas.get(iid)
            if address is None:
                address, elements = sim.memory.allocate_stack(
                    count, elem_size
                )
                frame.allocas[iid] = address
                frame.owned.extend(elements)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                address = binject(sim, address, value_type, lanes_armed)
            frame.slots[dest] = address

        return bstep

    def _bstep_load(self, compiled, inst):
        fetch = self.engine._fetch(compiled, inst.pointer)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        default = default_value(value_type)
        binject = self._binject
        is_float = value_type.is_float
        unsigned_max = 0 if is_float else value_type.max_unsigned

        def coerce_scalar(value):
            # The scalar tier's reinterpret fast path, verbatim.
            if is_float:
                if value.__class__ is not float:
                    return reinterpret_loaded(value, value_type)
            elif value.__class__ is float or value > unsigned_max:
                return reinterpret_loaded(value, value_type)
            return value

        def coerce_lanes(sim, value):
            kind = value.dtype.kind
            if is_float:
                if kind == "f":
                    return value
            elif kind == "u" and bool((value <= unsigned_max).all()):
                return value
            out = _lane_array(sim.lanes, value_type)
            for lane in sim.active_list:
                cell = value[lane] if kind == "O" else _lane_value(value, lane)
                if cell is _MISSING:
                    cell = default
                out[lane] = coerce_scalar(cell)
            return out

        def load_uniform(sim, address):
            value = sim.memory.load(address, default)
            if type(value) is _ND:
                return coerce_lanes(sim, value)
            return coerce_scalar(value)

        def bstep(sim, frame):
            address = fetch(frame)
            if type(address) is not _ND:
                value = load_uniform(sim, address)
            else:
                # Addresses only *look* divergent once a lane has died
                # (or parked on the other side of a split) with another
                # pointer left in the array — check the active lanes and
                # take the uniform path when they agree.
                active_list = sim.active_list
                addresses = address[active_list]
                first = int(addresses[0])
                if len(active_list) == 1 or bool(
                    (addresses == first).all()
                ):
                    value = load_uniform(sim, first)
                else:
                    out = _lane_array(sim.lanes, value_type)
                    landed = []
                    gathered = []
                    faulted = []
                    memory = sim.memory
                    for lane, lane_address in zip(
                            active_list, addresses.tolist()):
                        try:
                            cell = memory.load(lane_address, default)
                        except MemoryFault as fault:
                            faulted.append((lane, str(fault)))
                            continue
                        cell = _lane_value(cell, lane)
                        if cell is _MISSING:
                            cell = default
                        landed.append(lane)
                        gathered.append(coerce_scalar(cell))
                    out[landed] = gathered
                    for lane, reason in faulted:
                        self._finish_lane(sim, lane, CRASH, reason,
                                          divergence=True)
                    if sim.n_active == 0:
                        raise _AllLanesDone
                    value = out
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_store(self, compiled, inst):
        fetch_value = self.engine._fetch(compiled, inst.value)
        fetch_pointer = self.engine._fetch(compiled, inst.pointer)

        def bstep(sim, frame):
            address = fetch_pointer(frame)
            value = fetch_value(frame)
            if type(address) is not _ND:
                sim.memory.store(address, value)  # uniform (value may be lanes)
                return
            active_list = sim.active_list
            first = int(address[active_list[0]])
            if len(active_list) == 1 or bool(
                (address[active_list] == first).all()
            ):
                # Stale addresses in dead/parked lanes: active lanes
                # still agree, so this is a uniform store after all.
                sim.memory.store(first, value)
                return
            # Divergent addresses: scatter per lane into object-dtype
            # cells so each lane keeps its own view of memory.
            memory = sim.memory
            faulted = []
            for lane in active_list:
                lane_address = int(address[lane])
                if lane_address not in memory.valid:
                    faulted.append(
                        (lane, str(MemoryFault(lane_address, "store")))
                    )
                    continue
                cell = memory.cells.get(lane_address, _MISSING)
                lane_value = _lane_value(value, lane)
                # Keep (or promote to) numeric cells whenever the kinds
                # line up — object cells push every later load of the
                # address onto the per-lane coercion path.
                if type(cell) is _ND:
                    kind = cell.dtype.kind
                    if kind == "O" or (
                        kind == "f" and lane_value.__class__ is float
                    ) or (
                        kind == "u" and lane_value.__class__ is int
                        and 0 <= lane_value <= _MASK64
                    ):
                        cell = cell.copy()
                    else:
                        cell = _object_copy(cell, sim.lanes)
                elif cell.__class__ is float \
                        and lane_value.__class__ is float:
                    cell = np.full(sim.lanes, cell, dtype=np.float64)
                elif cell.__class__ is int and 0 <= cell <= _MASK64 \
                        and lane_value.__class__ is int \
                        and 0 <= lane_value <= _MASK64:
                    cell = np.full(sim.lanes, cell, dtype=np.uint64)
                else:
                    cell = _object_copy(cell, sim.lanes)
                cell[lane] = lane_value
                memory.cells[lane_address] = cell
            for lane, reason in faulted:
                self._finish_lane(sim, lane, CRASH, reason, divergence=True)
            if sim.n_active == 0:
                raise _AllLanesDone

        return bstep

    def _bstep_gep(self, compiled, inst):
        fetch_base = self.engine._fetch(compiled, inst.base)
        fetch_index = self.engine._fetch(compiled, inst.index)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        elem_size = inst.elem_size
        index_bits = inst.index.type.bits
        value_type = inst.type
        binject = self._binject
        elem_size_u64 = np.uint64(elem_size)
        mask_u64 = np.uint64(_MASK64)

        def bstep(sim, frame):
            base = fetch_base(frame)
            index = fetch_index(frame)
            if type(base) is not _ND and type(index) is not _ND:
                value = (
                    base + to_signed(index, index_bits) * elem_size
                ) & _MASK64
            else:
                # Offsets in the uint64 wrap domain: sign-extend the
                # index to 64 bits, multiply and add mod 2^64 — exactly
                # the scalar tier's `(base + signed*size) & _MASK64`.
                if type(index) is _ND:
                    offset = _sext64_vec(index, index_bits) * elem_size_u64
                else:
                    offset = (
                        to_signed(index, index_bits) * elem_size
                    ) & _MASK64
                value = base + offset
                if type(value) is not _ND or value.dtype.kind != "u":
                    value = value & mask_u64  # object lanes: wrap by hand
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_call(self, compiled, inst, step_index):
        fetches = [
            self.engine._fetch(compiled, arg) for arg in inst.args
        ]
        callee = inst.callee
        result_type = inst.type
        has_result = inst.has_result
        dest = compiled.slot_of[id(inst)] if has_result else -1
        iid = inst.iid
        binject = self._binject

        if is_intrinsic(callee) and callee not in self.engine.module.functions:
            def bstep(sim, frame):
                args = [fetch(frame) for fetch in fetches]
                if any(type(arg) is _ND for arg in args):
                    out = _lane_array(sim.lanes, result_type)
                    for lane in sim.active_list:
                        out[lane] = call_intrinsic(
                            callee,
                            [_lane_value(arg, lane) for arg in args],
                            result_type,
                        )
                    value = out
                else:
                    value = call_intrinsic(callee, args, result_type)
                lanes_armed = sim.armed.get(iid)
                if lanes_armed:
                    value = binject(sim, value, result_type, lanes_armed)
                frame.slots[dest] = value
            return bstep

        compiled_map = self.engine._compiled
        bcall = self._bcall

        def bstep(sim, frame):
            args = [fetch(frame) for fetch in fetches]
            value = bcall(sim, compiled_map[callee], args, step_index)
            if has_result:
                lanes_armed = sim.armed.get(iid)
                if lanes_armed:
                    value = binject(sim, value, result_type, lanes_armed)
                frame.slots[dest] = value

        return bstep

    def _bstep_output(self, compiled, inst):
        fetch = self.engine._fetch(compiled, inst.value)
        value_type = inst.value.type
        precision = inst.precision

        def bstep(sim, frame):
            value = fetch(frame)
            if type(value) is not _ND and not sim.mask_depth:
                sim.outputs.append(
                    format_output(value, value_type, precision)
                )
            else:
                # Inside a reconvergence side, even a uniform value must
                # go in as a masked entry — the parked lanes on the other
                # side did not emit it.
                entry = [_NO_OUT] * sim.lanes
                for lane in sim.active_list:
                    entry[lane] = format_output(
                        _lane_value(value, lane), value_type, precision
                    )
                sim.outputs.append(entry)

        return bstep

    def _bstep_select(self, compiled, inst):
        fetch_cond = self.engine._fetch(compiled, inst.cond)
        fetch_true = self.engine._fetch(compiled, inst.true_value)
        fetch_false = self.engine._fetch(compiled, inst.false_value)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        binject = self._binject
        dtype = np.float64 if value_type.is_float else np.uint64

        def bstep(sim, frame):
            cond = fetch_cond(frame)
            if type(cond) is not _ND:
                value = fetch_true(frame) if cond else fetch_false(frame)
            else:
                value = np.where(
                    cond != 0, fetch_true(frame), fetch_false(frame)
                )
                if value.dtype != dtype:
                    value = value.astype(dtype)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_detect(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.original)
        fetch_b = self.engine._fetch(compiled, inst.duplicate)
        is_float = inst.original.type.is_float
        iid = inst.iid

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                if a == b:
                    return
                if is_float and a != a and b != b:
                    return
                raise DetectionTrap(f"detect #{iid}: {a!r} != {b!r}")
            tripped = []
            for lane in list(sim.active_list):
                lane_a = _lane_value(a, lane)
                lane_b = _lane_value(b, lane)
                if lane_a == lane_b:
                    continue
                if is_float and lane_a != lane_a and lane_b != lane_b:
                    continue
                tripped.append(
                    (lane, f"detect #{iid}: {lane_a!r} != {lane_b!r}")
                )
            for lane, reason in tripped:
                self._finish_lane(sim, lane, DETECTED, reason,
                                  divergence=True)
            if sim.n_active == 0:
                raise _AllLanesDone

        return bstep
