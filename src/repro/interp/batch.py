"""Batch execution tier: N fault-injection trials in numpy lockstep.

Campaign trials of one module share almost all of their execution: every
trial replays the golden prefix up to its injection point, and most
faults corrupt a value without (immediately) changing control flow.  The
batch tier exploits both facts by running a *group* of trials as one
lockstep execution with one lane per trial:

* **Shared control flow.**  The group maintains a single frame stack,
  block counters, dynamic-instruction count and memory image.  A slot
  (or memory cell) holds a plain Python scalar while its value is
  uniform across lanes — the dominant case, paid for once per group —
  and becomes a numpy array of per-lane values once any lane diverges.
  Straight-line arithmetic over diverged values executes as vectorized
  numpy ops over all lanes at once.

* **Per-lane faults.**  Each lane arms its own :class:`Injection`;
  occurrence bookkeeping runs per lane, and the armed occurrence flips
  one bit in that lane's component only (promoting the value to an
  array on first divergence).

* **Divergence peel and drain.**  Lockstep requires uniform control
  flow.  A per-lane trap (division, memory fault, detector) finishes
  that lane in place with its outcome.  A conditional branch whose
  condition differs across lanes keeps the majority side in lockstep
  and *peels* each minority lane: its scalar state is materialized as a
  standard checkpoint :class:`~repro.interp.checkpoint.Snapshot` and
  drained to completion on the scalar codegen tier via
  :meth:`~repro.interp.engine.ExecutionEngine.resume_snapshot`.  No
  count is ever lost — every lane produces exactly the
  :class:`~repro.interp.result.RunResult` its scalar run would have.

Semantics discipline (see DESIGN.md §10): numpy dtypes never leak.
Integers live in uint64 arrays (canonical unsigned form of any width;
uint64 arithmetic wraps mod 2^64, then masks to the type width exactly
like the scalar tier's ``& mask(bits)``); floats live in float64 arrays
(f32 results round through ``astype(float32)``, which is the same
round-to-nearest-even as ``truncate_float``).  Everything trap-raising
or conversion-sensitive (div/rem, casts, ``frem``, intrinsics, output
formatting, load reinterpretation) runs per-lane through the *exact*
helpers of :mod:`repro.interp.ops`, and any value extracted from a lane
is coerced back to a plain Python ``int``/``float`` first.
"""

from __future__ import annotations

from ..ir.bitutils import flip_bit_typed, mask, to_signed
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Output,
    Select,
    Store,
)
from .checkpoint import FrameSnap, Snapshot
from .engine import _T_CBR, _T_JUMP, _Frame
from .errors import (
    ArithmeticTrap,
    DetectionTrap,
    HangFault,
    InterpreterBug,
    MemoryFault,
    StackOverflow,
)
from .intrinsics import call_intrinsic, is_intrinsic
from .memory import MemoryState
from .ops import (
    default_value,
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
    format_output,
    reinterpret_loaded,
)
from .result import CRASH, DETECTED, HANG, OK, RunResult

try:  # numpy ships with the dev extras, not the (empty) base deps
    import numpy as np

    HAVE_NUMPY = True
    _ND = np.ndarray
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None
    HAVE_NUMPY = False

    class _ND:  # placeholder: `type(x) is _ND` is then always False
        pass


_MASK64 = mask(64)

#: Lane count used when the batch tier is selected without an explicit
#: ``--batch-lanes``; large enough to amortize lockstep dispatch, small
#: enough that divergence drains stay short.
DEFAULT_BATCH_LANES = 16

#: Sentinel for "this lane's cell does not exist" inside object-dtype
#: memory arrays (a scalar run would have no entry in ``cells`` at all).
_MISSING = object()


class _AllLanesDone(Exception):
    """Internal unwind signal: every lane of the group has a result."""


def _lane_value(value, lane: int):
    """Extract one lane's component as a plain Python value."""
    if type(value) is _ND:
        kind = value.dtype.kind
        if kind == "f":
            return float(value[lane])
        if kind in ("u", "i"):
            return int(value[lane])
        return value[lane]  # object arrays hold Python values (or _MISSING)
    return value


def _lane_array(lanes: int, value_type):
    """Fresh per-lane result array of a register type's dtype."""
    if value_type.is_float:
        return np.zeros(lanes, dtype=np.float64)
    return np.zeros(lanes, dtype=np.uint64)


def _promote(value, lanes: int, value_type):
    """Broadcast a uniform scalar into a fresh per-lane array."""
    if value_type.is_float:
        return np.full(lanes, value, dtype=np.float64)
    return np.full(lanes, value, dtype=np.uint64)


def _object_copy(value, lanes: int):
    """Copy a cell value into a fresh object array of Python values."""
    out = np.empty(lanes, dtype=object)
    if type(value) is _ND:
        if value.dtype.kind == "O":
            out[:] = value
        else:
            out[:] = value.tolist()  # numpy scalars -> Python ints/floats
    else:
        out[:] = [value] * lanes
    return out


def _signed_vec(value, bits: int):
    """Canonical-unsigned lanes -> signed values (int64 array)."""
    if type(value) is not _ND:
        return to_signed(value, bits)
    if bits == 64:
        return value.astype(np.int64)  # same-width reinterpret
    signed = value.astype(np.int64)
    sign_bit = 1 << (bits - 1)
    return np.where(value >= sign_bit, signed - (1 << bits), signed)


def _sext64_vec(value, bits: int):
    """Sign-extend canonical lanes to 64-bit in the uint64 wrap domain."""
    if bits == 64:
        return value
    sign_bit = 1 << (bits - 1)
    high = (~mask(bits)) & _MASK64
    return np.where((value & sign_bit) != 0, value | high, value)


def _int_vector_op(op: str, bits: int):
    """Vectorized integer binop over uint64 lanes, or None if the op
    must run per-lane (division/remainder can trap per lane)."""
    bit_mask = mask(bits)
    if op == "add":
        return lambda a, b: (a + b) & bit_mask
    if op == "sub":
        return lambda a, b: (a - b) & bit_mask
    if op == "mul":
        return lambda a, b: (a * b) & bit_mask
    if op == "and":
        return lambda a, b: a & b
    if op == "or":
        return lambda a, b: a | b
    if op == "xor":
        return lambda a, b: a ^ b
    if op == "shl":
        return lambda a, b: (a << (b % bits)) & bit_mask
    if op == "lshr":
        return lambda a, b: a >> (b % bits)
    if op == "ashr":
        def ashr(a, b):
            shift = b % bits
            if type(shift) is _ND:
                # int64 shift counts: a uniform negative dividend must
                # not meet a uint64 array under NEP 50 promotion.
                shift = shift.astype(np.int64)
            shifted = np.right_shift(_signed_vec(a, bits), shift)
            return shifted.astype(np.uint64) & np.uint64(bit_mask)
        return ashr
    return None  # sdiv/udiv/srem/urem: per-lane, trap-capable


def _float_vector_op(op: str, bits: int):
    """Vectorized float binop over float64 lanes, or None (frem runs
    per-lane through ``eval_float_binop`` for exact fmod parity)."""
    if op == "fadd":
        base = lambda a, b: a + b
    elif op == "fsub":
        base = lambda a, b: a - b
    elif op == "fmul":
        base = lambda a, b: a * b
    elif op == "fdiv":
        # IEEE division: numpy's inf/nan specials coincide case-by-case
        # with eval_float_binop's explicit zero-divisor handling.
        base = lambda a, b: np.divide(a, b)
    else:
        return None
    if bits == 32:
        def rounded(a, b):
            return base(a, b).astype(np.float32).astype(np.float64)
        return rounded
    return base


def _icmp_vector(pred: str, bits: int):
    if pred == "eq":
        return lambda a, b: a == b
    if pred == "ne":
        return lambda a, b: a != b
    if pred == "ult":
        return lambda a, b: a < b
    if pred == "ule":
        return lambda a, b: a <= b
    if pred == "ugt":
        return lambda a, b: a > b
    if pred == "uge":
        return lambda a, b: a >= b
    signed = {
        "slt": lambda a, b: a < b,
        "sle": lambda a, b: a <= b,
        "sgt": lambda a, b: a > b,
        "sge": lambda a, b: a >= b,
    }[pred]
    return lambda a, b: signed(_signed_vec(a, bits), _signed_vec(b, bits))


def _fcmp_vector(pred: str):
    # numpy comparisons are already false on NaN, matching eval_fcmp's
    # ordered semantics — except "one", which needs the NaN mask spelled
    # out (NaN != x is True elementwise).
    if pred == "oeq":
        return lambda a, b: a == b
    if pred == "one":
        return lambda a, b: (a != b) & ~np.isnan(a) & ~np.isnan(b)
    if pred == "olt":
        return lambda a, b: a < b
    if pred == "ole":
        return lambda a, b: a <= b
    if pred == "ogt":
        return lambda a, b: a > b
    if pred == "oge":
        return lambda a, b: a >= b
    return None


class _GroupState:
    """Mutable state of one lockstep group (mirrors engine._State)."""

    __slots__ = (
        "lanes", "live", "live_mask", "live_list", "n_live", "memory",
        "outputs", "dynamic_count", "budget", "block_counts", "armed",
        "inject_occurrence", "inject_bit", "occurrence", "activated",
        "injections", "records", "call_depth", "results", "divergences",
        "drain_executed",
    )

    def __init__(self, lanes: int, budget: int):
        self.lanes = lanes
        self.live = [True] * lanes
        #: Same predicate three ways, each serving a different access
        #: pattern: per-lane checks (list), vectorized branch partition
        #: (bool array), and sparse iteration once lanes start exiting.
        self.live_mask = np.ones(lanes, dtype=bool)
        self.live_list = list(range(lanes))
        self.n_live = lanes
        self.memory = None
        self.outputs: list = []
        self.dynamic_count = 0
        self.budget = budget
        self.block_counts: list[int] = []
        #: iid -> lanes armed on it (occurrence bookkeeping per lane).
        self.armed: dict[int, list[int]] = {}
        self.inject_occurrence = [0] * lanes
        self.inject_bit = [0] * lanes
        self.occurrence = [0] * lanes
        self.activated = [False] * lanes
        self.injections: list = [None] * lanes
        #: Shadow stack of [compiled, frame, cblock, previous, step_index]
        #: records (same shape as the capture pass), so any lane can be
        #: materialized as a checkpoint Snapshot at a block boundary.
        self.records: list = []
        self.call_depth = 0
        self.results: list = [None] * lanes
        self.divergences = 0
        self.drain_executed = 0


class GroupOutcome:
    """Per-lane results plus the group's throughput accounting."""

    __slots__ = ("results", "divergences", "executed", "skipped")

    def __init__(self, results, divergences, executed, skipped):
        self.results = results
        self.divergences = divergences
        self.executed = executed
        self.skipped = skipped


class BatchRunner:
    """Lockstep executor for groups of trials on one engine.

    Reuses the engine's compiled representation (blocks, operand fetch
    closures, phi-move tables, terminators) and compiles one extra
    *batch step* per instruction, lazily and once per engine: a closure
    with a scalar fast path for uniform operands and numpy paths for
    diverged ones.  Construction requires numpy.
    """

    def __init__(self, engine):
        if not HAVE_NUMPY:
            raise InterpreterBug("batch tier requires numpy")
        self.engine = engine
        self._bsteps: dict[int, list] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_group(self, trials, snapshot: Snapshot | None = None,
                  base_outputs=None, occurrences=None,
                  budget: int | None = None) -> GroupOutcome:
        """Execute one group of trials in lockstep.

        ``trials[i]`` is the :class:`Injection` for lane ``i`` (or None
        for a fault-free lane).  With ``snapshot`` the whole group
        restores from one golden-prefix checkpoint; ``occurrences[i]``
        must then carry ``prefix_occurrence(snapshot, iid_i)`` and
        ``base_outputs`` the golden outputs as of the snapshot — the
        same seeding the scalar resume path uses.
        """
        engine = self.engine
        lanes = len(trials)
        if lanes < 1:
            raise ValueError("batch group needs at least one lane")
        sim = _GroupState(lanes, budget or engine.max_dynamic)
        for lane, injection in enumerate(trials):
            if injection is None:
                continue
            target = engine.module.instruction(injection.iid)
            if not target.has_result:
                raise ValueError(
                    f"instruction #{injection.iid} has no destination register"
                )
            if not 0 <= injection.bit < target.type.bits:
                raise ValueError(
                    f"bit {injection.bit} out of range for {target.type}"
                )
            sim.injections[lane] = injection
            sim.armed.setdefault(injection.iid, []).append(lane)
            sim.inject_occurrence[lane] = injection.occurrence
            sim.inject_bit[lane] = injection.bit
            if occurrences is not None:
                sim.occurrence[lane] = occurrences[lane]
        if snapshot is not None:
            sim.memory = MemoryState.restored(
                dict(snapshot.cells), set(snapshot.valid),
                snapshot.stack_cursor, snapshot.footprint_bytes,
            )
            sim.dynamic_count = snapshot.dynamic_count
            sim.block_counts = list(snapshot.block_counts)
            sim.outputs = list(base_outputs) if base_outputs else []
        else:
            sim.memory = MemoryState(engine.layout)
            sim.block_counts = [0] * engine._n_blocks

        start_count = sim.dynamic_count
        with np.errstate(all="ignore"):
            try:
                if snapshot is None:
                    self._bcall(sim, engine._compiled["main"], [], -1)
                else:
                    self._bresume_frame(sim, snapshot, 0)
                self._finish_live(sim, OK, "")
            except _AllLanesDone:
                pass
            except (MemoryFault, ArithmeticTrap, StackOverflow) as fault:
                self._finish_live(sim, CRASH, str(fault))
            except HangFault as fault:
                self._finish_live(sim, HANG, str(fault))
            except DetectionTrap as fault:
                self._finish_live(sim, DETECTED, str(fault))

        executed = (sim.dynamic_count - start_count) + sim.drain_executed
        logical = sum(result.dynamic_count for result in sim.results)
        return GroupOutcome(
            sim.results, sim.divergences, executed,
            max(0, logical - executed),
        )

    # ------------------------------------------------------------------
    # Lane lifecycle
    # ------------------------------------------------------------------

    def _lane_outputs(self, sim: _GroupState, lane: int) -> list[str]:
        return [
            entry if type(entry) is str else entry[lane]
            for entry in sim.outputs
        ]

    def _retire_lane(self, sim: _GroupState, lane: int) -> None:
        sim.live[lane] = False
        sim.live_mask[lane] = False
        sim.live_list.remove(lane)
        sim.n_live -= 1

    def _finish_lane(self, sim: _GroupState, lane: int, outcome: str,
                     reason: str, divergence: bool) -> None:
        self._retire_lane(sim, lane)
        if divergence:
            sim.divergences += 1
        sim.results[lane] = RunResult(
            outcome=outcome,
            outputs=self._lane_outputs(sim, lane),
            dynamic_count=sim.dynamic_count,
            crash_reason=reason,
            activated=sim.activated[lane],
            block_counts=self.engine._block_counts_map(sim.block_counts),
            footprint_bytes=sim.memory.footprint_bytes,
        )

    def _finish_live(self, sim: _GroupState, outcome: str,
                     reason: str) -> None:
        for lane in list(sim.live_list):
            self._finish_lane(sim, lane, outcome, reason, divergence=False)

    def _lane_snapshot(self, sim: _GroupState, lane: int, succ_cblock,
                       from_cblock) -> Snapshot:
        """Materialize one lane's scalar state as a checkpoint Snapshot.

        The lane resumes at the top of ``succ_cblock`` entered from
        ``from_cblock`` (phi moves pending), exactly like the innermost
        frame of a capture-pass snapshot; outer frames stay suspended at
        their recorded call steps.
        """
        records = sim.records
        last = len(records) - 1
        frames = []
        for index, (compiled, frame, cblock, previous, step) in \
                enumerate(records):
            slots = tuple(_lane_value(v, lane) for v in frame.slots)
            if index < last:
                frames.append(FrameSnap(
                    compiled, slots, dict(frame.allocas),
                    tuple(frame.owned), cblock, previous, step,
                ))
            else:
                frames.append(FrameSnap(
                    compiled, slots, dict(frame.allocas),
                    tuple(frame.owned), succ_cblock, from_cblock, -1,
                ))
        memory = sim.memory
        cells = {}
        for address, value in memory.cells.items():
            extracted = _lane_value(value, lane)
            if extracted is not _MISSING:
                cells[address] = extracted
        return Snapshot(
            dynamic_count=sim.dynamic_count,
            frames=tuple(frames),
            cells=cells,
            valid=set(memory.valid),
            stack_cursor=memory.stack_cursor,
            footprint_bytes=memory.footprint_bytes,
            outputs_len=len(sim.outputs),
            block_counts=list(sim.block_counts),
        )

    def _peel_lanes(self, sim: _GroupState, lanes, succ_cblock,
                    from_cblock) -> None:
        """Drain diverged lanes on the scalar codegen tier."""
        for lane in lanes:
            snapshot = self._lane_snapshot(sim, lane, succ_cblock,
                                           from_cblock)
            result = self.engine.resume_snapshot(
                snapshot, sim.injections[lane], sim.budget,
                occurrence=sim.occurrence[lane],
                outputs=self._lane_outputs(sim, lane),
                activated=sim.activated[lane],
            )
            self._retire_lane(sim, lane)
            sim.divergences += 1
            sim.drain_executed += result.dynamic_count - sim.dynamic_count
            sim.results[lane] = result

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def _binject(self, sim: _GroupState, value, value_type, lanes_armed):
        """Per-lane occurrence bookkeeping + bit flip (cf. _maybe_inject).

        Lanes whose flip has fired (and lanes that left the group) are
        disarmed in place: their occurrence count is frozen at the fire
        point, so a later peel hands the drain an exact prefix count
        while the lockstep loop stops paying for bookkeeping.
        """
        disarm = False
        for lane in lanes_armed:
            if not sim.live[lane]:
                disarm = True
                continue
            sim.occurrence[lane] += 1
            if sim.occurrence[lane] != sim.inject_occurrence[lane]:
                continue
            sim.activated[lane] = True
            disarm = True
            if type(value) is _ND:
                value = value.copy()  # never mutate a shared array
            else:
                value = _promote(value, sim.lanes, value_type)
            value[lane] = flip_bit_typed(
                _lane_value(value, lane), sim.inject_bit[lane], value_type
            )
        if disarm:
            lanes_armed[:] = [
                lane for lane in lanes_armed
                if sim.live[lane]
                and sim.occurrence[lane] < sim.inject_occurrence[lane]
            ]
        return value

    # ------------------------------------------------------------------
    # Lockstep interpretation loop (mirrors engine._capture_loop)
    # ------------------------------------------------------------------

    def _bcall(self, sim: _GroupState, compiled, args, caller_step: int):
        if sim.call_depth >= self.engine.stack_limit:
            raise StackOverflow(
                f"call depth exceeded {self.engine.stack_limit}"
            )
        sim.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[: compiled.n_args] = args
        records = sim.records
        if records:
            records[-1][4] = caller_step
        record = [compiled, frame, compiled.entry, None, -1]
        records.append(record)
        try:
            return self._bloop(sim, compiled, frame, compiled.entry, None,
                               record)
        finally:
            records.pop()
            sim.call_depth -= 1
            sim.memory.free(frame.owned)

    def _bphi_moves(self, sim: _GroupState, frame, block, previous) -> None:
        if block.phi_moves is None:
            return
        moves = block.phi_moves.get(previous)
        if moves:
            values = [fetch(frame) for _d, fetch, _i, _t in moves]
            armed = sim.armed
            for (dest, _fetch, iid, value_type), value in zip(moves, values):
                lanes_armed = armed.get(iid)
                if lanes_armed:
                    value = self._binject(sim, value, value_type, lanes_armed)
                frame.slots[dest] = value

    def _branch_target(self, sim: _GroupState, frame, cblock):
        """Resolve a conditional branch; peels minority lanes if the
        condition diverges across live lanes."""
        fetch, true_block, false_block = cblock.term_payload
        cond = fetch(frame)
        if type(cond) is not _ND:
            return true_block if cond else false_block
        taken_live = (cond != 0) & sim.live_mask
        n_taken = int(taken_live.sum())
        if n_taken == sim.n_live:
            return true_block
        if n_taken == 0:
            return false_block
        if 2 * n_taken >= sim.n_live:
            fallers = np.nonzero(sim.live_mask & ~taken_live)[0].tolist()
            self._peel_lanes(sim, fallers, false_block, cblock)
            return true_block
        takers = np.nonzero(taken_live)[0].tolist()
        self._peel_lanes(sim, takers, true_block, cblock)
        return false_block

    def _bloop(self, sim: _GroupState, compiled, frame, block, previous,
               record):
        block_counts = sim.block_counts
        while True:
            record[2] = block
            record[3] = previous
            self._bphi_moves(sim, frame, block, previous)
            sim.dynamic_count += block.cost
            if sim.dynamic_count > sim.budget:
                raise HangFault(sim.dynamic_count)
            block_counts[block.ordinal] += 1
            for bstep in self._block_steps(compiled, block):
                bstep(sim, frame)
            kind = block.term_kind
            if kind == _T_JUMP:
                previous = block
                block = block.term_payload
            elif kind == _T_CBR:
                target = self._branch_target(sim, frame, block)
                previous = block
                block = target
            else:  # _T_RET
                fetch = block.term_payload
                return fetch(frame) if fetch is not None else None

    def _bloop_from(self, sim: _GroupState, compiled, frame, cblock,
                    start: int, record):
        """Finish a mid-block resumed frame, then rejoin the main loop."""
        steps = self._block_steps(compiled, cblock)
        for index in range(start, len(steps)):
            steps[index](sim, frame)
        kind = cblock.term_kind
        if kind == _T_JUMP:
            block = cblock.term_payload
        elif kind == _T_CBR:
            block = self._branch_target(sim, frame, cblock)
        else:  # _T_RET
            fetch = cblock.term_payload
            return fetch(frame) if fetch is not None else None
        return self._bloop(sim, compiled, frame, block, cblock, record)

    def _bresume_frame(self, sim: _GroupState, snapshot: Snapshot,
                       depth: int):
        """Rebuild one suspended activation record in lockstep form
        (mirrors engine._resume_frame: callee first, then the call's
        return value placement, then the rest of the block)."""
        frec = snapshot.frames[depth]
        compiled = frec.compiled
        sim.call_depth += 1
        frame = _Frame(compiled.n_slots)
        frame.slots[:] = frec.slots
        frame.allocas.update(frec.allocas)
        frame.owned.extend(frec.owned)
        record = [compiled, frame, frec.cblock, frec.previous,
                  frec.step_index]
        sim.records.append(record)
        try:
            if depth + 1 < len(snapshot.frames):
                value = self._bresume_frame(sim, snapshot, depth + 1)
                cblock = frec.cblock
                inst = cblock.step_insts[frec.step_index]
                if inst.has_result:
                    lanes_armed = sim.armed.get(inst.iid)
                    if lanes_armed:
                        value = self._binject(sim, value, inst.type,
                                              lanes_armed)
                    frame.slots[compiled.slot_of[id(inst)]] = value
                return self._bloop_from(sim, compiled, frame, cblock,
                                        frec.step_index + 1, record)
            return self._bloop(sim, compiled, frame, frec.cblock,
                               frec.previous, record)
        finally:
            sim.records.pop()
            sim.call_depth -= 1
            sim.memory.free(frame.owned)

    # ------------------------------------------------------------------
    # Per-lane evaluation helpers
    # ------------------------------------------------------------------

    def _per_lane_binop(self, sim: _GroupState, evaluate, a, b, value_type):
        """Trap-capable binop, lane by lane, through the scalar helper."""
        out = _lane_array(sim.lanes, value_type)
        crashed = []
        for lane in sim.live_list:
            try:
                out[lane] = evaluate(_lane_value(a, lane),
                                     _lane_value(b, lane))
            except ArithmeticTrap as fault:
                crashed.append((lane, str(fault)))
        for lane, reason in crashed:
            self._finish_lane(sim, lane, CRASH, reason, divergence=True)
        if sim.n_live == 0:
            raise _AllLanesDone
        return out

    # ------------------------------------------------------------------
    # Batch-step compilation
    # ------------------------------------------------------------------

    def _block_steps(self, compiled, cblock):
        steps = self._bsteps.get(id(cblock))
        if steps is None:
            steps = [
                self._compile_bstep(compiled, inst, index)
                for index, inst in enumerate(cblock.step_insts)
            ]
            self._bsteps[id(cblock)] = steps
        return steps

    def _compile_bstep(self, compiled, inst, step_index):
        if isinstance(inst, BinOp):
            return self._bstep_binop(compiled, inst)
        if isinstance(inst, ICmp):
            return self._bstep_icmp(compiled, inst)
        if isinstance(inst, FCmp):
            return self._bstep_fcmp(compiled, inst)
        if isinstance(inst, Cast):
            return self._bstep_cast(compiled, inst)
        if isinstance(inst, Alloca):
            return self._bstep_alloca(compiled, inst)
        if isinstance(inst, Load):
            return self._bstep_load(compiled, inst)
        if isinstance(inst, Store):
            return self._bstep_store(compiled, inst)
        if isinstance(inst, GetElementPtr):
            return self._bstep_gep(compiled, inst)
        if isinstance(inst, Call):
            return self._bstep_call(compiled, inst, step_index)
        if isinstance(inst, Output):
            return self._bstep_output(compiled, inst)
        if isinstance(inst, Select):
            return self._bstep_select(compiled, inst)
        if isinstance(inst, Detect):
            return self._bstep_detect(compiled, inst)
        raise InterpreterBug(f"cannot batch-compile {inst!r}")

    def _bstep_binop(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.lhs)
        fetch_b = self.engine._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        op = inst.op
        bits = value_type.bits
        binject = self._binject
        per_lane = self._per_lane_binop

        if value_type.is_float:
            scalar = lambda a, b: eval_float_binop(op, a, b, bits)
            vector = _float_vector_op(op, bits)
        else:
            scalar = lambda a, b: eval_int_binop(op, a, b, bits)
            vector = _int_vector_op(op, bits)

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                value = scalar(a, b)  # uniform; a trap hits every lane
            elif vector is not None:
                value = vector(a, b)
            else:
                value = per_lane(sim, scalar, a, b, value_type)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_icmp(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.lhs)
        fetch_b = self.engine._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        predicate = inst.predicate
        bits = inst.lhs.type.bits
        value_type = inst.type
        binject = self._binject
        vector = _icmp_vector(predicate, bits)

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                value = eval_icmp(predicate, a, b, bits)
            else:
                value = vector(a, b).astype(np.uint64)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_fcmp(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.lhs)
        fetch_b = self.engine._fetch(compiled, inst.rhs)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        predicate = inst.predicate
        value_type = inst.type
        binject = self._binject
        vector = _fcmp_vector(predicate)

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                value = eval_fcmp(predicate, a, b)
            elif vector is not None:
                value = vector(a, b).astype(np.uint64)
            else:  # pragma: no cover - all IR predicates are vectorized
                out = _lane_array(sim.lanes, value_type)
                for lane in sim.live_list:
                    out[lane] = eval_fcmp(
                        predicate, _lane_value(a, lane), _lane_value(b, lane)
                    )
                value = out
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_cast(self, compiled, inst):
        fetch = self.engine._fetch(compiled, inst.value)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        op = inst.op
        from_type = inst.value.type
        to_type = inst.type
        binject = self._binject

        if op == "trunc":
            to_mask = mask(to_type.bits)
            vector = lambda a: a & to_mask
        elif op == "zext":
            vector = lambda a: a  # canonical form is width-independent
        elif op == "sext":
            from_bits = from_type.bits
            to_mask = mask(to_type.bits)
            vector = lambda a: (
                _signed_vec(a, from_bits).astype(np.uint64) & np.uint64(to_mask)
            )
        else:
            vector = None  # fp casts & conversions: exact per-lane helper

        def bstep(sim, frame):
            a = fetch(frame)
            if type(a) is not _ND:
                value = eval_cast(op, a, from_type, to_type)
            elif vector is not None:
                value = vector(a)
            else:
                out = _lane_array(sim.lanes, to_type)
                for lane in sim.live_list:
                    out[lane] = eval_cast(
                        op, _lane_value(a, lane), from_type, to_type
                    )
                value = out
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, to_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_alloca(self, compiled, inst):
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        count = inst.count
        elem_size = inst.elem_type.size_bytes
        value_type = inst.type
        binject = self._binject

        def bstep(sim, frame):
            address = frame.allocas.get(iid)
            if address is None:
                address, elements = sim.memory.allocate_stack(
                    count, elem_size
                )
                frame.allocas[iid] = address
                frame.owned.extend(elements)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                address = binject(sim, address, value_type, lanes_armed)
            frame.slots[dest] = address

        return bstep

    def _bstep_load(self, compiled, inst):
        fetch = self.engine._fetch(compiled, inst.pointer)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        default = default_value(value_type)
        binject = self._binject
        is_float = value_type.is_float
        unsigned_max = 0 if is_float else value_type.max_unsigned

        def coerce_scalar(value):
            # The scalar tier's reinterpret fast path, verbatim.
            if is_float:
                if value.__class__ is not float:
                    return reinterpret_loaded(value, value_type)
            elif value.__class__ is float or value > unsigned_max:
                return reinterpret_loaded(value, value_type)
            return value

        def coerce_lanes(sim, value):
            kind = value.dtype.kind
            if is_float:
                if kind == "f":
                    return value
            elif kind == "u" and bool((value <= unsigned_max).all()):
                return value
            out = _lane_array(sim.lanes, value_type)
            for lane in sim.live_list:
                cell = value[lane] if kind == "O" else _lane_value(value, lane)
                if cell is _MISSING:
                    cell = default
                out[lane] = coerce_scalar(cell)
            return out

        def load_uniform(sim, address):
            value = sim.memory.load(address, default)
            if type(value) is _ND:
                return coerce_lanes(sim, value)
            return coerce_scalar(value)

        def bstep(sim, frame):
            address = fetch(frame)
            if type(address) is not _ND:
                value = load_uniform(sim, address)
            else:
                # Addresses only *look* divergent once a lane has died
                # with a corrupted pointer left in the array — check the
                # live lanes and take the uniform path when they agree.
                live_list = sim.live_list
                first = int(address[live_list[0]])
                if len(live_list) == 1 or bool(
                    (address[live_list] == first).all()
                ):
                    value = load_uniform(sim, first)
                else:
                    out = _lane_array(sim.lanes, value_type)
                    faulted = []
                    memory = sim.memory
                    for lane in live_list:
                        lane_address = int(address[lane])
                        try:
                            cell = memory.load(lane_address, default)
                        except MemoryFault as fault:
                            faulted.append((lane, str(fault)))
                            continue
                        cell = _lane_value(cell, lane)
                        if cell is _MISSING:
                            cell = default
                        out[lane] = coerce_scalar(cell)
                    for lane, reason in faulted:
                        self._finish_lane(sim, lane, CRASH, reason,
                                          divergence=True)
                    if sim.n_live == 0:
                        raise _AllLanesDone
                    value = out
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_store(self, compiled, inst):
        fetch_value = self.engine._fetch(compiled, inst.value)
        fetch_pointer = self.engine._fetch(compiled, inst.pointer)

        def bstep(sim, frame):
            address = fetch_pointer(frame)
            value = fetch_value(frame)
            if type(address) is not _ND:
                sim.memory.store(address, value)  # uniform (value may be lanes)
                return
            live_list = sim.live_list
            first = int(address[live_list[0]])
            if len(live_list) == 1 or bool(
                (address[live_list] == first).all()
            ):
                # Stale addresses in dead lanes: live lanes still agree,
                # so this is a uniform store after all.
                sim.memory.store(first, value)
                return
            # Divergent addresses: scatter per lane into object-dtype
            # cells so each lane keeps its own view of memory.
            memory = sim.memory
            faulted = []
            for lane in live_list:
                lane_address = int(address[lane])
                if lane_address not in memory.valid:
                    faulted.append(
                        (lane, str(MemoryFault(lane_address, "store")))
                    )
                    continue
                cell = memory.cells.get(lane_address, _MISSING)
                if type(cell) is not _ND or cell.dtype.kind != "O":
                    cell = _object_copy(cell, sim.lanes)
                else:
                    cell = cell.copy()
                cell[lane] = _lane_value(value, lane)
                memory.cells[lane_address] = cell
            for lane, reason in faulted:
                self._finish_lane(sim, lane, CRASH, reason, divergence=True)
            if sim.n_live == 0:
                raise _AllLanesDone

        return bstep

    def _bstep_gep(self, compiled, inst):
        fetch_base = self.engine._fetch(compiled, inst.base)
        fetch_index = self.engine._fetch(compiled, inst.index)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        elem_size = inst.elem_size
        index_bits = inst.index.type.bits
        value_type = inst.type
        binject = self._binject

        def bstep(sim, frame):
            base = fetch_base(frame)
            index = fetch_index(frame)
            if type(base) is not _ND and type(index) is not _ND:
                value = (
                    base + to_signed(index, index_bits) * elem_size
                ) & _MASK64
            else:
                # Offsets in the uint64 wrap domain: sign-extend the
                # index to 64 bits, multiply and add mod 2^64 — exactly
                # the scalar tier's `(base + signed*size) & _MASK64`.
                if type(index) is _ND:
                    offset = _sext64_vec(index, index_bits) * np.uint64(
                        elem_size
                    )
                else:
                    offset = (
                        to_signed(index, index_bits) * elem_size
                    ) & _MASK64
                value = (base + offset) & np.uint64(_MASK64)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_call(self, compiled, inst, step_index):
        fetches = [
            self.engine._fetch(compiled, arg) for arg in inst.args
        ]
        callee = inst.callee
        result_type = inst.type
        has_result = inst.has_result
        dest = compiled.slot_of[id(inst)] if has_result else -1
        iid = inst.iid
        binject = self._binject

        if is_intrinsic(callee) and callee not in self.engine.module.functions:
            def bstep(sim, frame):
                args = [fetch(frame) for fetch in fetches]
                if any(type(arg) is _ND for arg in args):
                    out = _lane_array(sim.lanes, result_type)
                    for lane in sim.live_list:
                        out[lane] = call_intrinsic(
                            callee,
                            [_lane_value(arg, lane) for arg in args],
                            result_type,
                        )
                    value = out
                else:
                    value = call_intrinsic(callee, args, result_type)
                lanes_armed = sim.armed.get(iid)
                if lanes_armed:
                    value = binject(sim, value, result_type, lanes_armed)
                frame.slots[dest] = value
            return bstep

        compiled_map = self.engine._compiled
        bcall = self._bcall

        def bstep(sim, frame):
            args = [fetch(frame) for fetch in fetches]
            value = bcall(sim, compiled_map[callee], args, step_index)
            if has_result:
                lanes_armed = sim.armed.get(iid)
                if lanes_armed:
                    value = binject(sim, value, result_type, lanes_armed)
                frame.slots[dest] = value

        return bstep

    def _bstep_output(self, compiled, inst):
        fetch = self.engine._fetch(compiled, inst.value)
        value_type = inst.value.type
        precision = inst.precision

        def bstep(sim, frame):
            value = fetch(frame)
            if type(value) is not _ND:
                sim.outputs.append(
                    format_output(value, value_type, precision)
                )
            else:
                entry = [""] * sim.lanes
                for lane in sim.live_list:
                    entry[lane] = format_output(
                        _lane_value(value, lane), value_type, precision
                    )
                sim.outputs.append(entry)

        return bstep

    def _bstep_select(self, compiled, inst):
        fetch_cond = self.engine._fetch(compiled, inst.cond)
        fetch_true = self.engine._fetch(compiled, inst.true_value)
        fetch_false = self.engine._fetch(compiled, inst.false_value)
        dest = compiled.slot_of[id(inst)]
        iid = inst.iid
        value_type = inst.type
        binject = self._binject
        dtype = np.float64 if value_type.is_float else np.uint64

        def bstep(sim, frame):
            cond = fetch_cond(frame)
            if type(cond) is not _ND:
                value = fetch_true(frame) if cond else fetch_false(frame)
            else:
                value = np.where(
                    cond != 0, fetch_true(frame), fetch_false(frame)
                )
                if value.dtype != dtype:
                    value = value.astype(dtype)
            lanes_armed = sim.armed.get(iid)
            if lanes_armed:
                value = binject(sim, value, value_type, lanes_armed)
            frame.slots[dest] = value

        return bstep

    def _bstep_detect(self, compiled, inst):
        fetch_a = self.engine._fetch(compiled, inst.original)
        fetch_b = self.engine._fetch(compiled, inst.duplicate)
        is_float = inst.original.type.is_float
        iid = inst.iid

        def bstep(sim, frame):
            a = fetch_a(frame)
            b = fetch_b(frame)
            if type(a) is not _ND and type(b) is not _ND:
                if a == b:
                    return
                if is_float and a != a and b != b:
                    return
                raise DetectionTrap(f"detect #{iid}: {a!r} != {b!r}")
            tripped = []
            for lane in list(sim.live_list):
                lane_a = _lane_value(a, lane)
                lane_b = _lane_value(b, lane)
                if lane_a == lane_b:
                    continue
                if is_float and lane_a != lane_a and lane_b != lane_b:
                    continue
                tripped.append(
                    (lane, f"detect #{iid}: {lane_a!r} != {lane_b!r}")
                )
            for lane, reason in tripped:
                self._finish_lane(sim, lane, DETECTED, reason,
                                  divergence=True)
            if sim.n_live == 0:
                raise _AllLanesDone

        return bstep
