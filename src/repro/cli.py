"""Command line interface: ``python -m repro <command>``.

Commands mirror the development cycle of Fig. 1a: inspect a program,
predict its SDC probabilities (no FI), validate with fault injection,
and protect it under an overhead budget — plus runners for the paper's
experiments.
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench.registry import BENCHMARK_NAMES, all_benchmarks, build_module
from .cache import (
    analysis_stats_line,
    configure_cache,
    get_cache,
    load_cached_profile,
    module_fingerprint,
    profile_key,
    store_cached_profile,
)
from .core.simple_models import MODEL_NAMES, create_model
from .fi.campaign import OUTCOMES, CampaignResult
from .fi.parallel import (
    CampaignInterrupted,
    CampaignSettings,
    ModuleSpec,
    run_cached_campaign,
)
from .harness.context import ExperimentConfig, Workspace
from .harness.runner import EXPERIMENTS, run_experiment
from .interp.codegen import TIER_BATCH, TIER_CLOSURE, TIER_CODEGEN
from .ir.module import Module
from .ir.printer import format_instruction, print_module
from .opt.pipeline import optimize
from .profiling.profile import ProgramProfile
from .profiling.profiler import ProfilingInterpreter
from .protection.evaluate import evaluate_protection
from .report.resilience import generate_report


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TRIDENT reproduction: soft-error propagation modeling",
    )
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache root (default: $REPRO_CACHE_DIR "
                             "or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed artifact cache")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the Table I benchmarks")

    fingerprint = commands.add_parser(
        "fingerprint",
        help="print content fingerprints of benchmark modules "
             "(CI uses these as cache keys)",
    )
    fingerprint.add_argument("benchmark", nargs="?", default=None,
                             help="one benchmark (default: all)")
    fingerprint.add_argument("--scale", default="default",
                             choices=("test", "small", "default", "large"))
    fingerprint.add_argument("--json", action="store_true",
                             help="emit a JSON object mapping benchmark "
                                  "name to fingerprint (machine consumers: "
                                  "CI, the nightly bench harness)")

    show = commands.add_parser("show", help="print a benchmark's IR")
    _add_benchmark_args(show)

    analyze = commands.add_parser(
        "analyze", help="predict SDC probabilities (no fault injection)"
    )
    _add_benchmark_args(analyze)
    analyze.add_argument("--model", choices=MODEL_NAMES, default="trident")
    analyze.add_argument("--samples", type=int, default=3000,
                         help="dynamic instances to sample (paper: 3000)")
    analyze.add_argument("--top", type=int, default=10,
                         help="how many SDC-prone instructions to list")
    analyze.add_argument("--opt-level", type=int, default=0,
                         choices=(0, 1, 2),
                         help="optimize before analyzing (2 = SSA form)")
    analyze.add_argument("--explain", action="store_true",
                         help="print the query DAG and per-query "
                              "hit/miss/recompute counters")

    cache = commands.add_parser(
        "cache", help="inspect or maintain the artifact cache"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_commands.add_parser(
        "stats", help="per-kind entry counts and sizes of the on-disk store"
    )
    prune = cache_commands.add_parser(
        "prune", help="evict least-recently-written entries to fit a budget"
    )
    prune.add_argument("--max-bytes", type=int, required=True,
                       help="target size of the cache root, in bytes")
    cache_commands.add_parser("clear", help="remove every stored artifact")

    report = commands.add_parser(
        "report", help="generate a markdown resilience report"
    )
    _add_benchmark_args(report)
    report.add_argument("--target", type=float, default=None,
                        help="target SDC probability, e.g. 0.05")
    report.add_argument("--budget", type=float, default=1 / 3)
    report.add_argument("--fi-runs", type=int, default=0,
                        help="validate the report with an FI campaign of "
                             "up to this many runs (0 = predictions only)")
    _add_campaign_args(report)

    inject = commands.add_parser(
        "inject", help="run a fault injection campaign (ground truth)"
    )
    _add_benchmark_args(inject)
    inject.add_argument("--runs", type=int, default=1000,
                        help="maximum injection runs")
    _add_campaign_args(inject)

    protect = commands.add_parser(
        "protect", help="selective duplication under an overhead budget"
    )
    _add_benchmark_args(protect)
    protect.add_argument("--model", choices=MODEL_NAMES, default="trident")
    protect.add_argument("--budget", type=float, default=1 / 3,
                         help="fraction of full-duplication overhead")
    protect.add_argument("--runs", type=int, default=600,
                         help="FI runs for the evaluation")

    experiment = commands.add_parser(
        "experiment", help="regenerate a table/figure of the paper"
    )
    experiment.add_argument("id", choices=list(EXPERIMENTS) + ["all"])
    experiment.add_argument("--scale", default="test")
    experiment.add_argument("--fi-samples", type=int, default=400)
    experiment.add_argument("--workers", type=int, default=1,
                            help="worker processes for FI campaigns")
    experiment.add_argument("--ci-halfwidth", type=float, default=None,
                            help="stop FI campaigns early at this Wilson "
                                 "95%% CI half-width on the SDC probability")
    _add_checkpoint_args(experiment)
    _add_interp_args(experiment)

    serve = commands.add_parser(
        "serve", help="run the campaign service daemon (JSON over HTTP)"
    )
    serve.add_argument("--host", default=None,
                       help="bind address (default: $REPRO_SERVE_HOST "
                            "or 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port, 0 = ephemeral (default: "
                            "$REPRO_SERVE_PORT or 8321)")
    serve.add_argument("--workers", type=int, default=None,
                       help="default worker processes per campaign "
                            "(default: $REPRO_SERVE_WORKERS or 1)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="queue capacity before submits get 429 "
                            "(default: $REPRO_SERVE_MAX_PENDING or 64)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening "
                            "(lets scripts use --port 0)")

    submit = commands.add_parser(
        "submit", help="submit a campaign to a running repro serve daemon"
    )
    _add_benchmark_args(submit)
    submit.add_argument("--runs", type=int, default=1000,
                        help="maximum injection runs")
    _add_campaign_args(submit)
    _add_service_args(submit)
    submit.add_argument("--priority", default="interactive",
                        choices=("interactive", "nightly"),
                        help="queue class (nightly yields to interactive)")
    submit.add_argument("--no-wait", action="store_true",
                        help="return the job id immediately instead of "
                             "waiting for the result")
    submit.add_argument("--json", action="store_true",
                        help="print the raw job JSON instead of the "
                             "campaign summary")

    status = commands.add_parser(
        "status", help="inspect a running repro serve daemon"
    )
    status.add_argument("job_id", nargs="?", default=None,
                        help="one job (default: daemon health, queue "
                             "and store stats)")
    _add_service_args(status)
    status.add_argument("--wait", action="store_true",
                        help="block until the named job finishes")
    status.add_argument("--json", action="store_true",
                        help="print the raw JSON response")
    return parser


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default=None,
                        help="daemon address (default: $REPRO_SERVE_HOST "
                             "or 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="daemon port (default: $REPRO_SERVE_PORT "
                             "or 8321)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="client-side request timeout in seconds")


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed; results are reproducible for "
                             "a given seed regardless of --workers")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial, in-process)")
    parser.add_argument("--ci-halfwidth", type=float, default=None,
                        help="stop early once the Wilson 95%% CI half-width "
                             "on the SDC probability is below this "
                             "(paper methodology: 0.01)")
    _add_checkpoint_args(parser)
    _add_interp_args(parser)


def _add_interp_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--interp-tier", default=None,
                        choices=(TIER_CODEGEN, TIER_CLOSURE, TIER_BATCH),
                        help="interpreter execution tier (default: "
                             "REPRO_INTERP_TIER env, else codegen; "
                             "outcomes are identical on every tier)")
    parser.add_argument("--batch-lanes", type=int, default=0,
                        metavar="N",
                        help="trials per lockstep group on the batch "
                             "tier (0 = tier default; counts are "
                             "identical for any lane count)")


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="fork FI trials from golden-prefix snapshots "
                             "(suffix-only execution; counts are identical "
                             "either way)")
    parser.add_argument("--checkpoint-stride", type=int, default=0,
                        metavar="N",
                        help="dynamic instructions between snapshots "
                             "(0 = auto)")


def _add_benchmark_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", default="default",
                        choices=("test", "small", "default", "large"))
    parser.add_argument("--input-seed", type=int, default=0)


def main(argv=None, out=sys.stdout) -> int:
    args = build_argument_parser().parse_args(argv)
    configure_cache(args.cache_dir, enabled=not args.no_cache)
    handler = {
        "list": _cmd_list,
        "fingerprint": _cmd_fingerprint,
        "show": _cmd_show,
        "analyze": _cmd_analyze,
        "inject": _cmd_inject,
        "protect": _cmd_protect,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
    }[args.command]
    return handler(args, out)


def _profile_for(module: Module) -> ProgramProfile:
    """Profile a module through the artifact cache (hit = no re-run)."""
    cache = get_cache()
    key = profile_key(module_fingerprint(module))
    cached = load_cached_profile(cache, key)
    if cached is not None:
        return cached
    profile, outputs = ProfilingInterpreter(module).run()
    store_cached_profile(cache, key, profile, outputs)
    return profile


def _print_cache_summary(out) -> None:
    cache = get_cache()
    if cache.enabled:
        print(cache.stats.summary(), file=out)
    analyses = analysis_stats_line()
    if analyses:
        print(analyses, file=out)


# ---------------------------------------------------------------------------


def _cmd_list(_args, out) -> int:
    print(f"{'name':14s} {'suite':32s} {'area':34s}", file=out)
    for spec in all_benchmarks():
        print(f"{spec.name:14s} {spec.suite:32s} {spec.area:34s}", file=out)
    return 0


def _cmd_fingerprint(args, out) -> int:
    """Stable content addresses, one per line: ``<sha256>  <name>``.

    CI keys its restored ``.repro-cache/`` on this output, so the cache
    is invalidated exactly when some module's canonical IR changes.
    """
    names = (args.benchmark,) if args.benchmark else BENCHMARK_NAMES
    if args.benchmark and args.benchmark not in BENCHMARK_NAMES:
        print(f"unknown benchmark {args.benchmark!r}; "
              f"available: {', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    fingerprints = {
        name: module_fingerprint(build_module(name, args.scale))
        for name in names
    }
    if args.json:
        print(json.dumps({"scale": args.scale,
                          "fingerprints": fingerprints},
                         indent=2, sort_keys=True), file=out)
        return 0
    for name, fingerprint in fingerprints.items():
        print(f"{fingerprint}  {name}", file=out)
    return 0


def _cmd_show(args, out) -> int:
    module = build_module(args.benchmark, args.scale, args.input_seed)
    print(print_module(module), file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    module = build_module(args.benchmark, args.scale, args.input_seed)
    if args.opt_level:
        module, opt_report = optimize(module, args.opt_level)
        print(f"optimized at O{args.opt_level}: "
              f"{opt_report.before_instructions} -> "
              f"{opt_report.after_instructions} static instructions "
              f"({opt_report.slots_promoted} slots promoted)", file=out)
    profile = _profile_for(module)
    model = create_model(args.model, module, profile)
    overall = model.overall_sdc(samples=args.samples)
    print(f"program: {module.name} ({module.num_instructions} static, "
          f"{profile.dynamic_count} dynamic instructions)", file=out)
    print(f"model:   {args.model}", file=out)
    print(f"overall SDC probability:   {overall * 100:.2f}%", file=out)
    if args.model == "trident":
        crash = model.overall_crash(samples=args.samples)
        print(f"overall crash probability: {crash * 100:.2f}%", file=out)
    sdc_map = model.sdc_map()
    print(f"\ntop {args.top} SDC-prone instructions:", file=out)
    for iid in sorted(sdc_map, key=sdc_map.get, reverse=True)[: args.top]:
        inst = module.instruction(iid)
        print(f"  {sdc_map[iid] * 100:6.2f}%  {format_instruction(inst)}",
              file=out)
    if args.explain:
        print(file=out)
        for line in model.queries.explain():
            print(line, file=out)
    _print_cache_summary(out)
    return 0


def _cmd_cache(args, out) -> int:
    cache = get_cache()
    if not cache.enabled:
        print("artifact cache is disabled (--no-cache)", file=out)
        return 2
    if args.cache_command == "stats":
        usage = cache.disk_usage()
        if not usage:
            print(f"cache root {cache.root}: empty", file=out)
        else:
            print(f"cache root {cache.root}:", file=out)
            total_count = total_bytes = 0
            for kind in sorted(usage):
                count, size = usage[kind]
                total_count += count
                total_bytes += size
                print(f"  {kind:<12} {count:>6} entries  {size:>12,} bytes",
                      file=out)
            print(f"  {'total':<12} {total_count:>6} entries  "
                  f"{total_bytes:>12,} bytes", file=out)
        counters = cache.read_counters()
        if any(counters.values()):
            print("store counters:", file=out)
            for name in sorted(counters):
                print(f"  {name:<24} {counters[name]:>8}", file=out)
    elif args.cache_command == "prune":
        removed, freed = cache.prune(args.max_bytes)
        print(f"pruned {removed} entries ({freed:,} bytes freed)", file=out)
    elif args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries", file=out)
    return 0


def _run_campaign(args, runs: int) -> CampaignResult:
    spec = ModuleSpec.from_benchmark(
        args.benchmark, args.scale, args.input_seed
    )
    return run_cached_campaign(
        runs, seed=args.seed, spec=spec,
        settings=CampaignSettings(
            workers=max(1, args.workers), ci_halfwidth=args.ci_halfwidth,
            checkpoint=args.checkpoint,
            checkpoint_stride=args.checkpoint_stride,
            interp_tier=args.interp_tier,
            batch_lanes=args.batch_lanes,
        ),
    )


def _print_campaign_summary(campaign: CampaignResult, out) -> None:
    stopped = ""
    if campaign.stopped_early:
        stopped = (f" (stopped early after {campaign.rounds} rounds: "
                   f"CI target met)")
    print(f"runs executed: {campaign.total}/{campaign.runs_requested}"
          f"{stopped}", file=out)
    if campaign.from_cache:
        print(f"replayed from the artifact cache "
              f"({campaign.cpu_seconds:.2f} CPU s saved)", file=out)
    else:
        workers = (f"{campaign.workers} "
                   f"worker{'s' if campaign.workers != 1 else ''}")
        if campaign.degraded:
            workers += " (pool degraded to serial)"
        print(f"wall clock: {campaign.wall_seconds:.2f} s on {workers} "
              f"({campaign.cpu_seconds:.2f} CPU s)", file=out)
        if campaign.dynamic_instructions:
            mode = "checkpointed" if campaign.checkpointed else "cold"
            if campaign.checkpoint_degraded:
                mode += ", degraded to cold runs"
            print(f"throughput: {campaign.dynamic_instructions:,} dynamic "
                  f"instructions ({campaign.instructions_per_second:,.0f}/s, "
                  f"{campaign.skipped_instructions:,} prefix-skipped, "
                  f"{campaign.snapshot_bytes:,} snapshot bytes; {mode})",
                  file=out)
        if campaign.interp_tier:
            tier = f"interp tier: {campaign.interp_tier}"
            if campaign.interp_tier == TIER_CODEGEN:
                tier += (f" ({campaign.codegen_functions} functions "
                         f"compiled, {campaign.codegen_fallbacks} "
                         f"fallbacks)")
            elif campaign.interp_tier == TIER_BATCH:
                tier += (f" ({campaign.batch_lanes} lanes, "
                         f"{campaign.batch_divergences} divergences"
                         + (f", {campaign.batch_fallbacks} fallbacks"
                            if campaign.batch_fallbacks else "") + ")")
            print(tier, file=out)
            if campaign.interp_tier == TIER_BATCH:
                print(f"reconvergence: {campaign.batch_reconverged} "
                      f"branches re-merged, {campaign.batch_drains} "
                      f"lanes drained "
                      f"({campaign.drain_fraction * 100:.1f}% of "
                      f"instructions on the drain path)", file=out)
    _print_cache_summary(out)


def _cmd_inject(args, out) -> int:
    try:
        campaign = _run_campaign(args, args.runs)
    except CampaignInterrupted as exc:
        _print_interrupted(exc.result, args.benchmark, out)
        return 130
    print(f"program: {args.benchmark}; {campaign.total} injections",
          file=out)
    for outcome in OUTCOMES:
        probability = campaign.probability(outcome)
        margin = campaign.margin_of_error(outcome)
        print(f"  {outcome:9s} {probability * 100:6.2f}% "
              f"(± {margin * 100:.2f}%)", file=out)
    _print_campaign_summary(campaign, out)
    return 0


def _print_interrupted(partial, benchmark: str, out) -> int:
    """Report a Ctrl-C'd campaign: partial counts + resumable ranges."""
    print(f"interrupted: {benchmark}; {partial.total}/"
          f"{partial.runs_requested} injections completed", file=out)
    for outcome in OUTCOMES:
        probability = partial.probability(outcome)
        print(f"  {outcome:9s} {probability * 100:6.2f}%", file=out)
    if partial.completed_ranges:
        spans = ", ".join(f"[{start}, {start + count})"
                          for start, count in partial.completed_ranges)
        print(f"completed seed ranges: {spans}", file=out)
        print("completed shards are checkpointed in the result store; "
              "re-run the same command to resume", file=out)
    return 130


def _cmd_protect(args, out) -> int:
    module = build_module(args.benchmark, args.scale, args.input_seed)
    profile = _profile_for(module)
    outcome = evaluate_protection(
        module, profile, args.model, args.budget, fi_samples=args.runs
    )
    print(f"program: {module.name}; model: {args.model}; "
          f"budget: {args.budget:.0%} of full duplication", file=out)
    print(f"instructions protected: {len(outcome.selected_iids)}", file=out)
    print(f"measured overhead:      {outcome.measured_overhead:.1%}",
          file=out)
    print(f"SDC before:             {outcome.baseline_sdc:.2%}", file=out)
    print(f"SDC after:              {outcome.protected_sdc:.2%}", file=out)
    print(f"SDC reduction:          {outcome.sdc_reduction:.0%}", file=out)
    print(f"faults detected:        "
          f"{outcome.protected.detected_probability:.2%}", file=out)
    _print_cache_summary(out)
    return 0


def _cmd_report(args, out) -> int:
    module = build_module(args.benchmark, args.scale, args.input_seed)
    profile = _profile_for(module)
    fi = _run_campaign(args, args.fi_runs) if args.fi_runs > 0 else None
    report = generate_report(
        module, profile, target_sdc=args.target,
        overhead_budget=args.budget, fi=fi,
    )
    print(report.render(), file=out)
    _print_cache_summary(out)
    return 0


def _cmd_experiment(args, out) -> int:
    config = ExperimentConfig(
        scale=args.scale,
        fi_samples=args.fi_samples,
        model_samples=args.fi_samples,
        fi_workers=args.workers,
        fi_ci_halfwidth=args.ci_halfwidth,
        fi_checkpoint=args.checkpoint,
        fi_checkpoint_stride=args.checkpoint_stride,
        interp_tier=args.interp_tier,
        batch_lanes=args.batch_lanes,
    )
    workspace = Workspace(config)
    names = list(EXPERIMENTS) if args.id == "all" else [args.id]
    for name in names:
        result = run_experiment(name, workspace)
        print(result.render(), file=out)
        print(file=out)
    _print_cache_summary(out)
    return 0


# -- service verbs ----------------------------------------------------------


def _client_for(args):
    from .serve import ServiceClient, default_host, default_port
    host = args.host if args.host is not None else default_host()
    port = args.port if args.port is not None else default_port()
    return ServiceClient(host, port, timeout=args.timeout)


def _cmd_serve(args, _out) -> int:
    from .serve import ServiceDaemon, run_daemon
    daemon = ServiceDaemon(
        host=args.host, port=args.port, workers=args.workers,
        max_pending=args.max_pending,
    )
    return run_daemon(daemon, port_file=args.port_file)


def _cmd_submit(args, out) -> int:
    from .serve import ServiceError
    client = _client_for(args)
    payload = {
        "benchmark": args.benchmark,
        "scale": args.scale,
        "input_seed": args.input_seed,
        "runs": args.runs,
        "seed": args.seed,
        "workers": max(1, args.workers),
        "checkpoint": args.checkpoint,
        "checkpoint_stride": args.checkpoint_stride,
        "batch_lanes": args.batch_lanes,
        "priority": args.priority,
    }
    if args.ci_halfwidth is not None:
        payload["ci_halfwidth"] = args.ci_halfwidth
    if args.interp_tier is not None:
        payload["interp_tier"] = args.interp_tier
    try:
        job = client.submit(payload, wait=not args.no_wait)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 3 if exc.status == 429 else 2
    except OSError as exc:
        print(f"cannot reach daemon at {client.host}:{client.port}: {exc}",
              file=sys.stderr)
        return 2
    return _print_job(job, args, out)


def _cmd_status(args, out) -> int:
    from .serve import ServiceError
    client = _client_for(args)
    try:
        if args.job_id:
            job = client.job(args.job_id, wait=args.wait)
            return _print_job(job, args, out)
        stats = client.stats()
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot reach daemon at {client.host}:{client.port}: {exc}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True), file=out)
        return 0
    print(f"daemon at {client.host}:{client.port}: "
          f"up {stats['uptime_seconds']:.1f} s", file=out)
    jobs = stats.get("jobs", {})
    if jobs:
        summary = " ".join(f"{status}={count}"
                           for status, count in sorted(jobs.items()))
        print(f"jobs: {summary}", file=out)
    print(f"queue pending: {stats.get('pending', 0)}", file=out)
    counters = stats.get("counters", {})
    if counters:
        summary = " ".join(f"{name}={counters[name]}"
                           for name in sorted(counters))
        print(f"scheduler: {summary}", file=out)
    store = stats.get("store", {})
    if store:
        state = "enabled" if store.get("enabled") else "disabled"
        print(f"store: {store.get('root')} ({state})", file=out)
        store_counters = store.get("counters", {})
        if any(store_counters.values()):
            summary = " ".join(
                f"{name}={store_counters[name]}"
                for name in sorted(store_counters) if store_counters[name]
            )
            print(f"store counters: {summary}", file=out)
    return 0


def _print_job(job: dict, args, out) -> int:
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True), file=out)
        return 1 if job.get("status") == "failed" else 0
    line = f"job {job['job_id']}: {job['status']}"
    extras = []
    if job.get("cached"):
        extras.append("served from the result store")
    if job.get("coalesced"):
        extras.append(f"coalesced {job['coalesced']} duplicate submits")
    if extras:
        line += " (" + "; ".join(extras) + ")"
    print(line, file=out)
    if job.get("status") == "failed":
        print(f"error: {job.get('error')}", file=out)
        return 1
    body = job.get("result")
    if body is None:
        print(f"fingerprint: {job['fingerprint']}", file=out)
        return 0
    campaign = CampaignResult.from_dict(body)
    print(f"fingerprint: {job['fingerprint']}; "
          f"{campaign.total} injections", file=out)
    for outcome in OUTCOMES:
        probability = campaign.probability(outcome)
        margin = campaign.margin_of_error(outcome)
        print(f"  {outcome:9s} {probability * 100:6.2f}% "
              f"(± {margin * 100:.2f}%)", file=out)
    if body.get("from_cache"):
        print("replayed from the shared result store "
              "(zero trials executed)", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
