"""Constant folding: evaluate instructions whose operands are constants.

Uses the interpreter's own semantics (:mod:`repro.interp.ops`) so folded
results are bit-identical to runtime results.  Potentially-trapping
instructions (division by a constant zero) are left in place — folding
them away would erase a runtime crash.
"""

from __future__ import annotations

from ..interp.errors import ArithmeticTrap
from ..interp.ops import (
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
)
from ..ir.function import Function
from ..ir.instructions import BinOp, Cast, FCmp, ICmp, Instruction, Select
from ..ir.values import Constant


def _fold(inst: Instruction):
    """The folded Constant, or None if the instruction cannot fold."""
    if not all(isinstance(op, Constant) for op in inst.operands):
        return None
    values = [op.value for op in inst.operands]
    try:
        if isinstance(inst, BinOp):
            if inst.type.is_float:
                result = eval_float_binop(inst.op, values[0], values[1],
                                          inst.type.bits)
            else:
                result = eval_int_binop(inst.op, values[0], values[1],
                                        inst.type.bits)
        elif isinstance(inst, ICmp):
            result = eval_icmp(inst.predicate, values[0], values[1],
                               inst.lhs.type.bits)
        elif isinstance(inst, FCmp):
            result = eval_fcmp(inst.predicate, values[0], values[1])
        elif isinstance(inst, Cast):
            result = eval_cast(inst.op, values[0], inst.value.type, inst.type)
        elif isinstance(inst, Select):
            result = values[1] if values[0] else values[2]
        else:
            return None
    except ArithmeticTrap:
        return None  # preserve the runtime trap
    return Constant(inst.type, result)


def replace_all_uses(inst: Instruction, replacement) -> None:
    """Point every user of ``inst`` at ``replacement``."""
    for user in list(inst.users):
        for index, operand in enumerate(user.operands):
            if operand is inst:
                user.replace_operand(index, replacement)


def fold_constants(function: Function) -> int:
    """Fold until fixpoint; returns the number of instructions folded."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                constant = _fold(inst)
                if constant is None:
                    continue
                replace_all_uses(inst, constant)
                block.remove(inst)
                folded += 1
                changed = True
    return folded
