"""Optimization pipeline: compose the passes at named levels.

``optimize(module, level)`` works on a clone (textual round-trip), so
the input module — possibly shared with other experiments — is never
mutated.  Levels:

* ``0`` — identity (the eDSL's clang -O0 style alloca/load/store form)
* ``1`` — constant folding + CFG simplification + DCE
* ``2`` — level 1, then mem2reg (SSA registers + phis), then cleanup

Level 2 approximates the -O2 register form the paper evaluates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .mem2reg import promote_to_registers
from .simplifycfg import simplify_cfg


@dataclass
class OptimizationReport:
    """What the pipeline did, per pass."""

    level: int
    constants_folded: int = 0
    cfg_rewrites: int = 0
    slots_promoted: int = 0
    instructions_removed: int = 0
    before_instructions: int = 0
    after_instructions: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def shrink_fraction(self) -> float:
        if self.before_instructions == 0:
            return 0.0
        return 1.0 - self.after_instructions / self.before_instructions


def optimize(module: Module, level: int = 2) -> tuple[Module, OptimizationReport]:
    """Optimize a clone of ``module`` at the given level."""
    if level not in (0, 1, 2):
        raise ValueError(f"unknown optimization level {level}")
    report = OptimizationReport(level)
    report.before_instructions = module.num_instructions
    clone = parse_module(print_module(module))
    if level == 0:
        report.after_instructions = clone.num_instructions
        return clone, report

    for function in clone.functions.values():
        report.constants_folded += fold_constants(function)
        report.cfg_rewrites += simplify_cfg(function)
        report.instructions_removed += eliminate_dead_code(function)
    if level >= 2:
        for function in clone.functions.values():
            report.slots_promoted += promote_to_registers(function)
            report.constants_folded += fold_constants(function)
            report.cfg_rewrites += simplify_cfg(function)
            report.instructions_removed += eliminate_dead_code(function)
    clone.finalize()
    report.after_instructions = clone.num_instructions
    return clone, report
