"""Optimization pipeline: compose the passes at named levels.

``optimize(module, level)`` works on a clone (textual round-trip), so
the input module — possibly shared with other experiments — is never
mutated.  Levels:

* ``0`` — identity (the eDSL's clang -O0 style alloca/load/store form)
* ``1`` — constant folding + CFG simplification + DCE
* ``2`` — level 1, then mem2reg (SSA registers + phis), then cleanup

Level 2 approximates the -O2 register form the paper evaluates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.manager import CFG_SHAPE_ANALYSES, notify_transform
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .mem2reg import promote_to_registers
from .simplifycfg import simplify_cfg


@dataclass
class OptimizationReport:
    """What the pipeline did, per pass."""

    level: int
    constants_folded: int = 0
    cfg_rewrites: int = 0
    slots_promoted: int = 0
    instructions_removed: int = 0
    before_instructions: int = 0
    after_instructions: int = 0
    notes: list[str] = field(default_factory=list)
    #: Functions at least one pass actually changed; everything else
    #: keeps its fingerprint, so its queries survive the transform.
    touched_functions: set[str] = field(default_factory=set)

    @property
    def shrink_fraction(self) -> float:
        if self.before_instructions == 0:
            return 0.0
        return 1.0 - self.after_instructions / self.before_instructions


#: Each pass with the analyses it preserves on the functions it touches
#: and the report counter it feeds.  Constant folding, DCE and mem2reg
#: rewrite straight-line instructions only (mem2reg's phis included), so
#: block shape — and every CFG-shape analysis — survives; simplifycfg
#: rewrites the graph itself and preserves nothing.
_PASSES = (
    (fold_constants, CFG_SHAPE_ANALYSES, "constants_folded"),
    (simplify_cfg, (), "cfg_rewrites"),
    (eliminate_dead_code, CFG_SHAPE_ANALYSES, "instructions_removed"),
)
_LEVEL2_PASSES = (
    (promote_to_registers, CFG_SHAPE_ANALYSES, "slots_promoted"),
) + _PASSES


def _run_passes(clone: Module, report: OptimizationReport, passes) -> None:
    """One pass sequence over every function, declaring each transform."""
    for pass_fn, preserved, counter in passes:
        touched = set()
        for function in clone.functions.values():
            changed = pass_fn(function)
            if changed:
                touched.add(function.name)
            setattr(report, counter, getattr(report, counter) + changed)
        if touched:
            notify_transform(clone, touched, preserved)
            report.touched_functions |= touched


def optimize(module: Module, level: int = 2) -> tuple[Module, OptimizationReport]:
    """Optimize a clone of ``module`` at the given level."""
    if level not in (0, 1, 2):
        raise ValueError(f"unknown optimization level {level}")
    report = OptimizationReport(level)
    report.before_instructions = module.num_instructions
    clone = parse_module(print_module(module))
    if level == 0:
        report.after_instructions = clone.num_instructions
        return clone, report

    _run_passes(clone, report, _PASSES)
    if level >= 2:
        _run_passes(clone, report, _LEVEL2_PASSES)
    clone.finalize()
    report.after_instructions = clone.num_instructions
    return clone, report
