"""Dead code elimination: remove unused, side-effect-free results."""

from __future__ import annotations

from ..interp.intrinsics import is_intrinsic
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
)

_PURE_CLASSES = (BinOp, Cast, ICmp, FCmp, Select, GetElementPtr, Load, Phi)


def _is_removable(inst: Instruction) -> bool:
    if not inst.has_result or inst.users:
        return False
    if isinstance(inst, _PURE_CLASSES):
        return True
    if isinstance(inst, Alloca):
        return True  # unused stack slot
    if isinstance(inst, Call):
        # Intrinsics are pure; user functions may have side effects.
        return is_intrinsic(inst.callee)
    return False


def eliminate_dead_code(function: Function) -> int:
    """Delete until fixpoint; returns the number of instructions removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in reversed(list(block.instructions)):
                if _is_removable(inst):
                    block.remove(inst)
                    removed += 1
                    changed = True
    return removed
