"""CFG simplification: fold constant branches, drop unreachable blocks,
and merge straight-line block pairs."""

from __future__ import annotations

from ..analysis.cfg import reachable_blocks
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Phi
from ..ir.values import Constant


def _remove_phi_edges(block: BasicBlock, lost_pred: BasicBlock) -> None:
    """Drop phi incomings from a predecessor that no longer reaches us."""
    if lost_pred in block.predecessors:
        return  # still a predecessor through another edge
    for phi in block.phis():
        while lost_pred in phi.incoming_blocks:
            index = phi.incoming_blocks.index(lost_pred)
            operand = phi.operands[index]
            if phi in operand.users:
                operand.users.remove(phi)
            del phi.operands[index]
            del phi.incoming_blocks[index]


def fold_constant_branches(function: Function) -> int:
    """Rewrite conditional branches on constants to unconditional ones."""
    folded = 0
    for block in function.blocks:
        terminator = block.terminator
        if (not isinstance(terminator, Branch)
                or not terminator.is_conditional
                or not isinstance(terminator.cond, Constant)):
            continue
        taken = terminator.true_block if terminator.cond.value \
            else terminator.false_block
        abandoned = terminator.false_block if terminator.cond.value \
            else terminator.true_block
        block.remove(terminator)
        block.append(Branch(None, taken))
        if abandoned is not taken:
            _remove_phi_edges(abandoned, block)
        folded += 1
    return folded


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks the entry cannot reach (fixing phis of survivors)."""
    reachable = reachable_blocks(function)
    doomed = [b for b in function.blocks if b not in reachable]
    if not doomed:
        return 0
    doomed_set = set(doomed)
    for survivor in reachable:
        for phi in survivor.phis():
            for dead in doomed_set:
                _remove_phi_edges_force(phi, dead)
    for block in doomed:
        for inst in list(block.instructions):
            block.remove(inst)
        function.blocks.remove(block)
    return len(doomed)


def _remove_phi_edges_force(phi: Phi, pred: BasicBlock) -> None:
    while pred in phi.incoming_blocks:
        index = phi.incoming_blocks.index(pred)
        operand = phi.operands[index]
        if phi in operand.users:
            operand.users.remove(phi)
        del phi.operands[index]
        del phi.incoming_blocks[index]


def merge_straightline_blocks(function: Function) -> int:
    """Splice B into A when A --(only)--> B and B has no other preds."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            terminator = block.terminator
            if (not isinstance(terminator, Branch)
                    or terminator.is_conditional):
                continue
            target = terminator.true_block
            if target is block or target.phis():
                continue
            if target.predecessors != [block]:
                continue
            # Splice: drop A's branch, move B's instructions into A.
            block.remove(terminator)
            for inst in list(target.instructions):
                target.instructions.remove(inst)
                inst.parent = block
                block.instructions.append(inst)
            # Successors of B that carried phis keyed on B now see A.
            for successor in block.successors:
                for phi in successor.phis():
                    for index, pred in enumerate(phi.incoming_blocks):
                        if pred is target:
                            phi.incoming_blocks[index] = block
            function.blocks.remove(target)
            merged += 1
            changed = True
            break  # block list mutated: restart scan
    return merged


def simplify_cfg(function: Function) -> int:
    """All three simplifications to fixpoint; returns total rewrites."""
    total = 0
    changed = True
    while changed:
        changed = False
        for transform in (fold_constant_branches, remove_unreachable_blocks,
                          merge_straightline_blocks):
            count = transform(function)
            total += count
            if count:
                changed = True
    return total
