"""Optimization passes: constant folding, DCE, CFG simplification, and
mem2reg SSA promotion — producing the register-form IR the paper's -O2
evaluation operates on."""

from .constfold import fold_constants, replace_all_uses
from .dce import eliminate_dead_code
from .mem2reg import promotable_allocas, promote_to_registers
from .pipeline import OptimizationReport, optimize
from .simplifycfg import (
    fold_constant_branches,
    merge_straightline_blocks,
    remove_unreachable_blocks,
    simplify_cfg,
)

__all__ = [
    "OptimizationReport", "eliminate_dead_code", "fold_constant_branches",
    "fold_constants", "merge_straightline_blocks", "optimize",
    "promotable_allocas", "promote_to_registers", "remove_unreachable_blocks",
    "replace_all_uses", "simplify_cfg",
]
