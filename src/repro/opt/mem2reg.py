"""mem2reg: promote stack slots to SSA registers (classic SSA
construction with pruned phi placement at iterated dominance frontiers).

The builder eDSL emits clang -O0 style code: every variable is an
alloca, every read a load, every write a store.  TRIDENT's evaluation
compiles at -O2, where those variables live in registers and error
propagation happens through long register chains — this pass produces
that form, phis included, so the model can be studied on both.

A slot is promotable when it holds one element and its address is only
ever used directly by loads and stores (never stored itself, never
passed to a call or gep).
"""

from __future__ import annotations

from ..analysis.cfg import predecessor_map, reachable_blocks
from ..analysis.dominators import immediate_dominators
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.values import Constant, Value


def promotable_allocas(function: Function) -> list[Alloca]:
    """Single-element slots whose address never escapes."""
    result = []
    for inst in function.instructions():
        if not isinstance(inst, Alloca) or inst.count != 1:
            continue
        escapes = False
        for user in inst.users:
            if isinstance(user, Load) and user.pointer is inst:
                continue
            if (isinstance(user, Store) and user.pointer is inst
                    and user.value is not inst):
                continue
            escapes = True
            break
        if not escapes:
            result.append(inst)
    return result


def _dominance_frontiers(function: Function, idom):
    """Cytron et al.: DF via idom walks from join-point predecessors."""
    preds = predecessor_map(function)
    frontiers: dict[BasicBlock, set[BasicBlock]] = {
        block: set() for block in function.blocks
    }
    for block in function.blocks:
        if len(preds[block]) < 2:
            continue
        for pred in preds[block]:
            runner = pred
            while runner is not None and runner is not idom.get(block):
                frontiers.setdefault(runner, set()).add(block)
                runner = idom.get(runner)
    return frontiers


def promote_to_registers(function: Function) -> int:
    """Run mem2reg; returns the number of promoted slots."""
    variables = promotable_allocas(function)
    if not variables:
        return 0
    reachable = reachable_blocks(function)
    idom = immediate_dominators(function)
    frontiers = _dominance_frontiers(function, idom)

    # -- phi placement (iterated dominance frontier per variable) -------
    phi_for: dict[tuple[int, int], Phi] = {}  # (id(var), id(block)) -> phi
    var_of_phi: dict[int, Alloca] = {}
    for variable in variables:
        def_blocks = {
            user.parent for user in variable.users
            if isinstance(user, Store)
        }
        worklist = [b for b in def_blocks if b in reachable]
        placed: set[int] = set()
        while worklist:
            block = worklist.pop()
            for join in frontiers.get(block, ()):
                if id(join) in placed or join not in reachable:
                    continue
                placed.add(id(join))
                phi = Phi(variable.elem_type, [
                    (_undef(variable.elem_type), pred)
                    for pred in join.predecessors
                ])
                join.instructions.insert(0, phi)
                phi.parent = join
                phi_for[(id(variable), id(join))] = phi
                var_of_phi[id(phi)] = variable
                if join not in def_blocks:
                    worklist.append(join)

    # -- renaming over the dominator tree --------------------------------
    children: dict[BasicBlock, list[BasicBlock]] = {
        block: [] for block in function.blocks
    }
    for block, parent in idom.items():
        if parent is not None:
            children[parent].append(block)

    variable_ids = {id(v) for v in variables}
    current: dict[int, Value] = {
        id(v): _undef(v.elem_type) for v in variables
    }

    def rename(block: BasicBlock, incoming: dict[int, Value]) -> None:
        state = dict(incoming)
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and id(inst) in var_of_phi:
                state[id(var_of_phi[id(inst)])] = inst
                continue
            if (isinstance(inst, Load)
                    and id(inst.pointer) in variable_ids):
                _replace_all_uses(inst, state[id(inst.pointer)])
                block.remove(inst)
                continue
            if (isinstance(inst, Store)
                    and id(inst.pointer) in variable_ids):
                state[id(inst.pointer)] = inst.value
                block.remove(inst)
                continue
        for successor in block.successors:
            for phi in successor.phis():
                variable = var_of_phi.get(id(phi))
                if variable is None:
                    continue
                for index, pred in enumerate(phi.incoming_blocks):
                    if pred is block:
                        phi.replace_operand(index, state[id(variable)])
        for child in children.get(block, ()):
            rename(child, state)

    rename(function.entry, current)

    # -- drop the promoted slots ----------------------------------------
    for variable in variables:
        if variable.users:
            continue  # unreachable-code loads may linger; leave the slot
        variable.parent.remove(variable)
    _prune_trivial_phis(function, var_of_phi)
    return len(variables)


def _undef(elem_type) -> Constant:
    """Reads-before-writes see zero, matching the memory default."""
    return Constant(elem_type, 0.0 if elem_type.is_float else 0)


def _replace_all_uses(inst: Instruction, replacement: Value) -> None:
    for user in list(inst.users):
        for index, operand in enumerate(user.operands):
            if operand is inst:
                user.replace_operand(index, replacement)


def _prune_trivial_phis(function: Function, var_of_phi) -> None:
    """Remove phis whose incomings are all the same value (or itself)."""
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                if id(phi) not in var_of_phi:
                    continue
                sources = {
                    id(op) for op in phi.operands if op is not phi
                }
                if len(sources) != 1:
                    continue
                replacement = next(
                    op for op in phi.operands if op is not phi
                )
                _replace_all_uses(phi, replacement)
                block.remove(phi)
                changed = True
