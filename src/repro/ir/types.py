"""Type system for the mini-IR.

The IR is typed in the same spirit as LLVM IR: integer types of explicit
bit widths, two IEEE-754 floating point types, pointers, and void.  Types
are immutable and interned where practical so they can be compared with
``==`` (and the common scalars with ``is``).
"""

from __future__ import annotations


class Type:
    """Base class for all IR types."""

    #: Number of bits a value of this type occupies in a register.
    bits: int = 0

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def size_bytes(self) -> int:
        """Size of a value of this type when stored to memory."""
        return max(1, self.bits // 8)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self}>"


class IntType(Type):
    """An integer type of a fixed bit width (i1, i8, ... i64)."""

    _cache: dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits not in cls._cache:
            if bits < 1 or bits > 64:
                raise ValueError(f"unsupported integer width: {bits}")
            instance = super().__new__(cls)
            instance.bits = bits
            cls._cache[bits] = instance
        return cls._cache[bits]

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))


class FloatType(Type):
    """An IEEE-754 floating point type (f32 or f64)."""

    _cache: dict[int, "FloatType"] = {}

    #: Number of mantissa (fraction) bits, used by the floating point
    #: output-precision masking rule in the memory sub-model.
    MANTISSA_BITS = {32: 23, 64: 52}
    #: Approximate number of significant decimal digits the type carries.
    DECIMAL_DIGITS = {32: 7, 64: 15}

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in cls._cache:
            if bits not in (32, 64):
                raise ValueError(f"unsupported float width: {bits}")
            instance = super().__new__(cls)
            instance.bits = bits
            cls._cache[bits] = instance
        return cls._cache[bits]

    def __str__(self) -> str:
        return "f32" if self.bits == 32 else "f64"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))

    @property
    def mantissa_bits(self) -> int:
        return self.MANTISSA_BITS[self.bits]

    @property
    def decimal_digits(self) -> int:
        return self.DECIMAL_DIGITS[self.bits]


class PointerType(Type):
    """A pointer to values of a fixed element type.

    Pointers are 64-bit machine words; the element type records what a
    load through the pointer produces and how wide a store through it is.
    """

    bits = 64

    def __init__(self, pointee: Type):
        if pointee.is_void:
            raise ValueError("cannot point to void")
        self.pointee = pointee

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class VoidType(Type):
    """The type of instructions that produce no value."""

    _instance: "VoidType | None" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


# Common scalar singletons.
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
VOID = VoidType()


def pointer_to(pointee: Type) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(pointee)


def parse_type(text: str) -> Type:
    """Parse a type from its textual form (``i32``, ``f64``, ``i32*``...)."""
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    if text == "void":
        return VOID
    if text in ("f32", "float"):
        return F32
    if text in ("f64", "double"):
        return F64
    if text.startswith("i"):
        try:
            return IntType(int(text[1:]))
        except ValueError as exc:
            raise ValueError(f"bad type: {text!r}") from exc
    raise ValueError(f"bad type: {text!r}")
