"""Seeded random IR modules for cross-tier differential fuzzing.

The execution tiers (closure, codegen, batch) promise bit-identical
results; the fixed benchmark suite can only witness that promise on the
code shapes it happens to contain.  This module generates small random
programs — mixed integer widths, loops and phi nodes (via mem2reg),
div/rem statements that can trap under injection, NaN-prone float
arithmetic, and in-bounds loads/stores — as a *renewable* source of
counterexample candidates.

Design constraints:

* **Deterministic.**  A :class:`FuzzCase` (seed + enabled statement
  subset) rebuilds the exact same finalized module on every platform;
  failing cases persist as tiny JSON blobs and replay forever.

* **Statement independence.**  Statements communicate only through
  pre-declared locals and arrays (never through SSA values crossing
  statement boundaries), so *any* subset of statements is a valid
  module.  That is what makes greedy shrinking sound: dropping a
  statement never invalidates the rest.

* **Golden-clean by construction.**  Indices are masked in bounds and
  integer denominators are forced odd (``den | 1``), so the fault-free
  run never traps — while an injected bit flip can still produce
  out-of-bounds addresses and zero denominators, exercising the trap
  paths the oracle compares across tiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dsl import FunctionBuilder
from .module import Module
from .types import F32, F64, I8, I16, I32, I64

INT_WIDTHS = (I8, I16, I32, I64)
ARRAY_LEN = 8

#: Statement kinds, in fixed order (generation draws from the biased
#: table ``_DRAW`` below).
_N_KINDS = 12


class _Rng:
    """Self-contained 32-bit LCG (Numerical Recipes constants), so fuzz
    cases are stable across Python versions and platforms."""

    def __init__(self, seed: int):
        self.state = (seed ^ 0x9E3779B9) & 0xFFFFFFFF

    def u32(self) -> int:
        self.state = (1664525 * self.state + 1013904223) & 0xFFFFFFFF
        return self.state

    def below(self, bound: int) -> int:
        return self.u32() % bound

    def range(self, low: int, high: int) -> int:
        return low + self.u32() % (high - low + 1)

    def choice(self, items):
        return items[self.u32() % len(items)]

    def fval(self) -> float:
        return round(self.u32() / 4294967296.0 * 16.0 - 8.0, 4)


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible fuzz module: a seed plus the enabled statement
    subset (None = all statements)."""

    seed: int
    enabled: tuple[int, ...] | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "enabled": None if self.enabled is None else list(self.enabled),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        enabled = data.get("enabled")
        return cls(
            seed=int(data["seed"]),
            enabled=None if enabled is None else tuple(enabled),
        )


def statement_count(seed: int) -> int:
    """Number of statements the plan for ``seed`` contains."""
    return _Rng(seed).range(6, 14)


def opt_level(seed: int) -> int:
    """Optimization level applied to the built module (level 2 runs
    mem2reg, turning the locals into SSA registers and phi nodes)."""
    rng = _Rng(seed * 31 + 7)
    return rng.choice((0, 1, 2, 2))  # bias toward phi-bearing modules


def build_fuzz_module(case: FuzzCase) -> Module:
    """Materialize a fuzz case as a finalized module."""
    rng = _Rng(case.seed)
    n_statements = rng.range(6, 14)
    # Pre-draw one independent sub-seed per statement so that disabling
    # a statement never perturbs how the others materialize.
    stmt_seeds = [rng.u32() for _ in range(n_statements)]

    module = Module(f"fuzz_{case.seed}")
    f = FunctionBuilder(module, "main")

    init_rng = _Rng(case.seed * 977 + 13)
    ctx = _Context(f, init_rng)

    enabled = case.enabled
    for index in range(n_statements):
        if enabled is not None and index not in enabled:
            continue
        _emit_statement(ctx, _Rng(stmt_seeds[index]))

    # Unconditional tail: observe every local and a checksum of every
    # array, so corrupted state is visible to the SDC comparison.
    for local, elem_type in ctx.int_locals:
        f.out(local.get())
    for local, elem_type in ctx.float_locals:
        f.out(local.get(), precision=4)
    for pos, (array, elem_type) in enumerate(ctx.arrays):
        acc_type = F64 if elem_type.is_float else I64
        total = f.local(f"sum{pos}", acc_type, init=0)

        def add_cell(i, a=array, t=total, at=acc_type, fl=elem_type.is_float):
            cell = a[i].to_float(at) if fl else a[i].to_int(at)
            t.set(t.get() + cell)

        f.for_range(0, ARRAY_LEN, add_cell)
        f.out(total.get(), precision=4 if elem_type.is_float else None)
    f.done()
    finalized = module.finalize()

    level = opt_level(case.seed)
    if level:
        from ..opt import optimize

        finalized, _report = optimize(finalized, level)
    return finalized


def shrink_case(case: FuzzCase, still_fails) -> FuzzCase:
    """Greedy ddmin-style shrink: drop statements while the failure
    (as judged by ``still_fails(case) -> bool``) persists."""
    enabled = list(
        case.enabled if case.enabled is not None
        else range(statement_count(case.seed))
    )
    changed = True
    while changed:
        changed = False
        # Chunked removal first (halves, quarters, ...), then singles.
        size = max(1, len(enabled) // 2)
        while size >= 1:
            index = 0
            while index < len(enabled):
                trial = enabled[:index] + enabled[index + size:]
                candidate = FuzzCase(case.seed, tuple(trial))
                if still_fails(candidate):
                    enabled = trial
                    changed = True
                else:
                    index += size
            size //= 2
    return FuzzCase(case.seed, tuple(enabled))


class _Context:
    """Declared storage the statements communicate through."""

    def __init__(self, f: FunctionBuilder, rng: _Rng):
        self.f = f
        self.int_locals = []
        self.float_locals = []
        self.arrays = []
        for index, width in enumerate((I8, I16, I32, I64)):
            init = rng.range(0, min(120, width.max_signed))
            self.int_locals.append(
                (f.local(f"iv{index}", width, init=init), width)
            )
        for index, ftype in enumerate((F32, F64)):
            self.float_locals.append(
                (f.local(f"fv{index}", ftype, init=rng.fval()), ftype)
            )
        data = [rng.range(0, 99) for _ in range(ARRAY_LEN)]
        self.arrays.append(
            (f.global_array("gdata", I32, ARRAY_LEN, data), I32)
        )
        stack = f.array("sdata", I64, ARRAY_LEN)
        for i in range(ARRAY_LEN):
            stack[i] = f.c(rng.range(0, 999), I64)
        self.arrays.append((stack, I64))
        fdata = f.array("fdata", F64, ARRAY_LEN)
        for i in range(ARRAY_LEN):
            fdata[i] = f.c(rng.fval(), F64)
        self.arrays.append((fdata, F64))

    # -- operand pools ----------------------------------------------------

    def int_value(self, rng: _Rng, width):
        """A width-typed int operand: local, array element, or const."""
        pick = rng.below(4)
        if pick == 0:
            local, _w = rng.choice(self.int_locals)
            return local.get().to_int(width)
        if pick == 1:
            array, elem = rng.choice(self.arrays[:2])
            return array[self.index_value(rng)].to_int(width)
        return self.f.c(rng.range(0, min(999, width.max_signed)), width)

    def float_value(self, rng: _Rng, ftype):
        pick = rng.below(4)
        if pick == 0:
            local, _t = rng.choice(self.float_locals)
            return local.get().to_float(ftype)
        if pick == 1:
            array, _t = self.arrays[2]
            return array[self.index_value(rng)].to_float(ftype)
        if pick == 2:
            local, width = rng.choice(self.int_locals)
            return local.get().to_float(ftype)
        return self.f.c(rng.fval(), ftype)

    def index_value(self, rng: _Rng):
        """An always-in-bounds array index (maskable under injection)."""
        if rng.below(2):
            return rng.below(ARRAY_LEN)
        local, _w = rng.choice(self.int_locals)
        return local.get().to_int(I32) & (ARRAY_LEN - 1)

    def int_dst(self, rng: _Rng):
        return rng.choice(self.int_locals)

    def float_dst(self, rng: _Rng):
        return rng.choice(self.float_locals)


def _emit_statement(ctx: _Context, rng: _Rng) -> None:
    _STATEMENTS[rng.choice(_DRAW)](ctx, rng)


def _stmt_int_arith(ctx: _Context, rng: _Rng) -> None:
    """Chained +,-,*,&,|,^,<<,>> at a random width."""
    width = rng.choice(INT_WIDTHS)
    value = ctx.int_value(rng, width)
    for _ in range(rng.range(1, 3)):
        op = rng.choice("+-*&|^<>")
        rhs = ctx.int_value(rng, width)
        if op == "+":
            value = value + rhs
        elif op == "-":
            value = value - rhs
        elif op == "*":
            value = value * rhs
        elif op == "&":
            value = value & rhs
        elif op == "|":
            value = value | rhs
        elif op == "^":
            value = value ^ rhs
        elif op == "<":
            value = value << (rhs & 7)
        else:
            value = value >> (rhs & 7)
    dst, dst_width = ctx.int_dst(rng)
    dst.set(value.to_int(dst_width))


def _stmt_int_div(ctx: _Context, rng: _Rng) -> None:
    """sdiv/udiv/srem/urem with a golden-nonzero denominator: ``den|1``
    never traps fault-free, but a flip of the or's destination bit 0
    can zero it and trap the division."""
    width = rng.choice(INT_WIDTHS)
    f = ctx.f
    num = ctx.int_value(rng, width)
    den = ctx.int_value(rng, width) | 1
    op = rng.choice(("sdiv", "udiv", "srem", "urem"))
    result = f.wrap(f.b.binop(op, num.value, den.value))
    dst, dst_width = ctx.int_dst(rng)
    dst.set(result.to_int(dst_width))


def _stmt_float_arith(ctx: _Context, rng: _Rng) -> None:
    ftype = rng.choice((F32, F64))
    value = ctx.float_value(rng, ftype)
    for _ in range(rng.range(1, 3)):
        op = rng.choice("+-*/")
        rhs = ctx.float_value(rng, ftype)
        if op == "+":
            value = value + rhs
        elif op == "-":
            value = value - rhs
        elif op == "*":
            value = value * rhs
        else:
            value = value / rhs
    dst, dst_type = ctx.float_dst(rng)
    dst.set(value.to_float(dst_type))


def _stmt_nan_prone(ctx: _Context, rng: _Rng) -> None:
    """0/0 and x/0 shapes: NaN and infinity propagation must format
    and compare identically on every tier."""
    ftype = rng.choice((F32, F64))
    a = ctx.float_value(rng, ftype)
    zero = a - a  # 0.0, or NaN once a is non-finite
    pick = rng.below(3)
    if pick == 0:
        value = a / zero            # +-inf (or NaN)
    elif pick == 1:
        value = zero / zero         # NaN
    else:
        value = a * (ctx.f.c(1e30, ftype) * ctx.f.c(1e30, ftype))  # overflow
    dst, dst_type = ctx.float_dst(rng)
    dst.set(value.to_float(dst_type))


def _stmt_cast_chain(ctx: _Context, rng: _Rng) -> None:
    width = rng.choice(INT_WIDTHS)
    value = ctx.int_value(rng, width)
    ftype = rng.choice((F32, F64))
    roundtrip = value.to_float(ftype) * ctx.f.c(0.5, ftype)
    dst, dst_width = ctx.int_dst(rng)
    dst.set(roundtrip.to_int(dst_width))


def _stmt_select(ctx: _Context, rng: _Rng) -> None:
    f = ctx.f
    width = rng.choice(INT_WIDTHS)
    a = ctx.int_value(rng, width)
    b = ctx.int_value(rng, width)
    pick = rng.below(3)
    if pick == 0:
        value = f.min(a, b)
    elif pick == 1:
        value = f.max(a, b)
    else:
        value = f.abs(a)
    dst, dst_width = ctx.int_dst(rng)
    dst.set(value.to_int(dst_width))


def _stmt_array_rw(ctx: _Context, rng: _Rng) -> None:
    array, elem = rng.choice(ctx.arrays)
    src_index = ctx.index_value(rng)
    dst_index = ctx.index_value(rng)
    if elem.is_float:
        array[dst_index] = array[src_index] + ctx.float_value(rng, elem)
    else:
        array[dst_index] = (
            array[src_index].to_int(elem) + ctx.int_value(rng, elem)
        )


def _stmt_loop_acc(ctx: _Context, rng: _Rng) -> None:
    """A counted loop folding an array into a local (phi nodes after
    mem2reg: the induction variable and the accumulator)."""
    f = ctx.f
    trips = rng.range(2, 6)
    array, elem = rng.choice(ctx.arrays)
    dst_pool = ctx.float_locals if elem.is_float else ctx.int_locals
    dst, dst_type = rng.choice(dst_pool)
    offset = rng.below(ARRAY_LEN)
    mul = rng.below(2)

    def body(i):
        cell = array[(i + offset) & (ARRAY_LEN - 1)]
        if elem.is_float:
            update = dst.get() + cell.to_float(dst_type)
        elif mul:
            update = (dst.get().to_int(I64) * (cell.to_int(I64) | 1)) \
                .to_int(dst_type)
        else:
            update = dst.get() + cell.to_int(dst_type)
        dst.set(update)

    f.for_range(0, trips, body, name=f"acc{trips}")


def _stmt_branchy(ctx: _Context, rng: _Rng) -> None:
    """An if/else on data: the canonical lane-divergence shape."""
    f = ctx.f
    width = rng.choice(INT_WIDTHS)
    a = ctx.int_value(rng, width)
    b = ctx.int_value(rng, width)
    predicate = rng.choice(("slt", "ult", "eq", "sgt"))
    cond = f.wrap(f.b.icmp(predicate, a.value, b.value))
    dst, dst_width = ctx.int_dst(rng)
    then_const = rng.range(0, 99)
    else_shift = rng.range(1, 3)

    f.if_(
        lambda: cond,
        lambda: dst.set(dst.get() + then_const),
        lambda: dst.set(dst.get() >> else_shift),
    )


def _stmt_loop_diamond(ctx: _Context, rng: _Rng) -> None:
    """A counted loop with a data-dependent if/else in its body — the
    nested loop-diamond shape the batch tier's reconvergence has to
    re-merge once per iteration."""
    f = ctx.f
    trips = rng.range(2, 5)
    width = rng.choice(INT_WIDTHS)
    array, _elem = rng.choice(ctx.arrays[:2])
    dst, dst_width = ctx.int_dst(rng)
    threshold = rng.range(0, 99)
    predicate = rng.choice(("slt", "ult", "sgt"))
    step = rng.range(1, 9)
    shift = rng.range(1, 3)
    offset = rng.below(ARRAY_LEN)

    def body(i):
        cell = array[(i + offset) & (ARRAY_LEN - 1)].to_int(I64)
        cond = f.wrap(f.b.icmp(
            predicate, cell.value, f.c(threshold, I64).value
        ))
        f.if_(
            lambda: cond,
            lambda: dst.set(dst.get() + step),
            lambda: dst.set(dst.get() >> shift),
        )

    f.for_range(0, trips, body, name=f"ld{trips}")


def _stmt_nested_diamond(ctx: _Context, rng: _Rng) -> None:
    """An if/else whose taken arm branches again on different data:
    two-level mask nesting for the reconvergence stack."""
    f = ctx.f
    width = rng.choice(INT_WIDTHS)
    a = ctx.int_value(rng, width)
    b = ctx.int_value(rng, width)
    outer = f.wrap(f.b.icmp(
        rng.choice(("slt", "eq", "ugt")), a.value, b.value
    ))
    dst, dst_width = ctx.int_dst(rng)
    other, _w = ctx.int_dst(rng)
    bump = rng.range(1, 99)
    shift = rng.range(1, 7)

    def inner():
        cond = f.wrap(f.b.icmp(
            "slt", dst.get().value, other.get().to_int(dst_width).value
        ))
        f.if_(
            lambda: cond,
            lambda: dst.set(dst.get() + bump),
            lambda: dst.set(dst.get() >> shift),
        )

    f.if_(
        lambda: outer,
        inner,
        lambda: dst.set(dst.get() ^ bump),
    )


def _stmt_out(ctx: _Context, rng: _Rng) -> None:
    if rng.below(2):
        local, _w = rng.choice(ctx.int_locals)
        ctx.f.out(local.get())
    else:
        local, _t = rng.choice(ctx.float_locals)
        ctx.f.out(local.get(), precision=rng.range(2, 6))


_STATEMENTS = (
    _stmt_int_arith,
    _stmt_int_div,
    _stmt_float_arith,
    _stmt_nan_prone,
    _stmt_cast_chain,
    _stmt_select,
    _stmt_array_rw,
    _stmt_loop_acc,
    _stmt_branchy,
    _stmt_out,
    _stmt_loop_diamond,
    _stmt_nested_diamond,
)

assert len(_STATEMENTS) == _N_KINDS

#: Generation draw table, biased toward branch-dense shapes: divergence
#: and reconvergence are where cross-tier bugs live, so diamonds (plain,
#: in-loop, and nested) are oversampled relative to straight-line kinds.
_DRAW = tuple(range(_N_KINDS)) + (
    _STATEMENTS.index(_stmt_branchy),
    _STATEMENTS.index(_stmt_loop_diamond),
    _STATEMENTS.index(_stmt_nested_diamond),
)
