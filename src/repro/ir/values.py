"""Value hierarchy for the mini-IR: constants, arguments, globals.

Instructions are also values (they produce a result); they live in
``instructions.py`` and subclass :class:`Value`.
"""

from __future__ import annotations

from .bitutils import truncate_float, wrap_unsigned
from .types import F64, I32, FloatType, IntType, PointerType, Type


class Value:
    """Anything that can appear as an instruction operand."""

    def __init__(self, value_type: Type, name: str = ""):
        self.type = value_type
        self.name = name
        #: Instructions that use this value as an operand (def-use chain).
        self.users: list = []

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short(self) -> str:
        """Short textual form used inside operand lists."""
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """An immediate constant of integer or floating point type."""

    def __init__(self, value_type: Type, value):
        super().__init__(value_type)
        if isinstance(value_type, IntType):
            value = wrap_unsigned(int(value), value_type.bits)
        elif isinstance(value_type, FloatType):
            value = truncate_float(float(value), value_type)
        elif isinstance(value_type, PointerType):
            value = int(value)
        else:
            raise ValueError(f"constants of type {value_type} not supported")
        self.value = value

    def short(self) -> str:
        if isinstance(self.type, FloatType):
            return repr(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


def const_int(value: int, value_type: IntType = I32) -> Constant:
    """Convenience constructor for integer constants."""
    return Constant(value_type, value)


def const_float(value: float, value_type: FloatType = F64) -> Constant:
    """Convenience constructor for floating point constants."""
    return Constant(value_type, value)


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, value_type: Type, name: str, index: int):
        super().__init__(value_type, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level array (or scalar) living in the data segment.

    The value of a global, when used as an operand, is its address; its
    type is therefore a pointer to the element type.  ``initializer`` is a
    list of Python numbers (or a single number for scalars) copied into
    memory before execution.
    """

    def __init__(
        self,
        name: str,
        elem_type: Type,
        count: int = 1,
        initializer=None,
    ):
        super().__init__(PointerType(elem_type), name)
        if count < 1:
            raise ValueError("global must have at least one element")
        self.elem_type = elem_type
        self.count = count
        if initializer is None:
            initializer = [0] * count
        elif not isinstance(initializer, (list, tuple)):
            initializer = [initializer]
        if len(initializer) != count:
            raise ValueError(
                f"global {name}: initializer has {len(initializer)} elements, "
                f"expected {count}"
            )
        self.initializer = list(initializer)

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_type.size_bytes

    def short(self) -> str:
        return f"@{self.name}"
