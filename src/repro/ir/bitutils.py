"""Bit-level helpers shared by the interpreter, fault injector and model.

All integer register values are stored as Python ints in two's-complement
*unsigned* canonical form for their bit width (``0 <= v < 2**bits``).
Floating point registers are stored as Python floats; bit flips on them go
through the IEEE-754 encoding via ``struct``.
"""

from __future__ import annotations

import math
import struct

from .types import FloatType, IntType, PointerType, Type


def mask(bits: int) -> int:
    """All-ones mask for a bit width."""
    return (1 << bits) - 1


def wrap_unsigned(value: int, bits: int) -> int:
    """Canonicalize an integer into unsigned two's-complement form."""
    return value & mask(bits)


def to_signed(value: int, bits: int) -> int:
    """Interpret a canonical unsigned value as a signed integer."""
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def from_signed(value: int, bits: int) -> int:
    """Encode a (possibly negative) Python int as canonical unsigned."""
    return value & mask(bits)


def float_to_bits(value: float, bits: int) -> int:
    """IEEE-754 encode a float into an integer of the given width."""
    if bits == 32:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    if bits == 64:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    raise ValueError(f"unsupported float width: {bits}")


def bits_to_float(pattern: int, bits: int) -> float:
    """Decode an IEEE-754 bit pattern into a Python float."""
    if bits == 32:
        return struct.unpack("<f", struct.pack("<I", pattern & mask(32)))[0]
    if bits == 64:
        return struct.unpack("<d", struct.pack("<Q", pattern & mask(64)))[0]
    raise ValueError(f"unsupported float width: {bits}")


def flip_bit_int(value: int, bit: int, bits: int) -> int:
    """Flip one bit of a canonical unsigned integer."""
    if not 0 <= bit < bits:
        raise ValueError(f"bit {bit} out of range for i{bits}")
    return value ^ (1 << bit)


def flip_bit_float(value: float, bit: int, bits: int) -> float:
    """Flip one bit of the IEEE-754 encoding of a float."""
    pattern = flip_bit_int(float_to_bits(value, bits), bit, bits)
    return bits_to_float(pattern, bits)


def flip_bit_typed(value, bit: int, value_type: Type):
    """Flip one bit of a register value of the given IR type."""
    if isinstance(value_type, FloatType):
        return flip_bit_float(float(value), bit, value_type.bits)
    if isinstance(value_type, (IntType, PointerType)):
        return flip_bit_int(int(value), bit, value_type.bits)
    raise ValueError(f"cannot flip bits of a {value_type} value")


def popcount(value: int) -> int:
    """Number of set bits."""
    return bin(value & ((1 << 128) - 1)).count("1")


def truncate_float(value: float, float_type: FloatType) -> float:
    """Round-trip a Python float through the given IEEE width.

    f64 is the native Python float so it is an identity; f32 rounds to
    single precision, matching what a real register would hold.
    """
    if float_type.bits == 64:
        return value
    if math.isnan(value) or math.isinf(value):
        return value
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def format_with_precision(value: float, digits: int) -> str:
    """Render a float the way a ``%.<digits>g`` printf conversion would.

    This is the output formatting whose reduced precision the paper's
    floating-point masking rule models (Sec. IV-E, "Floating Point").
    """
    return f"%.{digits}g" % value
