"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from .instructions import Branch, Instruction


class BasicBlock:
    """A labelled sequence of instructions with a single terminator."""

    def __init__(self, name: str, parent=None):
        self.name = name
        self.parent = parent  # enclosing Function
        self.instructions: list[Instruction] = []

    def append(self, instruction: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(
                f"block {self.name} is already terminated; "
                f"cannot append {instruction.opcode}"
            )
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert_after(self, anchor: Instruction, new_instruction: Instruction):
        """Insert ``new_instruction`` immediately after ``anchor``."""
        index = self.instructions.index(anchor)
        new_instruction.parent = self
        self.instructions.insert(index + 1, new_instruction)
        return new_instruction

    def insert_front(self, new_instruction: Instruction):
        """Insert at the top of the block (after any existing phis)."""
        from .instructions import Phi

        index = 0
        while (index < len(self.instructions)
               and isinstance(self.instructions[index], Phi)):
            index += 1
        new_instruction.parent = self
        self.instructions.insert(index, new_instruction)
        return new_instruction

    def remove(self, instruction: Instruction) -> None:
        """Remove an instruction, detaching its operand uses."""
        self.instructions.remove(instruction)
        instruction.drop_uses()
        instruction.parent = None

    def phis(self):
        from .instructions import Phi

        result = []
        for inst in self.instructions:
            if not isinstance(inst, Phi):
                break
            result.append(inst)
        return result

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def successors(self) -> list["BasicBlock"]:
        terminator = self.terminator
        if isinstance(terminator, Branch):
            # Deduplicate: both arms of a conditional may share a target.
            seen: list[BasicBlock] = []
            for target in terminator.targets:
                if target not in seen:
                    seen.append(target)
            return seen
        return []

    @property
    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        return [
            block for block in self.parent.blocks if self in block.successors
        ]

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
