"""Textual printer for the mini-IR.

The format round-trips through :mod:`repro.ir.parser`.  Instructions are
referred to by their static id (``%<iid>``), blocks by label, globals by
``@name``.  Every operand is printed as ``<type> <ref>`` so the grammar
stays uniform.
"""

from __future__ import annotations

from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Output,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


def _ref(value: Value) -> str:
    if isinstance(value, Constant):
        if value.type.is_float:
            return repr(value.value)
        return str(value.value)
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, Argument):
        return f"%a{value.index}"
    if isinstance(value, Instruction):
        return f"%{value.iid}"
    raise TypeError(f"cannot print operand {value!r}")


def format_instruction(inst: Instruction, ref=_ref) -> str:
    """One-line textual form of an instruction (without indentation).

    ``ref`` maps a value to its printed reference; the default prints
    instructions by module-wide iid (the parseable form), while
    :func:`canonical_function_text` substitutes function-local numbering.
    """
    def _operand(value: Value) -> str:
        return f"{value.type} {ref(value)}"

    if isinstance(inst, BinOp):
        return (f"{ref(inst)} = {inst.op} {_operand(inst.lhs)}, "
                f"{_operand(inst.rhs)}")
    if isinstance(inst, ICmp):
        return (f"{ref(inst)} = icmp {inst.predicate} {_operand(inst.lhs)}, "
                f"{_operand(inst.rhs)}")
    if isinstance(inst, FCmp):
        return (f"{ref(inst)} = fcmp {inst.predicate} {_operand(inst.lhs)}, "
                f"{_operand(inst.rhs)}")
    if isinstance(inst, Cast):
        return f"{ref(inst)} = {inst.op} {_operand(inst.value)} to {inst.type}"
    if isinstance(inst, Alloca):
        return f"{ref(inst)} = alloca {inst.elem_type} x {inst.count}"
    if isinstance(inst, Load):
        return f"{ref(inst)} = load {_operand(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, GetElementPtr):
        return (f"{ref(inst)} = gep {_operand(inst.base)}, "
                f"{_operand(inst.index)}")
    if isinstance(inst, Branch):
        if not inst.is_conditional:
            return f"br label %{inst.true_block.name}"
        return (f"br {_operand(inst.cond)}, label %{inst.true_block.name}, "
                f"label %{inst.false_block.name}")
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret"
        return f"ret {_operand(inst.value)}"
    if isinstance(inst, Call):
        args = ", ".join(_operand(a) for a in inst.args)
        prefix = f"{ref(inst)} = " if inst.has_result else ""
        return f"{prefix}call @{inst.callee}({args}) : {inst.type}"
    if isinstance(inst, Output):
        suffix = f" prec {inst.precision}" if inst.precision is not None else ""
        return f"output {_operand(inst.value)}{suffix}"
    if isinstance(inst, Select):
        return (f"{ref(inst)} = select {_operand(inst.cond)}, "
                f"{_operand(inst.true_value)}, {_operand(inst.false_value)}")
    if isinstance(inst, Phi):
        arms = ", ".join(
            f"[ {ref(value)}, %{block.name} ]"
            for value, block in inst.incoming
        )
        return f"{ref(inst)} = phi {inst.type} {arms}"
    if isinstance(inst, Detect):
        return f"detect {_operand(inst.original)}, {_operand(inst.duplicate)}"
    raise TypeError(f"cannot print instruction {inst!r}")


def _function_lines(function: Function, ref) -> str:
    args = ", ".join(f"{a.type} %a{a.index}" for a in function.args)
    lines = [f"func @{function.name}({args}) : {function.return_type} {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst, ref)}")
    lines.append("}")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    return _function_lines(function, _ref)


def canonical_function_text(function: Function) -> str:
    """The function printed with function-local value numbering.

    Module-wide iids shift whenever an *earlier* function gains or loses
    an instruction, so the parseable form is useless as a per-function
    content address.  This form numbers instruction references
    ``%L0, %L1, ...`` in block order instead: the text (and its hash) is
    invariant under module-wide renumbering and changes exactly when the
    function's own structure does.
    """
    local: dict[int, int] = {}
    for position, inst in enumerate(function.instructions()):
        local[id(inst)] = position

    def ref(value: Value) -> str:
        if isinstance(value, Instruction):
            return f"%L{local[id(value)]}"
        return _ref(value)

    return _function_lines(function, ref)


def print_module(module: Module) -> str:
    """Full textual form of a finalized module."""
    if not module.is_finalized:
        raise RuntimeError("finalize the module before printing")
    lines = [f"module {module.name}", ""]
    for global_var in module.globals.values():
        init = ", ".join(
            repr(v) if global_var.elem_type.is_float else str(v)
            for v in global_var.initializer
        )
        lines.append(
            f"global @{global_var.name} : {global_var.elem_type} "
            f"x {global_var.count} = [{init}]"
        )
    if module.globals:
        lines.append("")
    for function in module.functions.values():
        lines.append(print_function(function))
        lines.append("")
    return "\n".join(lines)
