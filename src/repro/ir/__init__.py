"""The mini-IR: a typed, LLVM-like intermediate representation.

This package is the substrate the TRIDENT reproduction stands on — the
equivalent of LLVM IR in the paper.  See DESIGN.md §2 for the mapping.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .dsl import ArrayView, Expr, FunctionBuilder, Local
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Output,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .parser import IRParseError, parse_module
from .printer import format_instruction, print_function, print_module
from .types import (
    F32,
    F64,
    I1,
    I16,
    I32,
    I64,
    I8,
    VOID,
    FloatType,
    IntType,
    PointerType,
    Type,
    parse_type,
    pointer_to,
)
from .values import (
    Argument,
    Constant,
    GlobalVariable,
    Value,
    const_float,
    const_int,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "ArrayView", "Alloca", "Argument", "BasicBlock", "BinOp", "Branch",
    "Call", "Cast", "Constant", "Detect", "Expr", "F32", "F64", "FCmp",
    "FloatType", "Function", "FunctionBuilder", "GetElementPtr",
    "GlobalVariable", "I1", "I16", "I32", "I64", "I8", "ICmp", "IRBuilder",
    "IRParseError", "Instruction", "IntType", "Load", "Local", "Module",
    "Output", "Phi", "PointerType", "Ret", "Select", "Store", "Type", "VOID",
    "Value", "VerificationError", "const_float", "const_int",
    "format_instruction", "parse_module", "parse_type", "pointer_to",
    "print_function", "print_module", "verify_function", "verify_module",
]
