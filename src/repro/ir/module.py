"""Modules: the top-level IR container (functions + globals).

``Module.finalize()`` assigns every instruction a module-wide static id
(``iid``) — the identifier TRIDENT, the profiler and the fault injector
all key on — and runs the verifier.
"""

from __future__ import annotations

from .function import Function
from .instructions import Instruction
from .types import Type
from .values import GlobalVariable


class Module:
    """Top-level container for functions and global variables."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self._instructions_by_iid: list[Instruction] = []
        self._finalized = False
        #: Bumped by every finalize(); caches keyed on module content use
        #: it to notice mutation-then-refinalize cheaply.
        self.revision = 0

    # -- construction --------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function: {function.name}")
        function.parent = self
        self.functions[function.name] = function
        self._finalized = False
        return function

    def add_global(self, global_var: GlobalVariable) -> GlobalVariable:
        if global_var.name in self.globals:
            raise ValueError(f"duplicate global: {global_var.name}")
        self.globals[global_var.name] = global_var
        self._finalized = False
        return global_var

    def new_global(self, name: str, elem_type: Type, count: int = 1,
                   initializer=None) -> GlobalVariable:
        return self.add_global(GlobalVariable(name, elem_type, count, initializer))

    # -- lookup ---------------------------------------------------------------

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name}: no function {name}") from None

    @property
    def main(self) -> Function:
        return self.function("main")

    def instruction(self, iid: int) -> Instruction:
        """Look up an instruction by its static id (requires finalize)."""
        self._require_finalized()
        return self._instructions_by_iid[iid]

    def instructions(self):
        """All instructions across all functions, in iid order."""
        self._require_finalized()
        return list(self._instructions_by_iid)

    @property
    def num_instructions(self) -> int:
        return sum(f.num_instructions for f in self.functions.values())

    # -- finalization ----------------------------------------------------------

    def finalize(self, verify: bool = True) -> "Module":
        """Assign static instruction ids and (optionally) verify the IR."""
        self._instructions_by_iid = []
        next_iid = 0
        for function in self.functions.values():
            for instruction in function.instructions():
                instruction.iid = next_iid
                if not instruction.name and instruction.has_result:
                    instruction.name = str(next_iid)
                self._instructions_by_iid.append(instruction)
                next_iid += 1
        self._finalized = True
        self.revision += 1
        if verify:
            from .verifier import verify_module
            verify_module(self)
        return self

    @property
    def is_finalized(self) -> bool:
        return self._finalized

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError(
                f"module {self.name} must be finalized first "
                "(call module.finalize())"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name} ({len(self.functions)} functions, "
            f"{self.num_instructions} insts)>"
        )
