"""Parser for the textual mini-IR form produced by :mod:`repro.ir.printer`.

The parser exists so IR can be written by hand in tests/examples and so
printed modules round-trip.  It is line-oriented: one construct per line,
``;`` starts a comment.
"""

from __future__ import annotations

import re

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    BINARY_OPS,
    CAST_OPS,
    FCMP_PREDICATES,
    ICMP_PREDICATES,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Output,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .types import PointerType, Type, parse_type
from .values import Constant, Value


class IRParseError(ValueError):
    """Raised on malformed textual IR."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"%[\w.\-]+"          # local refs / labels
    r"|@[\w.\-]+"         # globals / functions
    r"|-?\d+\.\d*(?:[eE][+-]?\d+)?"  # floats like 1.5, 2.0e-3
    r"|-?\d+[eE][+-]?\d+"  # floats like 1e-05
    r"|-?\d+"             # integers
    r"|\w+"               # keywords, types, opcodes
    r"|[=,:(){}\[\]*]"    # punctuation
)

_FLOAT_RE = re.compile(r"-?\d+\.\d*(?:[eE][+-]?\d+)?$|-?\d+[eE][+-]?\d+$")


def _tokenize(line: str) -> list[str]:
    return _TOKEN_RE.findall(line)


class _Tokens:
    """Cursor over a token list with small consume helpers."""

    def __init__(self, tokens: list[str], line_no: int):
        self.tokens = tokens
        self.pos = 0
        self.line_no = line_no

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise IRParseError("unexpected end of line", self.line_no)
        self.pos += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise IRParseError(
                f"expected {expected!r}, got {token!r}", self.line_no
            )

    def accept(self, expected: str) -> bool:
        if self.peek() == expected:
            self.pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


class ModuleParser:
    """Parses one textual module."""

    def __init__(self, text: str):
        self.text = text
        self.module: Module | None = None

    def parse(self) -> Module:
        lines = self.text.splitlines()
        index = 0
        module: Module | None = None
        while index < len(lines):
            line = self._clean(lines[index])
            index += 1
            if not line:
                continue
            if line.startswith("module "):
                module = Module(line.split(None, 1)[1].strip())
            elif line.startswith("global "):
                if module is None:
                    module = Module("anonymous")
                self._parse_global(module, line, index)
            elif line.startswith("func "):
                if module is None:
                    module = Module("anonymous")
                index = self._parse_function(module, lines, index - 1) + 1
            else:
                raise IRParseError(f"unexpected line: {line!r}", index)
        if module is None:
            raise IRParseError("empty module text")
        return module.finalize()

    @staticmethod
    def _clean(line: str) -> str:
        return line.split(";", 1)[0].strip()

    # -- globals ---------------------------------------------------------------

    def _parse_global(self, module: Module, line: str, line_no: int) -> None:
        match = re.match(
            r"global @([\w.\-]+) : (\S+) x (\d+) = \[(.*)\]$", line
        )
        if not match:
            raise IRParseError(f"bad global: {line!r}", line_no)
        name, type_text, count_text, init_text = match.groups()
        elem_type = parse_type(type_text)
        count = int(count_text)
        init_text = init_text.strip()
        if init_text:
            raw = [t.strip() for t in init_text.split(",")]
            if elem_type.is_float:
                initializer = [float(t) for t in raw]
            else:
                initializer = [int(t) for t in raw]
        else:
            initializer = [0] * count
        module.new_global(name, elem_type, count, initializer)

    # -- functions ----------------------------------------------------------------

    def _parse_function(self, module: Module, lines: list[str],
                        start: int) -> int:
        header = self._clean(lines[start])
        match = re.match(r"func @([\w.\-]+)\((.*)\) : (\S+) \{$", header)
        if not match:
            raise IRParseError(f"bad function header: {header!r}", start + 1)
        name, args_text, ret_text = match.groups()
        arg_types: list[Type] = []
        if args_text.strip():
            for piece in args_text.split(","):
                type_text, _ref = piece.strip().rsplit(" ", 1)
                arg_types.append(parse_type(type_text.strip()))
        function = Function(
            name,
            arg_types,
            [f"a{i}" for i in range(len(arg_types))],
            parse_type(ret_text),
        )
        module.add_function(function)

        # First pass: find the body extent and pre-create labelled blocks.
        body: list[tuple[int, str]] = []
        end = start + 1
        while end < len(lines):
            line = self._clean(lines[end])
            if line == "}":
                break
            if line:
                body.append((end + 1, line))
            end += 1
        else:
            raise IRParseError(f"function {name} missing closing brace", start + 1)

        blocks: dict[str, BasicBlock] = {}
        for _line_no, line in body:
            if line.endswith(":") and " " not in line:
                label = line[:-1]
                blocks[label] = function.add_block(label)
        if not blocks:
            raise IRParseError(f"function {name} has no blocks", start + 1)

        # Second pass: parse instructions into their blocks.  Phi
        # operands may reference values defined later (loop-carried),
        # so those are patched after the body is complete.
        values: dict[str, Value] = {
            f"%a{arg.index}": arg for arg in function.args
        }
        fixups: list[tuple] = []
        current: BasicBlock | None = None
        for line_no, line in body:
            if line.endswith(":") and " " not in line:
                current = blocks[line[:-1]]
                continue
            if current is None:
                raise IRParseError("instruction before first label", line_no)
            self._parse_instruction(
                module, function, blocks, values, current, line, line_no,
                fixups,
            )
        for phi, index, ref, line_no in fixups:
            if ref not in values:
                raise IRParseError(f"undefined phi value {ref}", line_no)
            phi.replace_operand(index, values[ref])
        return end

    # -- instructions ---------------------------------------------------------------

    def _parse_operand(self, tokens: _Tokens, module: Module,
                       values: dict[str, Value]) -> Value:
        operand_type = self._parse_type(tokens)
        ref = tokens.next()
        if ref.startswith("%"):
            if ref not in values:
                raise IRParseError(f"undefined value {ref}", tokens.line_no)
            value = values[ref]
            if value.type != operand_type:
                raise IRParseError(
                    f"{ref} has type {value.type}, expected {operand_type}",
                    tokens.line_no,
                )
            return value
        if ref.startswith("@"):
            global_name = ref[1:]
            if global_name not in module.globals:
                raise IRParseError(f"undefined global {ref}", tokens.line_no)
            return module.globals[global_name]
        if _FLOAT_RE.match(ref) or operand_type.is_float:
            return Constant(operand_type, float(ref))
        return Constant(operand_type, int(ref))

    def _parse_type(self, tokens: _Tokens) -> Type:
        base = parse_type(tokens.next())
        while tokens.accept("*"):
            base = PointerType(base)
        return base

    def _parse_instruction(self, module, function, blocks, values,
                           block: BasicBlock, line: str, line_no: int,
                           fixups: list) -> None:
        tokens = _Tokens(_tokenize(line), line_no)
        dest: str | None = None
        first = tokens.peek()
        if first and first.startswith("%") and tokens.tokens[1:2] == ["="]:
            dest = tokens.next()
            tokens.expect("=")

        opcode = tokens.next()
        if opcode == "phi":
            inst = self._build_phi(tokens, module, blocks, values, fixups,
                                   line_no)
        else:
            inst = self._build(opcode, tokens, module, function, blocks,
                               values, dest, line_no)
        if inst is None:
            return
        block.append(inst)
        if dest is not None:
            if not inst.has_result:
                raise IRParseError(
                    f"{opcode} produces no result but has a destination",
                    line_no,
                )
            inst.name = dest[1:]
            values[dest] = inst

    def _build(self, opcode, tokens, module, function, blocks, values,
               dest, line_no):
        operand = lambda: self._parse_operand(tokens, module, values)

        if opcode in BINARY_OPS:
            lhs = operand()
            tokens.expect(",")
            return BinOp(opcode, lhs, operand())
        if opcode == "icmp":
            predicate = tokens.next()
            if predicate not in ICMP_PREDICATES:
                raise IRParseError(f"bad icmp predicate {predicate}", line_no)
            lhs = operand()
            tokens.expect(",")
            return ICmp(predicate, lhs, operand())
        if opcode == "fcmp":
            predicate = tokens.next()
            if predicate not in FCMP_PREDICATES:
                raise IRParseError(f"bad fcmp predicate {predicate}", line_no)
            lhs = operand()
            tokens.expect(",")
            return FCmp(predicate, lhs, operand())
        if opcode in CAST_OPS:
            value = operand()
            tokens.expect("to")
            return Cast(opcode, value, self._parse_type(tokens))
        if opcode == "alloca":
            elem_type = self._parse_type(tokens)
            tokens.expect("x")
            return Alloca(elem_type, int(tokens.next()))
        if opcode == "load":
            return Load(operand())
        if opcode == "store":
            value = operand()
            tokens.expect(",")
            return Store(value, operand())
        if opcode == "gep":
            base = operand()
            tokens.expect(",")
            return GetElementPtr(base, operand())
        if opcode == "br":
            if tokens.accept("label"):
                return Branch(None, self._block_ref(tokens, blocks))
            cond = operand()
            tokens.expect(",")
            tokens.expect("label")
            true_block = self._block_ref(tokens, blocks)
            tokens.expect(",")
            tokens.expect("label")
            return Branch(cond, true_block, self._block_ref(tokens, blocks))
        if opcode == "ret":
            if tokens.exhausted:
                return Ret(None)
            return Ret(operand())
        if opcode == "call":
            callee = tokens.next()
            if not callee.startswith("@"):
                raise IRParseError("call target must be @name", line_no)
            tokens.expect("(")
            args = []
            if not tokens.accept(")"):
                args.append(operand())
                while tokens.accept(","):
                    args.append(operand())
                tokens.expect(")")
            tokens.expect(":")
            result_type = self._parse_type(tokens)
            return Call(callee[1:], args, result_type)
        if opcode == "output":
            value = operand()
            precision = None
            if tokens.accept("prec"):
                precision = int(tokens.next())
            return Output(value, precision)
        if opcode == "select":
            cond = operand()
            tokens.expect(",")
            true_value = operand()
            tokens.expect(",")
            return Select(cond, true_value, operand())
        if opcode == "detect":
            original = operand()
            tokens.expect(",")
            return Detect(original, operand())
        raise IRParseError(f"unknown opcode {opcode!r}", line_no)

    def _build_phi(self, tokens, module, blocks, values, fixups, line_no):
        """``%n = phi <type> [ <ref>, %block ], ...`` with forward refs."""
        value_type = self._parse_type(tokens)
        incoming = []
        pending = []  # (operand index, unresolved ref)
        index = 0
        while tokens.accept("["):
            ref = tokens.next()
            tokens.expect(",")
            label = tokens.next()
            if not label.startswith("%") or label[1:] not in blocks:
                raise IRParseError(f"bad phi block {label}", line_no)
            pred = blocks[label[1:]]
            value = self._resolve_phi_ref(ref, value_type, module, values)
            if value is None:
                # Forward reference: placeholder patched after the body.
                value = Constant(value_type,
                                 0.0 if value_type.is_float else 0)
                pending.append((index, ref))
            incoming.append((value, pred))
            tokens.expect("]")
            tokens.accept(",")
            index += 1
        if not incoming:
            raise IRParseError("phi needs at least one incoming", line_no)
        phi = Phi(value_type, incoming)
        for operand_index, ref in pending:
            fixups.append((phi, operand_index, ref, line_no))
        return phi

    def _resolve_phi_ref(self, ref, value_type, module, values):
        if ref.startswith("%"):
            return values.get(ref)
        if ref.startswith("@"):
            if ref[1:] not in module.globals:
                return None
            return module.globals[ref[1:]]
        if value_type.is_float:
            return Constant(value_type, float(ref))
        return Constant(value_type, int(ref))

    def _block_ref(self, tokens: _Tokens, blocks) -> BasicBlock:
        ref = tokens.next()
        if not ref.startswith("%"):
            raise IRParseError(f"bad label ref {ref}", tokens.line_no)
        label = ref[1:]
        if label not in blocks:
            raise IRParseError(f"unknown label {label}", tokens.line_no)
        return blocks[label]


def parse_module(text: str) -> Module:
    """Parse textual IR into a finalized :class:`Module`."""
    return ModuleParser(text).parse()
