"""Functions: argument lists plus an ordered list of basic blocks."""

from __future__ import annotations

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import VOID, Type
from .values import Argument


class Function:
    """A function definition in the mini-IR."""

    def __init__(self, name: str, arg_types=None, arg_names=None,
                 return_type: Type = VOID):
        self.name = name
        self.return_type = return_type
        arg_types = list(arg_types or [])
        arg_names = list(arg_names or [f"arg{i}" for i in range(len(arg_types))])
        if len(arg_names) != len(arg_types):
            raise ValueError("arg_names and arg_types must have equal length")
        self.args = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: list[BasicBlock] = []
        self.parent = None  # enclosing Module

    def add_block(self, name: str) -> BasicBlock:
        existing = {block.name for block in self.blocks}
        if name in existing:
            suffix = 1
            while f"{name}.{suffix}" in existing:
                suffix += 1
            name = f"{name}.{suffix}"
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"{self.name}: no block named {name}")

    def instructions(self):
        """Iterate all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    @property
    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Function {self.name} ({len(self.blocks)} blocks, "
            f"{self.num_instructions} insts)>"
        )


def instruction_index(function: Function) -> dict[Instruction, int]:
    """Position of each instruction in block order (for dominance checks)."""
    return {inst: i for i, inst in enumerate(function.instructions())}
