"""IR verifier: structural checks run at module finalization.

Type agreement is enforced at instruction construction; the verifier
checks the properties that only hold for a whole function/module:
terminated blocks, intra-function branch targets, operand dominance, and
call signatures.
"""

from __future__ import annotations

from .function import Function
from .instructions import Branch, Call, Instruction, Phi, Ret
from .module import Module
from .values import Argument, Constant, GlobalVariable


class VerificationError(ValueError):
    """Raised when a module violates IR well-formedness rules."""


def verify_module(module: Module) -> None:
    """Verify every function in the module; raises on the first error."""
    for function in module.functions.values():
        verify_function(function, module)


def verify_function(function: Function, module: Module | None = None) -> None:
    if not function.blocks:
        raise VerificationError(f"{function.name}: function has no blocks")

    blocks = set(function.blocks)
    for block in function.blocks:
        if not block.is_terminated:
            raise VerificationError(
                f"{function.name}/{block.name}: block is not terminated"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerificationError(
                    f"{function.name}/{block.name}: terminator in the middle "
                    f"of a block"
                )
        terminator = block.terminator
        if isinstance(terminator, Branch):
            for target in terminator.targets:
                if target not in blocks:
                    raise VerificationError(
                        f"{function.name}/{block.name}: branch to a block of "
                        f"another function ({target.name})"
                    )
        if isinstance(terminator, Ret):
            value = terminator.value
            if function.return_type.is_void:
                if value is not None:
                    raise VerificationError(
                        f"{function.name}: ret with value in void function"
                    )
            elif value is None or value.type != function.return_type:
                raise VerificationError(
                    f"{function.name}: ret type mismatch"
                )

    _verify_phis(function)
    _verify_dominance(function)
    if module is not None:
        _verify_calls(function, module)


def _verify_phis(function: Function) -> None:
    for block in function.blocks:
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    raise VerificationError(
                        f"{function.name}/{block.name}: phi after "
                        f"non-phi instruction"
                    )
                incoming = {id(b) for b in inst.incoming_blocks}
                predecessors = {id(b) for b in block.predecessors}
                if incoming != predecessors:
                    raise VerificationError(
                        f"{function.name}/{block.name}: phi incoming "
                        f"blocks do not match predecessors"
                    )
            else:
                seen_non_phi = True


def _verify_dominance(function: Function) -> None:
    """Every instruction operand must be defined before every use."""
    from ..analysis.dominators import compute_dominators

    dominators = compute_dominators(function)
    position: dict[Instruction, int] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            position[inst] = index

    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                # A phi operand must dominate the *incoming edge*, not
                # the phi itself.
                for operand, pred in inst.incoming:
                    if isinstance(operand,
                                  (Constant, Argument, GlobalVariable)):
                        continue
                    def_block = operand.parent
                    if (def_block is not pred
                            and def_block not in dominators.get(pred, set())):
                        raise VerificationError(
                            f"{function.name}/{block.name}: phi operand "
                            f"does not dominate its incoming edge"
                        )
                continue
            for operand in inst.operands:
                if isinstance(operand, (Constant, Argument, GlobalVariable)):
                    continue
                if not isinstance(operand, Instruction):
                    raise VerificationError(
                        f"{function.name}: bad operand kind {operand!r}"
                    )
                def_block = operand.parent
                if def_block is None or def_block.parent is not function:
                    raise VerificationError(
                        f"{function.name}: operand defined in another function"
                    )
                if def_block is block:
                    if position[operand] >= position[inst]:
                        raise VerificationError(
                            f"{function.name}/{block.name}: use of "
                            f"%{operand.name} before its definition"
                        )
                elif def_block not in dominators[block]:
                    raise VerificationError(
                        f"{function.name}/{block.name}: definition of "
                        f"%{operand.name} does not dominate its use"
                    )


#: Intrinsics callable without a module-level definition, with arity.
INTRINSIC_ARITY = {
    "sqrt": 1,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "fabs": 1,
    "pow": 2,
    "floor": 1,
    "ceil": 1,
}


def _verify_calls(function: Function, module: Module) -> None:
    for inst in function.instructions():
        if not isinstance(inst, Call):
            continue
        if inst.callee in module.functions:
            callee = module.functions[inst.callee]
            if len(inst.args) != len(callee.args):
                raise VerificationError(
                    f"{function.name}: call to {inst.callee} with "
                    f"{len(inst.args)} args, expected {len(callee.args)}"
                )
            for arg, formal in zip(inst.args, callee.args):
                if arg.type != formal.type:
                    raise VerificationError(
                        f"{function.name}: call to {inst.callee} argument "
                        f"type mismatch ({arg.type} vs {formal.type})"
                    )
            if inst.type != callee.return_type:
                raise VerificationError(
                    f"{function.name}: call to {inst.callee} return type "
                    f"mismatch"
                )
        elif inst.callee in INTRINSIC_ARITY:
            if len(inst.args) != INTRINSIC_ARITY[inst.callee]:
                raise VerificationError(
                    f"{function.name}: intrinsic {inst.callee} takes "
                    f"{INTRINSIC_ARITY[inst.callee]} args"
                )
        else:
            raise VerificationError(
                f"{function.name}: call to unknown function {inst.callee!r}"
            )
