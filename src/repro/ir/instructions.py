"""Instruction set of the mini-IR.

The instruction families mirror the LLVM IR subset that TRIDENT reasons
about: integer/floating arithmetic, bitwise logic, shifts, comparisons,
casts, memory operations (alloca/load/store/getelementptr), control flow
(br/ret), calls, and a ``output`` instruction standing in for the printf
calls the paper treats as program output.

Every instruction is also a :class:`~repro.ir.values.Value` (its result).
Def-use chains are maintained eagerly: constructing an instruction appends
it to each operand's ``users`` list.
"""

from __future__ import annotations

from .types import I1, VOID, PointerType, Type
from .values import Value


# ---------------------------------------------------------------------------
# Opcode families
# ---------------------------------------------------------------------------

INT_ARITH_OPS = frozenset({"add", "sub", "mul", "sdiv", "udiv", "srem", "urem"})
INT_LOGIC_OPS = frozenset({"and", "or", "xor"})
INT_SHIFT_OPS = frozenset({"shl", "lshr", "ashr"})
INT_BINARY_OPS = INT_ARITH_OPS | INT_LOGIC_OPS | INT_SHIFT_OPS
FLOAT_BINARY_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
BINARY_OPS = INT_BINARY_OPS | FLOAT_BINARY_OPS

ICMP_PREDICATES = frozenset(
    {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
)
FCMP_PREDICATES = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})

CAST_OPS = frozenset(
    {"trunc", "zext", "sext", "fptrunc", "fpext", "sitofp", "fptosi",
     "uitofp", "fptoui", "bitcast"}
)

#: Opcodes whose corrupted result terminates a static data-dependent
#: instruction sequence (Sec. IV-C: store, comparison, or program output).
SEQUENCE_TERMINATORS = frozenset({"store", "icmp", "fcmp", "output", "ret", "call"})


class Instruction(Value):
    """Base class for all instructions."""

    opcode: str = "?"

    def __init__(self, result_type: Type, operands, name: str = ""):
        super().__init__(result_type, name)
        self.operands: list[Value] = []
        #: Enclosing basic block; set when appended to a block.
        self.parent = None
        #: Module-wide static instruction id, assigned by Module.finalize().
        self.iid: int = -1
        for operand in operands:
            self._add_operand(operand)

    # -- operand management -------------------------------------------------

    def _add_operand(self, operand: Value) -> None:
        if not isinstance(operand, Value):
            raise TypeError(
                f"{self.opcode}: operand must be a Value, got {operand!r}"
            )
        self.operands.append(operand)
        operand.users.append(self)

    def replace_operand(self, index: int, new_operand: Value) -> None:
        """Swap one operand, keeping def-use chains consistent."""
        old = self.operands[index]
        if self in old.users:
            old.users.remove(self)
        self.operands[index] = new_operand
        new_operand.users.append(self)

    def drop_uses(self) -> None:
        """Remove this instruction from its operands' use lists."""
        for operand in self.operands:
            while self in operand.users:
                operand.users.remove(self)

    # -- classification helpers used by the model ---------------------------

    @property
    def has_result(self) -> bool:
        return not self.type.is_void

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, Ret))

    @property
    def is_comparison(self) -> bool:
        return isinstance(self, (ICmp, FCmp))

    @property
    def is_logic(self) -> bool:
        return isinstance(self, BinOp) and self.op in INT_LOGIC_OPS

    @property
    def is_shift(self) -> bool:
        return isinstance(self, BinOp) and self.op in INT_SHIFT_OPS

    @property
    def is_cast(self) -> bool:
        return isinstance(self, Cast)

    @property
    def is_memory_access(self) -> bool:
        return isinstance(self, (Load, Store))

    def short(self) -> str:
        if self.has_result:
            return f"%{self.name or self.iid}"
        return f"<{self.opcode}#{self.iid}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(op.short() for op in self.operands)
        return f"<{self.opcode} #{self.iid} ({ops})>"


# ---------------------------------------------------------------------------
# Arithmetic, logic, comparisons, casts
# ---------------------------------------------------------------------------

class BinOp(Instruction):
    """A two-operand arithmetic, logic or shift instruction."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op: {op}")
        if lhs.type != rhs.type:
            raise TypeError(f"{op}: operand types differ: {lhs.type} vs {rhs.type}")
        if op in FLOAT_BINARY_OPS and not lhs.type.is_float:
            raise TypeError(f"{op} requires float operands, got {lhs.type}")
        if op in INT_BINARY_OPS and not lhs.type.is_integer:
            raise TypeError(f"{op} requires integer operands, got {lhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    opcode = "binop"

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmp(Instruction):
    """Integer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp: operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmp(Instruction):
    """Ordered floating point comparison producing an i1."""

    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate: {predicate}")
        if lhs.type != rhs.type or not lhs.type.is_float:
            raise TypeError(f"fcmp: bad operand types: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    """Width/representation conversion (trunc, zext, sitofp, ...)."""

    opcode = "cast"

    def __init__(self, op: str, value: Value, to_type: Type, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast op: {op}")
        super().__init__(to_type, [value], name)
        self.op = op

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    """``select cond, a, b`` — ternary choice without control flow."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value,
                 name: str = ""):
        if cond.type != I1:
            raise TypeError("select condition must be i1")
        if true_value.type != false_value.type:
            raise TypeError("select arms must have the same type")
        super().__init__(true_value.type, [cond, true_value, false_value], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

class Alloca(Instruction):
    """Reserve ``count`` elements of ``elem_type`` in the stack frame."""

    opcode = "alloca"

    def __init__(self, elem_type: Type, count: int = 1, name: str = ""):
        if count < 1:
            raise ValueError("alloca count must be positive")
        super().__init__(PointerType(elem_type), [], name)
        self.elem_type = elem_type
        self.count = count

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_type.size_bytes


class Load(Instruction):
    """Load a value through a pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer:
            raise TypeError(f"load requires a pointer, got {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Store a value through a pointer (no result)."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer:
            raise TypeError(f"store requires a pointer, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``base + index * sizeof(elem)``."""

    opcode = "gep"

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not base.type.is_pointer:
            raise TypeError(f"gep requires a pointer base, got {base.type}")
        if not index.type.is_integer:
            raise TypeError(f"gep index must be an integer, got {index.type}")
        super().__init__(base.type, [base, index], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def elem_size(self) -> int:
        return self.type.pointee.size_bytes


# ---------------------------------------------------------------------------
# Control flow and calls
# ---------------------------------------------------------------------------

class Branch(Instruction):
    """Conditional or unconditional branch.

    ``targets`` holds BasicBlock references: one for an unconditional
    branch, two (taken, not-taken) for a conditional one.
    """

    opcode = "br"

    def __init__(self, cond, true_block, false_block=None):
        if cond is None:
            if false_block is not None:
                raise ValueError("unconditional branch takes one target")
            super().__init__(VOID, [])
        else:
            if cond.type != I1:
                raise TypeError("branch condition must be i1")
            if false_block is None:
                raise ValueError("conditional branch needs two targets")
            super().__init__(VOID, [cond])
        self.true_block = true_block
        self.false_block = false_block

    @property
    def is_conditional(self) -> bool:
        return bool(self.operands)

    @property
    def cond(self) -> Value:
        if not self.operands:
            raise ValueError("unconditional branch has no condition")
        return self.operands[0]

    @property
    def targets(self) -> list:
        if self.false_block is None:
            return [self.true_block]
        return [self.true_block, self.false_block]


class Ret(Instruction):
    """Return from the current function, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Value | None = None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self) -> Value | None:
        return self.operands[0] if self.operands else None


class Call(Instruction):
    """Call a user function or an intrinsic by name.

    ``callee`` is a string; user functions are resolved against the module
    at execution time, everything else is looked up in the intrinsic table
    (abs, sqrt, exp, min, max, ...).
    """

    opcode = "call"

    def __init__(self, callee: str, args, result_type: Type, name: str = ""):
        super().__init__(result_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return list(self.operands)


class Output(Instruction):
    """Emit one value to the program's output stream (printf stand-in).

    ``precision`` — if set for a floating point value, the value is
    formatted with that many significant decimal digits (like ``%.Ng``),
    which is what the paper's floating point masking rule models.
    """

    opcode = "output"

    def __init__(self, value: Value, precision: int | None = None):
        super().__init__(VOID, [value])
        if precision is not None and precision < 1:
            raise ValueError("precision must be >= 1")
        self.precision = precision

    @property
    def value(self) -> Value:
        return self.operands[0]


class Phi(Instruction):
    """SSA phi node: selects a value based on the predecessor block.

    ``incoming`` pairs each operand with the predecessor block it flows
    from.  Phis only appear after the mem2reg pass promotes stack slots
    to registers (the builder eDSL emits alloca/load/store form).
    """

    opcode = "phi"

    def __init__(self, value_type, incoming, name: str = ""):
        values = [value for value, _block in incoming]
        for value in values:
            if value.type != value_type:
                raise TypeError(
                    f"phi incoming type {value.type} != {value_type}"
                )
        super().__init__(value_type, values, name)
        self.incoming_blocks = [block for _value, block in incoming]

    @property
    def incoming(self):
        return list(zip(self.operands, self.incoming_blocks))

    def value_for(self, block):
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block.name}")

    def add_incoming(self, value, block) -> None:
        if value.type != self.type:
            raise TypeError("phi incoming type mismatch")
        self._add_operand(value)
        self.incoming_blocks.append(block)


class Detect(Instruction):
    """Protection check inserted by the duplication pass.

    Compares the original and duplicated computation; a mismatch at
    runtime raises a detection trap (outcome ``DETECTED``).  This stands
    in for the cmp + branch-to-handler pair the paper's LLVM pass emits.
    """

    opcode = "detect"

    def __init__(self, original: Value, duplicate: Value):
        if original.type != duplicate.type:
            raise TypeError("detect operands must have the same type")
        super().__init__(VOID, [original, duplicate])

    @property
    def original(self) -> Value:
        return self.operands[0]

    @property
    def duplicate(self) -> Value:
        return self.operands[1]
