"""High-level eDSL for writing mini-IR programs in Python.

The benchmark suite (``repro.bench``) is written against this layer.  It
provides typed expressions with operator overloading, scalar locals and
arrays backed by stack or global memory, and structured control flow
(``for_range`` / ``while_`` / ``if_``) that lowers to explicit basic
blocks and branches — producing exactly the load → arith → cmp/store
register sequences TRIDENT's static-instruction sub-model analyzes.
"""

from __future__ import annotations

from .builder import IRBuilder
from .function import Function
from .module import Module
from .types import F64, I1, I32, VOID, FloatType, IntType, Type
from .values import Constant, Value


class Expr:
    """A typed value bound to its builder, with operator overloading."""

    __slots__ = ("fb", "value")

    def __init__(self, fb: "FunctionBuilder", value: Value):
        self.fb = fb
        self.value = value

    @property
    def type(self) -> Type:
        return self.value.type

    # -- coercion ---------------------------------------------------------

    def _coerce(self, other) -> Value:
        if isinstance(other, Expr):
            return other.value
        if isinstance(other, Value):
            return other
        if isinstance(other, bool):
            return Constant(I1, int(other))
        if isinstance(other, int) and self.type.is_integer:
            return Constant(self.type, other)
        if isinstance(other, (int, float)) and self.type.is_float:
            return Constant(self.type, float(other))
        raise TypeError(f"cannot coerce {other!r} to {self.type}")

    def _binop(self, int_op: str, float_op: str | None, other,
               reverse: bool = False) -> "Expr":
        rhs = self._coerce(other)
        lhs = self.value
        if reverse:
            lhs, rhs = rhs, lhs
        if self.type.is_float:
            if float_op is None:
                raise TypeError(f"{int_op} not defined for floats")
            return Expr(self.fb, self.fb.b.binop(float_op, lhs, rhs))
        return Expr(self.fb, self.fb.b.binop(int_op, lhs, rhs))

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other):
        return self._binop("add", "fadd", other)

    def __radd__(self, other):
        return self._binop("add", "fadd", other, reverse=True)

    def __sub__(self, other):
        return self._binop("sub", "fsub", other)

    def __rsub__(self, other):
        return self._binop("sub", "fsub", other, reverse=True)

    def __mul__(self, other):
        return self._binop("mul", "fmul", other)

    def __rmul__(self, other):
        return self._binop("mul", "fmul", other, reverse=True)

    def __truediv__(self, other):
        if self.type.is_integer:
            return self._binop("sdiv", None, other)
        return self._binop("sdiv", "fdiv", other)

    def __rtruediv__(self, other):
        if self.type.is_integer:
            return self._binop("sdiv", None, other, reverse=True)
        return self._binop("sdiv", "fdiv", other, reverse=True)

    def __floordiv__(self, other):
        return self._binop("sdiv", None, other)

    def __mod__(self, other):
        return self._binop("srem", None, other)

    def __and__(self, other):
        return self._binop("and", None, other)

    def __or__(self, other):
        return self._binop("or", None, other)

    def __xor__(self, other):
        return self._binop("xor", None, other)

    def __lshift__(self, other):
        return self._binop("shl", None, other)

    def __rshift__(self, other):
        return self._binop("ashr", None, other)

    def __neg__(self):
        if self.type.is_float:
            zero = Constant(self.type, 0.0)
            return Expr(self.fb, self.fb.b.fsub(zero, self.value))
        zero = Constant(self.type, 0)
        return Expr(self.fb, self.fb.b.sub(zero, self.value))

    # -- comparisons ----------------------------------------------------------

    def _cmp(self, int_pred: str, float_pred: str, other) -> "Expr":
        rhs = self._coerce(other)
        if self.type.is_float:
            return Expr(self.fb, self.fb.b.fcmp(float_pred, self.value, rhs))
        return Expr(self.fb, self.fb.b.icmp(int_pred, self.value, rhs))

    def __lt__(self, other):
        return self._cmp("slt", "olt", other)

    def __le__(self, other):
        return self._cmp("sle", "ole", other)

    def __gt__(self, other):
        return self._cmp("sgt", "ogt", other)

    def __ge__(self, other):
        return self._cmp("sge", "oge", other)

    def __eq__(self, other):  # type: ignore[override]
        return self._cmp("eq", "oeq", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._cmp("ne", "one", other)

    __hash__ = None  # Exprs are not hashable (== builds IR)

    # -- conversions ------------------------------------------------------------

    def to_float(self, float_type: FloatType = F64) -> "Expr":
        if self.type == float_type:
            return self
        if self.type.is_integer:
            return Expr(self.fb, self.fb.b.sitofp(self.value, float_type))
        if self.type.bits < float_type.bits:
            return Expr(self.fb, self.fb.b.fpext(self.value, float_type))
        return Expr(self.fb, self.fb.b.fptrunc(self.value, float_type))

    def to_int(self, int_type: IntType = I32) -> "Expr":
        if self.type == int_type:
            return self
        if self.type.is_float:
            return Expr(self.fb, self.fb.b.fptosi(self.value, int_type))
        if self.type.bits < int_type.bits:
            return Expr(self.fb, self.fb.b.sext(self.value, int_type))
        return Expr(self.fb, self.fb.b.trunc(self.value, int_type))


class Local:
    """A scalar variable backed by a stack slot (alloca)."""

    def __init__(self, fb: "FunctionBuilder", pointer: Value, elem_type: Type):
        self.fb = fb
        self.pointer = pointer
        self.elem_type = elem_type

    def get(self) -> Expr:
        return Expr(self.fb, self.fb.b.load(self.pointer))

    def set(self, value) -> None:
        self.fb.b.store(self.fb.coerce(value, self.elem_type), self.pointer)


class ArrayView:
    """An indexable array backed by stack or global memory."""

    def __init__(self, fb: "FunctionBuilder", base: Value, elem_type: Type):
        self.fb = fb
        self.base = base
        self.elem_type = elem_type

    def addr(self, index) -> Value:
        index_value = self.fb.coerce(index, I32)
        return self.fb.b.gep(self.base, index_value)

    def __getitem__(self, index) -> Expr:
        return Expr(self.fb, self.fb.b.load(self.addr(index)))

    def __setitem__(self, index, value) -> None:
        pointer = self.addr(index)
        self.fb.b.store(self.fb.coerce(value, self.elem_type), pointer)


class FunctionBuilder:
    """Structured-programming facade over :class:`IRBuilder`."""

    def __init__(self, module: Module, name: str, arg_types=(), arg_names=(),
                 return_type: Type = VOID):
        self.module = module
        self.function = Function(name, arg_types, arg_names, return_type)
        module.add_function(self.function)
        self.b = IRBuilder(self.function)
        self._label_counter = 0

    # -- values ------------------------------------------------------------------

    def coerce(self, value, target_type: Type) -> Value:
        """Turn a Python number / Expr / Value into a Value of target_type."""
        if isinstance(value, Expr):
            value = value.value
        if isinstance(value, Value):
            if value.type != target_type:
                raise TypeError(
                    f"type mismatch: have {value.type}, need {target_type}"
                )
            return value
        return Constant(target_type, value)

    def c(self, value, value_type: Type | None = None) -> Expr:
        """An immediate constant as an Expr."""
        if value_type is None:
            value_type = F64 if isinstance(value, float) else I32
        return Expr(self, Constant(value_type, value))

    def arg(self, index: int) -> Expr:
        return Expr(self, self.function.args[index])

    def wrap(self, value: Value) -> Expr:
        return Expr(self, value)

    # -- storage -------------------------------------------------------------------

    def local(self, name: str, elem_type: Type = I32, init=None) -> Local:
        pointer = self.b.alloca(elem_type, 1, name)
        variable = Local(self, pointer, elem_type)
        if init is not None:
            variable.set(init)
        return variable

    def array(self, name: str, elem_type: Type, count: int) -> ArrayView:
        pointer = self.b.alloca(elem_type, count, name)
        return ArrayView(self, pointer, elem_type)

    def global_array(self, name: str, elem_type: Type, count: int,
                     initializer=None) -> ArrayView:
        if name in self.module.globals:
            global_var = self.module.globals[name]
        else:
            global_var = self.module.new_global(name, elem_type, count, initializer)
        return ArrayView(self, global_var, elem_type)

    # -- control flow -----------------------------------------------------------------

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def _as_cond(self, cond) -> Value:
        if callable(cond):
            cond = cond()
        if isinstance(cond, Expr):
            cond = cond.value
        if cond.type != I1:
            raise TypeError(f"condition must be i1, got {cond.type}")
        return cond

    def for_range(self, start, stop, body, step: int = 1, name: str = "i"):
        """``for (name = start; name < stop; name += step) body(name)``.

        ``body`` receives the loop variable as an :class:`Expr` (already
        loaded at the top of the body block).  A negative ``step`` loops
        downward with a ``>`` stop condition.
        """
        if step == 0:
            raise ValueError("for_range step must be nonzero")
        loop_var = self.local(name, I32, init=start)
        cond_block = self.b.new_block(self._label(f"{name}.cond"))
        body_block = self.b.new_block(self._label(f"{name}.body"))
        exit_block = self.b.new_block(self._label(f"{name}.end"))
        self.b.br(cond_block)

        self.b.position_at_end(cond_block)
        current = loop_var.get()
        predicate = (current < stop) if step > 0 else (current > stop)
        self.b.cond_br(predicate.value, body_block, exit_block)

        self.b.position_at_end(body_block)
        body(loop_var.get())
        loop_var.set(loop_var.get() + step)
        if not self.b.block.is_terminated:
            self.b.br(cond_block)
        self.b.position_at_end(exit_block)

    def while_(self, cond, body) -> None:
        """``while (cond()) body()`` — cond is re-evaluated each iteration."""
        cond_block = self.b.new_block(self._label("while.cond"))
        body_block = self.b.new_block(self._label("while.body"))
        exit_block = self.b.new_block(self._label("while.end"))
        self.b.br(cond_block)

        self.b.position_at_end(cond_block)
        self.b.cond_br(self._as_cond(cond), body_block, exit_block)

        self.b.position_at_end(body_block)
        body()
        if not self.b.block.is_terminated:
            self.b.br(cond_block)
        self.b.position_at_end(exit_block)

    def if_(self, cond, then_body, else_body=None) -> None:
        """``if (cond) then_body() [else else_body()]``."""
        condition = self._as_cond(cond)
        then_block = self.b.new_block(self._label("if.then"))
        merge_block = self.b.new_block(self._label("if.end"))
        else_block = (
            self.b.new_block(self._label("if.else")) if else_body else merge_block
        )
        self.b.cond_br(condition, then_block, else_block)

        self.b.position_at_end(then_block)
        then_body()
        if not self.b.block.is_terminated:
            self.b.br(merge_block)

        if else_body:
            self.b.position_at_end(else_block)
            else_body()
            if not self.b.block.is_terminated:
                self.b.br(merge_block)

        self.b.position_at_end(merge_block)

    # -- selection helpers ---------------------------------------------------------------

    def select(self, cond, true_value: Expr, false_value: Expr) -> Expr:
        condition = self._as_cond(cond)
        return Expr(
            self,
            self.b.select(
                condition,
                true_value.value,
                self.coerce(false_value, true_value.type),
            ),
        )

    def min(self, a: Expr, b) -> Expr:
        return self.select(a < b, a, self.wrap(a._coerce(b)))

    def max(self, a: Expr, b) -> Expr:
        return self.select(a > b, a, self.wrap(a._coerce(b)))

    def abs(self, a: Expr) -> Expr:
        zero = 0.0 if a.type.is_float else 0
        return self.select(a < zero, -a, a)

    # -- calls, output, return --------------------------------------------------------------

    def call(self, callee: str, args=(), result_type: Type = VOID) -> Expr:
        arg_values = [a.value if isinstance(a, Expr) else a for a in args]
        call = self.b.call(callee, arg_values, result_type)
        return Expr(self, call)

    def sqrt(self, a: Expr) -> Expr:
        return self.call("sqrt", [a.to_float(a.type if a.type.is_float else F64)],
                         a.type if a.type.is_float else F64)

    def exp(self, a: Expr) -> Expr:
        return self.call("exp", [a], a.type)

    def log(self, a: Expr) -> Expr:
        return self.call("log", [a], a.type)

    def out(self, value, precision: int | None = None) -> None:
        if isinstance(value, (int, float)):
            value = self.c(value)
        if isinstance(value, Expr):
            value = value.value
        self.b.output(value, precision)

    def ret(self, value=None) -> None:
        if value is None:
            self.b.ret(None)
            return
        self.b.ret(self.coerce(value, self.function.return_type))

    def done(self) -> Function:
        """Seal the function: add an implicit ``ret`` if missing."""
        if not self.b.block.is_terminated:
            if self.function.return_type.is_void:
                self.b.ret(None)
            else:
                self.b.ret(Constant(self.function.return_type, 0))
        return self.function
