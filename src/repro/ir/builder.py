"""Low-level IR builder: appends instructions at a cursor position.

This mirrors ``llvm::IRBuilder``.  The higher-level eDSL used to write the
benchmark programs lives in :mod:`repro.ir.dsl` and drives this builder.
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Output,
    Ret,
    Select,
    Store,
)
from .types import VOID, Type
from .values import Constant, Value


class IRBuilder:
    """Appends instructions to a basic block, LLVM-style."""

    def __init__(self, function: Function, block: BasicBlock | None = None):
        self.function = function
        if block is None:
            block = function.blocks[-1] if function.blocks else function.add_block("entry")
        self.block = block

    # -- positioning ----------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def new_block(self, name: str) -> BasicBlock:
        return self.function.add_block(name)

    def _emit(self, instruction):
        self.block.append(instruction)
        return instruction

    # -- constants ------------------------------------------------------------

    def const(self, value, value_type: Type) -> Constant:
        return Constant(value_type, value)

    # -- arithmetic -----------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self._emit(BinOp(op, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs, rhs, name=""):
        return self.binop("udiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binop("srem", lhs, rhs, name)

    def urem(self, lhs, rhs, name=""):
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=""):
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self.binop("ashr", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    # -- comparisons ------------------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._emit(ICmp(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self._emit(FCmp(predicate, lhs, rhs, name))

    # -- casts -------------------------------------------------------------------

    def cast(self, op: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._emit(Cast(op, value, to_type, name))

    def trunc(self, value, to_type, name=""):
        return self.cast("trunc", value, to_type, name)

    def zext(self, value, to_type, name=""):
        return self.cast("zext", value, to_type, name)

    def sext(self, value, to_type, name=""):
        return self.cast("sext", value, to_type, name)

    def sitofp(self, value, to_type, name=""):
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value, to_type, name=""):
        return self.cast("fptosi", value, to_type, name)

    def fptrunc(self, value, to_type, name=""):
        return self.cast("fptrunc", value, to_type, name)

    def fpext(self, value, to_type, name=""):
        return self.cast("fpext", value, to_type, name)

    # -- memory -------------------------------------------------------------------

    def alloca(self, elem_type: Type, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(elem_type, count, name))

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(pointer, name))

    def store(self, value: Value, pointer: Value) -> Store:
        return self._emit(Store(value, pointer))

    def gep(self, base: Value, index: Value, name: str = "") -> GetElementPtr:
        return self._emit(GetElementPtr(base, index, name))

    # -- control flow -----------------------------------------------------------

    def br(self, target: BasicBlock) -> Branch:
        return self._emit(Branch(None, target))

    def cond_br(self, cond: Value, true_block: BasicBlock,
                false_block: BasicBlock) -> Branch:
        return self._emit(Branch(cond, true_block, false_block))

    def ret(self, value: Value | None = None) -> Ret:
        return self._emit(Ret(value))

    # -- calls / output / misc ----------------------------------------------------

    def call(self, callee: str, args, result_type: Type = VOID,
             name: str = "") -> Call:
        return self._emit(Call(callee, args, result_type, name))

    def output(self, value: Value, precision: int | None = None) -> Output:
        return self._emit(Output(value, precision))

    def select(self, cond: Value, true_value: Value, false_value: Value,
               name: str = "") -> Select:
        return self._emit(Select(cond, true_value, false_value, name))

    def detect(self, original: Value, duplicate: Value) -> Detect:
        return self._emit(Detect(original, duplicate))
