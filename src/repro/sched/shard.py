"""The one shard-execution entrypoint every worker calls.

``run_shard(spec)`` re-materializes the module named by the shard's
:class:`~repro.sched.spec.ModuleSpec`, builds (or reuses) a
:class:`~repro.fi.campaign.FaultInjector`, executes the shard's run
range, and returns a picklable/JSON-safe
:class:`~repro.sched.spec.ShardResult`.  The local ``multiprocessing``
pool, the serial fallback in the executor, and independent remote-style
workers all funnel through this function, which is what makes their
merged counts bit-identical by construction.

The injector is cached per process and per spec (compiling an engine is
the expensive per-module step), and the golden-run summary is served
from the shared result store so only the first process ever pays for
the fault-free reference execution.
"""

from __future__ import annotations

from ..cache import (
    GoldenSummary,
    get_cache,
    golden_key,
    load_golden_summary,
    module_fingerprint,
    store_golden_summary,
)
from .spec import ModuleSpec, ShardResult, ShardSpec

#: Per-process injector cache: one compiled engine per module spec.
_WORKER_SPEC: ModuleSpec | None = None
_WORKER_INJECTOR = None


def materialize_injector(spec: ModuleSpec, interp_tier: str | None = None):
    """Build a FaultInjector for a spec, warm-starting the golden run.

    The golden-run summary (outputs, per-instruction counts, dynamic
    count) is content-addressed by the re-materialized module's
    fingerprint, so a worker — or a later campaign over the same module
    — skips the fault-free reference execution; a cache miss computes
    and publishes it for every subsequent process.
    """
    # Imported lazily: repro.fi.parallel is sched's thin client, so a
    # top-level import here would be circular through fi.__init__.
    from ..fi.campaign import FaultInjector
    module = spec.materialize()
    cache = get_cache()
    key = golden_key(module_fingerprint(module))
    golden = load_golden_summary(cache, key)
    injector = FaultInjector(module, golden=golden, interp_tier=interp_tier)
    if golden is None:
        store_golden_summary(
            cache, key, GoldenSummary.from_run(injector.golden)
        )
    return injector


def span_perf(result) -> dict:
    """Throughput facts a shard ships back alongside its counts."""
    return {
        "dynamic_instructions": result.dynamic_instructions,
        "skipped_instructions": result.skipped_instructions,
        "snapshot_bytes": result.snapshot_bytes,
        "checkpointed": result.checkpointed,
        "checkpoint_degraded": result.checkpoint_degraded,
        "interp_tier": result.interp_tier,
        "codegen_functions": result.codegen_functions,
        "codegen_fallbacks": result.codegen_fallbacks,
        "batch_lanes": result.batch_lanes,
        "batch_divergences": result.batch_divergences,
        "batch_fallbacks": result.batch_fallbacks,
        "batch_reconverged": result.batch_reconverged,
        "batch_drains": result.batch_drains,
        "drain_instructions": result.drain_instructions,
    }


def run_shard(spec: ShardSpec, injector=None) -> ShardResult:
    """Execute one shard and return its counts + throughput facts.

    With no ``injector`` the per-process cache supplies one (building
    it on first use); passing an injector runs the shard on it directly
    — the serial in-driver path, which must not disturb the worker
    cache.
    """
    global _WORKER_SPEC, _WORKER_INJECTOR
    if injector is None:
        if _WORKER_INJECTOR is None or _WORKER_SPEC != spec.module:
            _WORKER_INJECTOR = materialize_injector(
                spec.module, interp_tier=spec.interp_tier
            )
            _WORKER_SPEC = spec.module
        injector = _WORKER_INJECTOR
    injector.configure_checkpoints(spec.checkpoint, spec.checkpoint_stride)
    injector.configure_tier(spec.interp_tier)
    injector.configure_batch(spec.batch_lanes)
    span = injector.run_span(spec.start, spec.count, spec.seed)
    return ShardResult(
        start=spec.start,
        count=spec.count,
        counts=dict(span.counts),
        cpu_seconds=span.cpu_seconds,
        perf=span_perf(span),
    )
