"""The campaign scheduler behind the ``repro.serve`` daemon.

One :class:`Scheduler` owns a bounded priority queue of campaign
requests and a dispatcher thread that drains it through the same
:func:`~repro.sched.executor.run_store_campaign` path the CLI uses —
so a result computed by ``repro inject`` and one computed by the daemon
are byte-identical, and either serves the other's repeat requests from
the shared result store without executing a single trial.

Admission control happens at submit time, in order:

1. **store hit** — the fingerprint+config key already has a merged
   result: the job completes immediately (``cached``), microseconds,
   no queue slot consumed;
2. **coalescing** — an identical request is already queued or running:
   the submitter is attached to the in-flight job (one computation,
   many waiters);
3. **backpressure** — the queue is full: :class:`QueueFull` propagates
   and the HTTP layer answers 429; accepted work is never dropped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..cache import get_cache
from ..cache.artifacts import CAMPAIGN_KIND
from .executor import campaign_request_key, run_store_campaign
from .queue import INTERACTIVE, JobQueue, QueueFull, resolve_priority
from .spec import CampaignSettings, ModuleSpec

__all__ = ["CampaignRequest", "Job", "Scheduler", "QueueFull"]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


@dataclass(frozen=True)
class CampaignRequest:
    """One analyze/campaign request as it enters the scheduler."""

    spec: ModuleSpec
    runs: int
    seed: int = 0
    settings: CampaignSettings = field(default_factory=CampaignSettings)
    priority: int = INTERACTIVE

    @classmethod
    def from_payload(cls, payload: dict, *,
                     default_workers: int = 1) -> "CampaignRequest":
        """Build a request from the JSON wire form (see repro.serve).

        Raises ``ValueError``/``KeyError``/``TypeError`` on malformed
        payloads; the HTTP layer maps those to 400 responses.
        """
        spec = ModuleSpec.from_dict(payload)
        if spec.benchmark is None and spec.ir_text is None:
            raise ValueError("request names neither a benchmark nor IR")
        runs = int(payload["runs"])
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        halfwidth = payload.get("ci_halfwidth")
        settings = CampaignSettings(
            workers=max(1, int(payload.get("workers", default_workers))),
            ci_halfwidth=float(halfwidth) if halfwidth is not None else None,
            checkpoint=bool(payload.get("checkpoint", True)),
            checkpoint_stride=int(payload.get("checkpoint_stride", 0)),
            interp_tier=payload.get("interp_tier"),
            batch_lanes=int(payload.get("batch_lanes", 0)),
        )
        return cls(
            spec=spec,
            runs=runs,
            seed=int(payload.get("seed", 0)),
            settings=settings,
            priority=resolve_priority(payload.get("priority", "interactive")),
        )


class Job:
    """One scheduled campaign and its lifecycle."""

    def __init__(self, job_id: str, key: str, fingerprint: str,
                 request: CampaignRequest):
        self.id = job_id
        self.key = key
        self.fingerprint = fingerprint
        self.request = request
        self.status = JOB_QUEUED
        self.result = None
        self.error: str | None = None
        self.cached = False
        #: How many submits this job absorbed beyond the first.
        self.coalesced = 0
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self._done = threading.Event()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def resolve(self, status: str, *, result=None,
                error: str | None = None) -> None:
        self.result = result
        self.error = error
        self.status = status
        self.finished = time.time()
        self._done.set()

    def to_dict(self, include_result: bool = True) -> dict:
        payload = {
            "job_id": self.id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "runs": self.request.runs,
            "seed": self.request.seed,
            "priority": self.request.priority,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if self.error is not None:
            payload["error"] = self.error
        if include_result and self.result is not None:
            body = self.result.to_dict()
            body["total"] = self.result.total
            body["from_cache"] = self.result.from_cache
            body["stopped_early"] = self.result.stopped_early
            body["shards_resumed"] = self.result.shards_resumed
            payload["result"] = body
        return payload


class Scheduler:
    """Dispatcher thread + queue + coalescing index over the store."""

    def __init__(self, *, max_pending: int = 64, default_workers: int = 1):
        self.default_workers = default_workers
        self._queue = JobQueue(max_pending)
        self._jobs: dict[str, Job] = {}
        #: key -> queued/running job, for request coalescing.
        self._active: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._thread: threading.Thread | None = None
        self._running = False
        self.counters = {
            "submitted": 0, "cache_hits": 0, "coalesced": 0,
            "rejected": 0, "completed": 0, "failed": 0,
            # Aggregated batch-tier reconvergence telemetry from every
            # completed job (surfaced over /v1/stats).
            "batch_reconverged": 0, "batch_drains": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-sched", daemon=True
        )
        self._thread.start()

    def pause(self, timeout: float = 10.0) -> None:
        """Stop draining the queue without closing it.

        Admission control (store hits, coalescing, backpressure) keeps
        working; queued jobs wait until :meth:`start` is called again.
        """
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def stop(self, timeout: float = 10.0) -> None:
        self._queue.close()
        self.pause(timeout)

    # -- submission ------------------------------------------------------

    def submit(self, request: CampaignRequest) -> Job:
        """Admit one request: store hit, coalesce, or enqueue (429)."""
        module = request.spec.materialize()
        from ..cache import module_fingerprint
        fingerprint = module_fingerprint(module)
        key = campaign_request_key(
            module, request.runs, request.seed, request.settings
        )
        cache = get_cache()
        with self._lock:
            self.counters["submitted"] += 1
            active = self._active.get(key)
            if active is not None:
                active.coalesced += 1
                self.counters["coalesced"] += 1
                cache.bump_counters(coalesced_requests=1)
                return active
            job = self._new_job(key, fingerprint, request)
            payload = cache.load(CAMPAIGN_KIND, key)
            if payload is not None:
                try:
                    from ..fi.campaign import CampaignResult
                    result = CampaignResult.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    result = None
                if result is not None:
                    job.cached = True
                    job.resolve(JOB_DONE, result=result)
                    self.counters["cache_hits"] += 1
                    self._jobs[job.id] = job
                    return job
            try:
                self._queue.push(job, request.priority)
            except QueueFull:
                self.counters["rejected"] += 1
                cache.bump_counters(requests_rejected=1)
                raise
            self._jobs[job.id] = job
            self._active[key] = job
            return job

    def _new_job(self, key: str, fingerprint: str,
                 request: CampaignRequest) -> Job:
        self._counter += 1
        return Job(f"job-{self._counter:06d}", key, fingerprint, request)

    # -- execution -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while self._running:
            job = self._queue.pop(timeout=0.1)
            if job is None:
                continue
            self.execute(job)

    def execute(self, job: Job) -> None:
        """Run one job through the shared store-backed campaign path."""
        job.status = JOB_RUNNING
        job.started = time.time()
        try:
            result = run_store_campaign(
                job.request.runs, job.request.seed,
                spec=job.request.spec, settings=job.request.settings,
            )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.resolve(JOB_FAILED, error=f"{type(exc).__name__}: {exc}")
            self.counters["failed"] += 1
        else:
            job.resolve(JOB_DONE, result=result)
            self.counters["completed"] += 1
            self.counters["batch_reconverged"] += getattr(
                result, "batch_reconverged", 0
            )
            self.counters["batch_drains"] += getattr(
                result, "batch_drains", 0
            )
        finally:
            with self._lock:
                if self._active.get(job.key) is job:
                    del self._active[job.key]

    # -- inspection ------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queued_ahead(self, job: Job) -> int:
        """Jobs still pending that were admitted before this one."""
        with self._lock:
            return sum(
                1 for other in self._active.values()
                if other is not job and other.status == JOB_QUEUED
                and other.created <= job.created
            )

    def stats(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "counters": dict(self.counters),
                "jobs": by_status,
                "pending": len(self._queue),
            }
