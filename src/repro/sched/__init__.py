"""Campaign scheduling: shard planning, execution, queueing, service.

This package is the execution spine shared by every campaign entry
point — ``repro inject``, the pytest harness, and the ``repro.serve``
daemon all flow through :func:`run_store_campaign`, so their merged
counts are byte-identical by construction:

* :mod:`~repro.sched.spec` — picklable module/shard/settings records;
* :mod:`~repro.sched.plan` — deterministic run-range sharding
  (:class:`ShardPlan`), independent of worker placement;
* :mod:`~repro.sched.shard` — :func:`run_shard`, the one entrypoint a
  worker (local pool process or remote-style) executes;
* :mod:`~repro.sched.executor` — the campaign driver with store-backed
  partial-shard checkpoints and interrupt-safe teardown;
* :mod:`~repro.sched.queue` / :mod:`~repro.sched.scheduler` — bounded
  priority queue, request coalescing and the service dispatcher.
"""

from .executor import (
    CampaignExecutor,
    CampaignInterrupted,
    campaign_request_key,
    run_store_campaign,
)
from .plan import ShardPlan, ShardRange, coalesce_ranges
from .queue import INTERACTIVE, NIGHTLY, JobQueue, QueueFull, resolve_priority
from .scheduler import CampaignRequest, Job, Scheduler
from .shard import materialize_injector, run_shard
from .spec import CampaignSettings, ModuleSpec, ShardResult, ShardSpec

__all__ = [
    "CampaignExecutor",
    "CampaignInterrupted",
    "CampaignRequest",
    "CampaignSettings",
    "INTERACTIVE",
    "Job",
    "JobQueue",
    "ModuleSpec",
    "NIGHTLY",
    "QueueFull",
    "Scheduler",
    "ShardPlan",
    "ShardRange",
    "ShardResult",
    "ShardSpec",
    "campaign_request_key",
    "coalesce_ranges",
    "materialize_injector",
    "resolve_priority",
    "run_shard",
    "run_store_campaign",
]
