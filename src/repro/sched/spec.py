"""Picklable specifications shared by every campaign entry point.

These are the nouns of the scheduler layer: what module to run
(:class:`ModuleSpec`), how to run it (:class:`CampaignSettings`), one
shard of work (:class:`ShardSpec`) and its outcome
(:class:`ShardResult`).  All four are plain data — a shard can cross a
``multiprocessing`` pipe, an HTTP request body, or a JSON checkpoint in
the shared result store without losing anything, which is what lets the
CLI pool, the service daemon and independent "remote" workers execute
the same campaign and merge bit-identical counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Module
from ..stats.confidence import Z_95

#: Outcome the stopping rule watches by default (mirrors fi.campaign.SDC
#: without importing it — sched must stay importable from fi).
DEFAULT_CI_OUTCOME = "sdc"


@dataclass(frozen=True)
class ModuleSpec:
    """Picklable recipe a worker uses to re-materialize a Module."""

    benchmark: str | None = None
    scale: str = "default"
    input_seed: int = 0
    ir_text: str | None = None

    @classmethod
    def from_benchmark(cls, name: str, scale: str = "default",
                       input_seed: int = 0) -> "ModuleSpec":
        return cls(benchmark=name, scale=scale, input_seed=input_seed)

    @classmethod
    def from_module(cls, module: Module) -> "ModuleSpec":
        """Spec for an arbitrary (e.g. optimized or protected) module,
        shipped as printed IR and re-parsed in the worker."""
        from ..ir.printer import print_module
        return cls(ir_text=print_module(module))

    def materialize(self) -> Module:
        if self.benchmark is not None:
            from ..bench.registry import build_module
            return build_module(self.benchmark, self.scale, self.input_seed)
        if self.ir_text is None:
            raise ValueError("ModuleSpec names neither a benchmark nor IR")
        from ..ir.parser import parse_module
        return parse_module(self.ir_text)

    # -- wire form (the service protocol) -------------------------------

    def to_dict(self) -> dict:
        payload: dict = {}
        if self.benchmark is not None:
            payload["benchmark"] = self.benchmark
            payload["scale"] = self.scale
            payload["input_seed"] = self.input_seed
        if self.ir_text is not None:
            payload["ir_text"] = self.ir_text
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSpec":
        return cls(
            benchmark=data.get("benchmark"),
            scale=str(data.get("scale", "default")),
            input_seed=int(data.get("input_seed", 0)),
            ir_text=data.get("ir_text"),
        )


@dataclass(frozen=True)
class CampaignSettings:
    """Knobs of the campaign scheduler (pool size, stopping rule, tiers).

    Counts are a pure function of the module, the seed, the run budget
    and the stopping rule; every other knob here is wall-clock-only and
    deliberately excluded from the campaign cache key.
    """

    workers: int = 1
    #: Runs per shard; 0 = one contiguous shard per worker per round.
    chunk_size: int = 0
    #: Stop once the Wilson CI half-width on ``ci_outcome`` drops below
    #: this; None disables early stopping (all runs execute).
    ci_halfwidth: float | None = None
    ci_outcome: str = DEFAULT_CI_OUTCOME
    ci_z: float = Z_95
    #: Runs per early-stopping round; 0 = auto.
    round_size: int = 0
    #: Never stop before this many runs (guards tiny-sample intervals).
    min_runs: int = 100
    #: Per-shard pool timeout in seconds; on expiry the shard is retried
    #: serially.  None = wait indefinitely.
    round_timeout: float | None = None
    #: Checkpoint-and-fork: restore golden-prefix snapshots so each
    #: trial executes only its suffix.  Counts are invariant to this
    #: knob (it is deliberately *not* part of the campaign cache key);
    #: an injector that fails to capture or resume degrades back to
    #: cold full runs, mirroring the pool-failure policy.
    checkpoint: bool = True
    #: Snapshot stride in dynamic instructions; 0 = auto.
    checkpoint_stride: int = 0
    #: Interpreter tier ("codegen"/"closure"/"batch"); None keeps each
    #: engine's resolved default.  Counts are invariant to the tier (the
    #: CI differential enforces bit-identity), so — like the checkpoint
    #: knobs — it is deliberately *not* part of the campaign cache key.
    interp_tier: str | None = None
    #: Lanes per lockstep group on the batch tier; <= 0 picks the
    #: tier's default.  Another wall-clock-only knob: counts are
    #: bit-identical at every lane count, so it too stays *out* of the
    #: campaign cache key.
    batch_lanes: int = 0

    def effective_round_size(self) -> int:
        """Round size the driver will use under early stopping (0 when
        no stopping rule applies).  Part of the campaign cache key: two
        configurations that could stop at different run prefixes must
        never share a cached result."""
        if self.ci_halfwidth is None:
            return 0
        if self.round_size > 0:
            return self.round_size
        return max(self.min_runs, 50 * max(1, self.workers))

    def lane_multiple(self) -> int:
        """Shard sizes are rounded up to this so no lockstep group
        straddles a shard boundary and runs as a fraction of its width."""
        if self.interp_tier == "batch" and self.batch_lanes > 1:
            return self.batch_lanes
        return 1


@dataclass(frozen=True)
class ShardSpec:
    """One self-contained unit of campaign work.

    ``run_shard(spec)`` is the single execution entrypoint: the local
    pool workers, the serial fallback and remote-style workers all call
    it, and because every run index owns its seed substream the returned
    counts depend only on ``(module, seed, [start, start+count))`` —
    never on where or when the shard executed.
    """

    module: ModuleSpec
    start: int
    count: int
    seed: int
    checkpoint: bool = True
    checkpoint_stride: int = 0
    interp_tier: str | None = None
    batch_lanes: int = 0

    @property
    def stop(self) -> int:
        return self.start + self.count

    def to_dict(self) -> dict:
        return {
            "module": self.module.to_dict(),
            "start": self.start,
            "count": self.count,
            "seed": self.seed,
            "checkpoint": self.checkpoint,
            "checkpoint_stride": self.checkpoint_stride,
            "interp_tier": self.interp_tier,
            "batch_lanes": self.batch_lanes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(
            module=ModuleSpec.from_dict(data["module"]),
            start=int(data["start"]),
            count=int(data["count"]),
            seed=int(data["seed"]),
            checkpoint=bool(data.get("checkpoint", True)),
            checkpoint_stride=int(data.get("checkpoint_stride", 0)),
            interp_tier=data.get("interp_tier"),
            batch_lanes=int(data.get("batch_lanes", 0)),
        )


@dataclass
class ShardResult:
    """Counts and throughput facts one executed shard ships back.

    JSON-safe via :meth:`to_dict`, so a completed shard doubles as a
    partial-campaign checkpoint in the shared result store: a killed
    worker's finished shards replay from disk instead of re-executing.
    """

    start: int
    count: int
    counts: dict[str, int] = field(default_factory=dict)
    cpu_seconds: float = 0.0
    perf: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "count": self.count,
            "counts": dict(self.counts),
            "cpu_seconds": self.cpu_seconds,
            "perf": dict(self.perf),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardResult":
        counts = {str(k): int(v) for k, v in data["counts"].items()}
        perf = data.get("perf", {})
        if not isinstance(perf, dict):
            raise ValueError("malformed shard perf block")
        return cls(
            start=int(data["start"]),
            count=int(data["count"]),
            counts=counts,
            cpu_seconds=float(data["cpu_seconds"]),
            perf=perf,
        )
