"""The campaign execution core shared by the CLI and the service.

:class:`CampaignExecutor` owns the whole lifecycle of one campaign:
round planning (:class:`~repro.sched.plan.ShardPlan`), dispatching
shards to a ``multiprocessing`` pool or executing them in-process,
merging shard counts, Wilson-CI early stopping, and partial-campaign
checkpoints in the shared result store.  ``repro inject``, the harness,
and the ``repro.serve`` daemon all execute campaigns through this one
class (via :func:`run_store_campaign`), which is why their results are
byte-identical by construction.

Failure semantics, in order of escalation:

* a shard task fails (worker crash, unpicklable surprise) — that shard
  alone re-runs serially in the driver; remaining shards stay pooled;
* the pool cannot be created or dies — the campaign degrades to serial
  in-process execution (``degraded``), never losing counts;
* the user interrupts (KeyboardInterrupt) — children are terminated,
  already-finished shards are harvested and flushed to the store, and
  :class:`CampaignInterrupted` carries a partial result that reports
  exactly which seed ranges completed.  Partial results are never
  written to the campaign cache (only whole-campaign results are), but
  their per-shard checkpoints are, so a re-run resumes instead of
  restarting.
"""

from __future__ import annotations

import multiprocessing
import time

from ..cache import (
    GoldenSummary,
    campaign_key,
    get_cache,
    golden_key,
    load_golden_summary,
    module_fingerprint,
    shard_key,
    store_golden_summary,
)
from ..cache.artifacts import CAMPAIGN_KIND, SHARD_KIND
from ..stats.confidence import wilson_confidence
from .plan import ShardPlan, ShardRange, coalesce_ranges
from .spec import CampaignSettings, ModuleSpec, ShardResult, ShardSpec


class CampaignInterrupted(KeyboardInterrupt):
    """A campaign was interrupted; ``result`` holds the partial counts.

    Subclasses :class:`KeyboardInterrupt` so un-aware callers still see
    an ordinary interrupt, while the CLI and the scheduler can report
    which seed ranges completed before teardown.
    """

    def __init__(self, result):
        super().__init__("campaign interrupted")
        self.result = result


class CampaignExecutor:
    """Campaign driver: shard planning, worker pool, early stopping,
    store-backed partial checkpoints, and teardown that never hangs."""

    def __init__(self, spec: ModuleSpec | None = None, *,
                 injector=None,
                 settings: CampaignSettings | None = None,
                 store=None, store_key: str | None = None):
        if spec is None and injector is None:
            raise ValueError("need a ModuleSpec or a FaultInjector")
        self._spec = spec
        self._injector = injector
        self.settings = settings or CampaignSettings()
        #: Shared result store for partial-shard checkpoints; shard
        #: persistence is enabled only when a campaign-level key exists
        #: (i.e. the caller went through :func:`run_store_campaign`).
        self._store = store
        self._store_key = store_key
        #: (start, count) of every shard checkpoint this executor wrote,
        #: so a completed campaign can compact them (the merged result
        #: supersedes them).  Pre-coalescing, unlike ``completed_ranges``.
        self._checkpointed_shards: list[tuple[int, int]] = []

    @property
    def injector(self):
        """The in-process injector (serial path and fallback)."""
        if self._injector is None:
            from .shard import materialize_injector
            self._injector = materialize_injector(
                self._spec, interp_tier=self.settings.interp_tier
            )
        return self._injector

    def spec(self) -> ModuleSpec:
        if self._spec is not None:
            return self._spec
        return ModuleSpec.from_module(self._injector.module)

    # -- plumbing ------------------------------------------------------

    def _round_size(self, max_runs: int) -> int:
        if self.settings.ci_halfwidth is None:
            return max_runs  # no stopping rule: one round covers everything
        return self.settings.effective_round_size()

    def _shard_spec(self, module_spec: ModuleSpec,
                    rng: ShardRange, seed: int) -> ShardSpec:
        settings = self.settings
        return ShardSpec(
            module=module_spec, start=rng.start, count=rng.count, seed=seed,
            checkpoint=settings.checkpoint,
            checkpoint_stride=settings.checkpoint_stride,
            interp_tier=settings.interp_tier,
            batch_lanes=settings.batch_lanes,
        )

    def _interval_tight(self, result) -> bool:
        settings = self.settings
        if settings.ci_halfwidth is None:
            return False
        if result.total < max(1, settings.min_runs):
            return False
        interval = wilson_confidence(
            result.counts.get(settings.ci_outcome, 0), result.total,
            settings.ci_z,
        )
        return interval.margin <= settings.ci_halfwidth

    # -- shard checkpoints in the shared result store --------------------

    def _shard_store_key(self, rng: ShardRange) -> str | None:
        if self._store is None or self._store_key is None:
            return None
        return shard_key(self._store_key, rng.start, rng.count)

    def _load_shard(self, rng: ShardRange) -> ShardResult | None:
        key = self._shard_store_key(rng)
        if key is None:
            return None
        payload = self._store.load(SHARD_KIND, key)
        if payload is None:
            return None
        try:
            shard = ShardResult.from_dict(payload)
            if shard.start != rng.start or shard.count != rng.count:
                raise ValueError("shard range mismatch")
        except (KeyError, TypeError, ValueError):
            self._store.remove(SHARD_KIND, key)
            return None
        self._store.bump_counters(partial_shards_resumed=1)
        return shard

    def _store_shard(self, rng: ShardRange, shard: ShardResult) -> None:
        key = self._shard_store_key(rng)
        if key is None:
            return
        if self._store.store(SHARD_KIND, key, shard.to_dict()):
            self._checkpointed_shards.append((rng.start, rng.count))
            self._store.bump_counters(partial_shards_written=1)

    def discard_shard_checkpoints(self) -> None:
        """Drop checkpoints made obsolete by the merged campaign result."""
        if self._store is None or self._store_key is None:
            return
        for start, count in self._checkpointed_shards:
            self._store.remove(
                SHARD_KIND, shard_key(self._store_key, start, count)
            )
        self._checkpointed_shards.clear()

    # -- merging ---------------------------------------------------------

    @staticmethod
    def _merge_shard(result, shard: ShardResult, *,
                     resumed: bool = False) -> None:
        for outcome, n in shard.counts.items():
            result.counts[outcome] = result.counts.get(outcome, 0) + n
        result.cpu_seconds += shard.cpu_seconds
        perf = shard.perf
        result.dynamic_instructions += perf.get("dynamic_instructions", 0)
        result.skipped_instructions += perf.get("skipped_instructions", 0)
        result.snapshot_bytes += perf.get("snapshot_bytes", 0)
        result.checkpointed |= bool(perf.get("checkpointed", False))
        result.checkpoint_degraded |= bool(
            perf.get("checkpoint_degraded", False)
        )
        result.interp_tier = result.interp_tier or perf.get("interp_tier", "")
        result.codegen_functions = max(
            result.codegen_functions, perf.get("codegen_functions", 0)
        )
        result.codegen_fallbacks = max(
            result.codegen_fallbacks, perf.get("codegen_fallbacks", 0)
        )
        result.batch_lanes = max(
            result.batch_lanes, perf.get("batch_lanes", 0)
        )
        result.batch_divergences += perf.get("batch_divergences", 0)
        result.batch_fallbacks += perf.get("batch_fallbacks", 0)
        result.batch_reconverged += perf.get("batch_reconverged", 0)
        result.batch_drains += perf.get("batch_drains", 0)
        result.drain_instructions += perf.get("drain_instructions", 0)
        result.completed_ranges.append((shard.start, shard.count))
        if resumed:
            result.shards_resumed += 1

    # -- execution -----------------------------------------------------

    def run(self, max_runs: int, seed: int = 0):
        """Execute up to ``max_runs`` injections of campaign ``seed``."""
        from ..fi.campaign import CampaignResult
        settings = self.settings
        workers = max(1, settings.workers)
        started = time.perf_counter()
        result = CampaignResult()
        pool = None
        use_pool = workers > 1
        degraded = False
        executed = 0
        rounds = 0
        try:
            while executed < max_runs:
                round_runs = min(self._round_size(max_runs),
                                 max_runs - executed)
                plan = ShardPlan.split(
                    executed, round_runs, workers,
                    chunk_size=settings.chunk_size,
                    lane_multiple=settings.lane_multiple(),
                )
                todo = []
                for rng in plan:
                    cached = self._load_shard(rng)
                    if cached is not None:
                        self._merge_shard(result, cached, resumed=True)
                    else:
                        todo.append(rng)
                if todo and use_pool and pool is None:
                    self._publish_golden()
                    pool = self._make_pool(workers)
                    if pool is None:
                        use_pool, degraded = False, True
                if todo and use_pool and pool is not None:
                    leftover, broken = self._pool_round(pool, todo, seed,
                                                        result)
                    if broken:
                        pool = self._discard_pool(pool)
                        use_pool, degraded = False, True
                    todo = leftover
                for rng in todo:
                    self._serial_shard(rng, seed, result)
                executed += round_runs
                rounds += 1
                if self._interval_tight(result):
                    result.stopped_early = True
                    break
        except KeyboardInterrupt:
            self._finalize(result, started, max_runs, rounds,
                           workers if use_pool else 1, degraded)
            result.interrupted = True
            raise CampaignInterrupted(result) from None
        finally:
            if pool is not None:
                self._discard_pool(pool)
        self._finalize(result, started, max_runs, rounds,
                       workers if use_pool else 1, degraded)
        return result

    def _finalize(self, result, started: float, max_runs: int,
                  rounds: int, workers: int, degraded: bool) -> None:
        result.wall_seconds = time.perf_counter() - started
        result.runs_requested = max_runs
        result.rounds = rounds
        result.workers = workers
        result.degraded = degraded
        result.completed_ranges = coalesce_ranges(result.completed_ranges)

    def _publish_golden(self) -> None:
        """Seed the golden-summary artifact before workers spawn, so
        every worker's first shard skips the fault-free reference run."""
        if self._injector is None:
            return
        cache = get_cache()
        key = golden_key(module_fingerprint(self._injector.module))
        if load_golden_summary(cache, key) is None:
            store_golden_summary(
                cache, key, GoldenSummary.from_run(self._injector.golden)
            )

    def _serial_shard(self, rng: ShardRange, seed: int, result) -> None:
        """Execute one shard in-process (serial path and pool fallback).

        The in-process injector executes, so the ``module`` field of the
        shard spec is never materialized — an empty placeholder avoids
        re-printing the module's IR per shard when no spec was given.
        """
        from .shard import run_shard
        shard_spec = self._shard_spec(self._spec or ModuleSpec(), rng, seed)
        shard = run_shard(shard_spec, injector=self.injector)
        self._store_shard(rng, shard)
        self._merge_shard(result, shard)

    def _make_pool(self, workers: int):
        try:
            return multiprocessing.get_context().Pool(workers)
        except Exception:
            return None

    def _pool_round(self, pool, ranges, seed, result):
        """Dispatch shards to the pool, merging results as they land.

        Returns ``(leftover, broken)``: shards that must be retried
        serially, and whether the pool should be abandoned.  On
        KeyboardInterrupt, already-finished shards are harvested and
        merged before the interrupt propagates — their counts and store
        checkpoints are never lost.
        """
        from .shard import run_shard
        module_spec = self.spec()
        pending = [
            (rng, pool.apply_async(
                run_shard, (self._shard_spec(module_spec, rng, seed),)
            ))
            for rng in ranges
        ]
        merged: set[int] = set()
        leftover = []
        broken = False
        try:
            for rng, task in pending:
                try:
                    shard = task.get(self.settings.round_timeout)
                except KeyboardInterrupt:
                    raise
                except multiprocessing.TimeoutError:
                    leftover.append(rng)
                    broken = True  # a wedged worker poisons the pool
                except Exception:
                    leftover.append(rng)
                else:
                    self._store_shard(rng, shard)
                    self._merge_shard(result, shard)
                    merged.add(rng.index)
            if leftover:
                # A failed task usually means a worker-side failure that
                # would repeat (bad spec, dead child).  Successful shards
                # of this round stay merged — only the failures retry
                # serially — but the pool is not trusted again.
                broken = True
        except KeyboardInterrupt:
            pool.terminate()  # stop children before harvesting
            for rng, task in pending:
                if rng.index in merged or not task.ready():
                    continue
                try:
                    shard = task.get(0)
                except Exception:
                    continue
                self._store_shard(rng, shard)
                self._merge_shard(result, shard)
            raise
        return leftover, broken

    @staticmethod
    def _discard_pool(pool):
        pool.terminate()
        pool.join()
        return None


def run_store_campaign(
    runs: int, seed: int = 0, *,
    spec: ModuleSpec | None = None,
    injector=None,
    module=None,
    settings: CampaignSettings | None = None,
):
    """A campaign through the shared result store.

    The merged counts of a campaign are a pure function of the module
    content, the seed, the run budget and the stopping rule (the PR 1
    seed protocol), so they are cached under exactly that key; a hit
    replays the counts without executing a single injection — or even
    building an engine (``injector`` may be a zero-arg factory, only
    invoked on a miss).  A miss runs the campaign with per-shard
    checkpointing enabled, persists the merged result, and compacts the
    now-redundant shard entries.  This is the single execution path
    behind ``repro inject``, the harness, and the service daemon.
    """
    from ..fi.campaign import CampaignResult, FaultInjector
    settings = settings or CampaignSettings()
    if module is None:
        if isinstance(injector, FaultInjector):
            module = injector.module
        elif spec is not None:
            module = spec.materialize()
        else:
            raise ValueError("need a module, a ModuleSpec or an injector")
    cache = get_cache()
    key = campaign_key(
        module_fingerprint(module), runs, seed,
        ci_halfwidth=settings.ci_halfwidth,
        ci_outcome=settings.ci_outcome,
        min_runs=settings.min_runs,
        round_size=settings.effective_round_size(),
    )
    payload = cache.load(CAMPAIGN_KIND, key)
    if payload is not None:
        try:
            return CampaignResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            pass  # malformed entry: recompute below and overwrite
    if injector is not None and not isinstance(injector, FaultInjector):
        injector = injector()  # lazy factory, paid only on a miss
    executor = CampaignExecutor(
        spec, injector=injector, settings=settings,
        store=cache if cache.enabled else None, store_key=key,
    )
    result = executor.run(runs, seed=seed)
    cache.store(CAMPAIGN_KIND, key, result.to_dict())
    executor.discard_shard_checkpoints()
    return result


def campaign_request_key(module, runs: int, seed: int,
                         settings: CampaignSettings) -> str:
    """The store key a request resolves to (used for coalescing)."""
    return campaign_key(
        module_fingerprint(module), runs, seed,
        ci_halfwidth=settings.ci_halfwidth,
        ci_outcome=settings.ci_outcome,
        min_runs=settings.min_runs,
        round_size=settings.effective_round_size(),
    )
