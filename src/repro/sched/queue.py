"""Bounded priority work queue with backpressure.

The service scheduler feeds campaign jobs through this queue.  Two
priority classes cover the ROADMAP's traffic split: ``interactive``
requests (a user waiting on a submit) overtake ``nightly`` batch work,
and within a class jobs stay FIFO.  The queue is *bounded*: a push to a
full queue raises :class:`QueueFull` immediately instead of buffering
without limit, which the HTTP layer translates into a 429 — load is
shed at admission, never by dropping accepted work.
"""

from __future__ import annotations

import heapq
import itertools
import threading

#: Priority classes, lower sorts first.
INTERACTIVE = 0
NIGHTLY = 10

PRIORITY_NAMES = {"interactive": INTERACTIVE, "nightly": NIGHTLY}


def resolve_priority(name) -> int:
    """Map a wire-level priority (name or int) to its numeric class."""
    if isinstance(name, bool):
        raise ValueError("priority must be a name or an integer")
    if isinstance(name, int):
        return name
    try:
        return PRIORITY_NAMES[str(name).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown priority {name!r}; expected one of "
            f"{', '.join(PRIORITY_NAMES)}"
        ) from None


class QueueFull(RuntimeError):
    """The queue is at capacity; the request must be rejected (429)."""


class JobQueue:
    """Thread-safe bounded priority queue (heap of (priority, seq, item))."""

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self._heap: list[tuple[int, int, object]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def push(self, item, priority: int = INTERACTIVE) -> None:
        """Enqueue; raises :class:`QueueFull` at capacity."""
        with self._not_empty:
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(self._heap) >= self.max_pending:
                raise QueueFull(
                    f"work queue is full ({self.max_pending} pending)"
                )
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            self._not_empty.notify()

    def pop(self, timeout: float | None = None):
        """Highest-priority item, or None on timeout / after close."""
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Wake every blocked ``pop`` with None; further pushes fail."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
