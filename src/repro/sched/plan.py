"""Deterministic partitioning of a campaign's run-index space.

A :class:`ShardPlan` splits a contiguous range of run indices into
contiguous :class:`ShardRange` pieces.  Because every run index draws
from its own seed substream (:mod:`repro.fi.seeds`), the merged counts
of a plan's shards are bit-identical to a serial execution of the whole
range — for any shard count, any chunk size, and any placement of the
shards across processes or machines.  The plan itself is a pure
function of ``(start, count, shards, chunk_size, lane_multiple)``, so
two schedulers that agree on those five integers materialize the exact
same shard boundaries and can share partial-shard checkpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ShardRange:
    """One contiguous slice ``[start, start+count)`` of run indices."""

    index: int
    start: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.count


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic cover of ``[start, start+count)`` by shards."""

    start: int
    count: int
    ranges: tuple[ShardRange, ...]

    @classmethod
    def split(cls, start: int, count: int, shards: int, *,
              chunk_size: int = 0, lane_multiple: int = 1) -> "ShardPlan":
        """Partition ``[start, start+count)`` into contiguous ranges.

        ``chunk_size`` fixes the runs per shard (0 = divide evenly over
        ``shards``); ``lane_multiple`` rounds the chunk up so no
        batch-tier lockstep group straddles a shard boundary.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        chunk = chunk_size
        if chunk <= 0:
            chunk = math.ceil(count / max(1, shards)) if count else 1
        if lane_multiple > 1:
            chunk = math.ceil(chunk / lane_multiple) * lane_multiple
        ranges = []
        offset, end = start, start + count
        while offset < end:
            size = min(chunk, end - offset)
            ranges.append(ShardRange(len(ranges), offset, size))
            offset += size
        return cls(start=start, count=count, ranges=tuple(ranges))

    def __iter__(self):
        return iter(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)


def coalesce_ranges(ranges) -> list[tuple[int, int]]:
    """Merge ``(start, count)`` pairs into maximal contiguous spans.

    Used to report which seed ranges of an interrupted campaign
    completed: shards finish out of order, but the human-facing answer
    is "runs 0-600 and 750-800 are done".
    """
    spans = sorted((int(s), int(c)) for s, c in ranges if c > 0)
    merged: list[list[int]] = []
    for start, count in spans:
        if merged and start <= merged[-1][0] + merged[-1][1]:
            last = merged[-1]
            last[1] = max(last[1], start + count - last[0])
        else:
            merged.append([start, count])
    return [(s, c) for s, c in merged]
