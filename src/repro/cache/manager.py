"""In-memory analysis cache shared by every consumer of one module.

Building TRIDENT plus its two ablations (fig5) or the PVF/ePVF
baselines (fig9) over the same module used to recompute control
dependence, loop info and post-dominators once *per model*; the fc and
divergence-weighting sub-models each kept private per-function caches.
:class:`AnalysisManager` hoists those analyses to one per-module cache
keyed on the module fingerprint: every model built over the module
shares them, and a module that is mutated and re-finalized (protection
transforms, optimization passes do this in place on fresh modules, but
user code may rebuild) invalidates the whole set at once.

Invalidation is two-level: the cheap check is the module's finalize
``revision``; only when the revision moved is the canonical-IR
fingerprint recomputed, and only when *that* changed are cached
analyses discarded (a no-op re-finalize keeps them).
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from ..analysis.cfg import predecessor_map, reverse_postorder
from ..analysis.controldep import ControlDependence
from ..analysis.dominators import compute_dominators, compute_postdominators
from ..analysis.loops import LoopInfo
from ..ir.function import Function
from ..ir.module import Module
from .fingerprint import module_fingerprint


class AnalysisManager:
    """Per-module, fingerprint-invalidated cache of function analyses."""

    #: kind name -> constructor(function) -> analysis object
    ANALYSES = {
        "control_dependence": ControlDependence,
        "loop_info": LoopInfo,
        "dominators": compute_dominators,
        "postdominators": compute_postdominators,
        "predecessors": predecessor_map,
        "reverse_postorder": reverse_postorder,
    }

    def __init__(self, module: Module):
        self.module = module
        self._revision = module.revision
        self._fingerprint = module_fingerprint(module)
        #: (kind, function name) -> analysis object
        self._results: dict[tuple[str, str], object] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Current module fingerprint (checks for invalidation first)."""
        self._check()
        return self._fingerprint

    def get(self, kind: str, function: Function):
        """The cached analysis of one kind for one function."""
        try:
            build = self.ANALYSES[kind]
        except KeyError:
            raise KeyError(
                f"unknown analysis {kind!r}; "
                f"available: {tuple(self.ANALYSES)}"
            ) from None
        self._check()
        slot = (kind, function.name)
        cached = self._results.get(slot)
        if cached is None:
            cached = build(function)
            self._results[slot] = cached
            self.misses += 1
        else:
            self.hits += 1
        return cached

    # Named accessors for the common consumers.

    def control_dependence(self, function: Function) -> ControlDependence:
        return self.get("control_dependence", function)

    def loop_info(self, function: Function) -> LoopInfo:
        return self.get("loop_info", function)

    def dominators(self, function: Function) -> dict:
        return self.get("dominators", function)

    def postdominators(self, function: Function) -> dict:
        return self.get("postdominators", function)

    def invalidate(self) -> None:
        """Drop every cached analysis (manual override)."""
        if self._results:
            self.invalidations += 1
        self._results.clear()

    # ------------------------------------------------------------------

    def _check(self) -> None:
        if self.module.revision == self._revision:
            return
        self._revision = self.module.revision
        fingerprint = module_fingerprint(self.module)
        if fingerprint != self._fingerprint:
            self._fingerprint = fingerprint
            self.invalidate()


#: module -> its AnalysisManager (dies with the module).
_MANAGERS: WeakKeyDictionary = WeakKeyDictionary()


def analysis_manager_for(module: Module) -> AnalysisManager:
    """The shared per-module manager (one per live Module object)."""
    manager = _MANAGERS.get(module)
    if manager is None:
        manager = AnalysisManager(module)
        _MANAGERS[module] = manager
    return manager
