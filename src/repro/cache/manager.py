"""In-memory analysis cache shared by every consumer of one module.

Building TRIDENT plus its two ablations (fig5) or the PVF/ePVF
baselines (fig9) over the same module used to recompute control
dependence, loop info and post-dominators once *per model*; the fc and
divergence-weighting sub-models each kept private per-function caches.
:class:`AnalysisManager` hoists those analyses to one per-module cache:
every model built over the module shares them.

Invalidation is two-level and **function-granular**: the cheap check is
the module's finalize ``revision``; only when the revision moved are the
per-function canonical fingerprints recomputed, and only the entries of
functions whose *own* fingerprint changed are discarded (a no-op
re-finalize, or an edit confined to another function, keeps them).
Function fingerprints use function-local value numbering
(:func:`repro.cache.fingerprint.function_fingerprint`), so module-wide
iid renumbering never counts as a change.

Transforms participate through :meth:`note_transform`: by declaring the
functions they touched and the analyses they preserve (a pass that only
rewrites straight-line instructions keeps every CFG-shaped analysis
valid), they let even mutated functions keep entries across the next
re-finalize.  Undeclared changes always invalidate.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from ..analysis.cfg import predecessor_map, reverse_postorder
from ..analysis.controldep import ControlDependence
from ..analysis.dominators import (
    compute_dominators,
    compute_postdominators,
    postdominators,
)
from ..analysis.loops import LoopInfo
from ..ir.function import Function
from ..ir.module import Module
from .fingerprint import function_fingerprints, module_fingerprint

#: Analyses whose results are keyed on block structure only: any
#: transform that inserts/removes straight-line (non-terminator)
#: instructions without changing block shape preserves all of them.
CFG_SHAPE_ANALYSES = (
    "control_dependence", "loop_info", "dominators", "postdominators",
    "ipostdominators", "predecessors", "reverse_postorder",
)

#: Process-wide per-kind counters, aggregated over every manager — the
#: source of the end-of-run "analysis cache" stats line.
_GLOBAL_COUNTS: dict[str, list[int]] = {}


def _bump(kind: str, slot: int, local: dict[str, list[int]]) -> None:
    for counts in (local, _GLOBAL_COUNTS):
        entry = counts.get(kind)
        if entry is None:
            entry = counts[kind] = [0, 0, 0]
        entry[slot] += 1


def reset_analysis_stats() -> None:
    """Zero the process-wide per-kind counters (tests, CLI runs)."""
    _GLOBAL_COUNTS.clear()


def analysis_stats_line() -> str | None:
    """Per-kind ``hits/misses/invalidations`` summary, or None if idle."""
    if not _GLOBAL_COUNTS:
        return None
    parts = [
        f"{kind} {c[0]}h/{c[1]}m/{c[2]}i"
        for kind, c in sorted(_GLOBAL_COUNTS.items())
    ]
    return "analyses: " + ", ".join(parts)


class AnalysisManager:
    """Per-module, function-fingerprint-invalidated analysis cache."""

    #: kind name -> constructor(function) -> analysis object
    ANALYSES = {
        "control_dependence": ControlDependence,
        "loop_info": LoopInfo,
        "dominators": compute_dominators,
        "postdominators": compute_postdominators,
        "ipostdominators": postdominators,
        "predecessors": predecessor_map,
        "reverse_postorder": reverse_postorder,
    }

    def __init__(self, module: Module):
        self.module = module
        self._revision = module.revision
        self._fingerprint = module_fingerprint(module)
        self._function_fps = dict(function_fingerprints(module))
        #: (kind, function name) -> analysis object
        self._results: dict[tuple[str, str], object] = {}
        #: kind -> [hits, misses, invalidations]
        self._counts: dict[str, list[int]] = {}
        #: Declared transforms awaiting the next fingerprint change:
        #: list of (touched function names, preserved analysis kinds).
        self._notes: list[tuple[frozenset[str], frozenset[str]]] = []

    # ------------------------------------------------------------------
    # Aggregate counters (back-compat) and per-kind accessors
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(c[0] for c in self._counts.values())

    @property
    def misses(self) -> int:
        return sum(c[1] for c in self._counts.values())

    @property
    def invalidations(self) -> int:
        return sum(c[2] for c in self._counts.values())

    def counts(self, kind: str) -> tuple[int, int, int]:
        """(hits, misses, invalidations) of one analysis kind."""
        return tuple(self._counts.get(kind, (0, 0, 0)))

    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Current module fingerprint (checks for invalidation first)."""
        self._check()
        return self._fingerprint

    def get(self, kind: str, function: Function):
        """The cached analysis of one kind for one function."""
        try:
            build = self.ANALYSES[kind]
        except KeyError:
            raise KeyError(
                f"unknown analysis {kind!r}; "
                f"available: {tuple(self.ANALYSES)}"
            ) from None
        self._check()
        slot = (kind, function.name)
        cached = self._results.get(slot)
        if cached is None:
            cached = build(function)
            self._results[slot] = cached
            _bump(kind, 1, self._counts)
        else:
            _bump(kind, 0, self._counts)
        return cached

    # Named accessors for the common consumers.

    def control_dependence(self, function: Function) -> ControlDependence:
        return self.get("control_dependence", function)

    def loop_info(self, function: Function) -> LoopInfo:
        return self.get("loop_info", function)

    def dominators(self, function: Function) -> dict:
        return self.get("dominators", function)

    def postdominators(self, function: Function) -> dict:
        return self.get("postdominators", function)

    def ipostdominators(self, function: Function) -> dict:
        return self.get("ipostdominators", function)

    def invalidate(self) -> None:
        """Drop every cached analysis (manual override)."""
        for kind, _name in self._results:
            _bump(kind, 2, self._counts)
        self._results.clear()

    def note_transform(self, touched, preserved=()) -> None:
        """Declare a transform applied (or about to apply) to the module.

        ``touched`` are the functions whose fingerprints may change;
        ``preserved`` are the analysis kinds that stay valid for those
        functions regardless (the preserved-analyses contract).  Notes
        stack: when several transforms touch one function before the
        next re-finalize is observed, an entry survives only if *every*
        one of them preserved its kind.
        """
        self._check()  # consume any earlier pending change first
        self._notes.append((frozenset(touched), frozenset(preserved)))

    # ------------------------------------------------------------------

    def _preserved(self, function_name: str, kind: str) -> bool:
        relevant = [
            preserved for touched, preserved in self._notes
            if function_name in touched
        ]
        if not relevant:
            return False
        return all(kind in preserved for preserved in relevant)

    def _check(self) -> None:
        if self.module.revision == self._revision:
            return
        self._revision = self.module.revision
        fingerprint = module_fingerprint(self.module)
        if fingerprint == self._fingerprint:
            self._notes.clear()
            return  # no-op re-finalize: everything stays
        self._fingerprint = fingerprint
        new_fps = function_fingerprints(self.module)
        for slot in list(self._results):
            kind, name = slot
            new = new_fps.get(name)
            if new is not None and new == self._function_fps.get(name):
                continue  # untouched function: entry survives
            if new is not None and self._preserved(name, kind):
                continue  # declared transform kept this analysis valid
            del self._results[slot]
            _bump(kind, 2, self._counts)
        self._function_fps = dict(new_fps)
        self._notes.clear()


#: module -> its AnalysisManager (dies with the module).
_MANAGERS: WeakKeyDictionary = WeakKeyDictionary()


def analysis_manager_for(module: Module) -> AnalysisManager:
    """The shared per-module manager (one per live Module object)."""
    manager = _MANAGERS.get(module)
    if manager is None:
        manager = AnalysisManager(module)
        _MANAGERS[module] = manager
    return manager


def notify_transform(module: Module, touched, preserved=()) -> None:
    """Forward a transform declaration to the module's manager, if any.

    Transforms call this unconditionally; when no manager exists yet the
    declaration is moot (a fresh manager fingerprints the post-transform
    module), so nothing is recorded.
    """
    manager = _MANAGERS.get(module)
    if manager is not None:
        manager.note_transform(touched, preserved)
