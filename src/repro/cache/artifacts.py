"""Typed artifacts on top of the raw disk cache.

Four artifact kinds, all keyed (directly or indirectly) on the module
fingerprint so a stale entry is unreachable by construction:

* ``profile``  — serialized :class:`ProgramProfile` plus the profiled
  program outputs (extends :mod:`repro.profiling.serialize`); key =
  fingerprint + profiler knobs.
* ``golden``   — the golden-run summary a :class:`FaultInjector` needs
  (outputs, per-instruction counts, dynamic count); key = fingerprint.
  Campaign workers load it instead of re-executing the fault-free run
  after re-materializing a :class:`ModuleSpec`.
* ``model``    — per-instruction SDC/vulnerability results of one model
  (TRIDENT, fs+fc, fs, PVF, ePVF); key = fingerprint + model name +
  config digest + profile digest.
* ``campaign`` — merged FI campaign counts; key = fingerprint + every
  knob that can change the executed run set (runs, seed, stopping
  rule).  Serialization of the result itself lives on
  :class:`repro.fi.campaign.CampaignResult` to keep this package free
  of an fi dependency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..profiling.profile import ProgramProfile
from ..profiling.serialize import profile_from_dict, profile_to_dict
from .disk import ArtifactCache
from .fingerprint import combine_key, config_digest, module_fingerprint

PROFILE_KIND = "profile"
GOLDEN_KIND = "golden"
MODEL_KIND = "model"
MODEL_FN_KIND = "model_fn"
CAMPAIGN_KIND = "campaign"
SHARD_KIND = "shard"


# ---------------------------------------------------------------------------
# Profiles


def profile_key(fingerprint: str, sample_cap: int = 32,
                seed: int = 2018) -> str:
    return combine_key("profile", fingerprint, sample_cap, seed)


def load_cached_profile(cache: ArtifactCache,
                        key: str) -> ProgramProfile | None:
    payload = cache.load(PROFILE_KIND, key)
    if payload is None:
        return None
    try:
        return profile_from_dict(payload["profile"])
    except (KeyError, TypeError, ValueError):
        return None


def store_cached_profile(cache: ArtifactCache, key: str,
                         profile: ProgramProfile,
                         outputs: list[str] | None = None) -> bool:
    payload = {"profile": profile_to_dict(profile)}
    if outputs is not None:
        payload["outputs"] = list(outputs)
    return cache.store(PROFILE_KIND, key, payload)


def profile_digest(profile: ProgramProfile) -> str:
    """Content digest of a profile (memoized on the object).

    Model results depend on the profile as much as on the module, and a
    profile may arrive from anywhere (a fresh run, the disk cache, a
    file a user edited); hashing its canonical serialization keys model
    artifacts on what the model actually consumed.  ProgramProfile is a
    mutable (unhashable) dataclass, so the memo rides on the instance
    itself rather than in a WeakKeyDictionary.
    """
    digest = getattr(profile, "_cache_digest", None)
    if digest is None:
        canonical = json.dumps(profile_to_dict(profile), sort_keys=True)
        digest = hashlib.sha256(canonical.encode()).hexdigest()
        try:
            profile._cache_digest = digest
        except AttributeError:
            pass  # slotted/frozen profile: just recompute next time
    return digest


# ---------------------------------------------------------------------------
# Golden-run summaries


@dataclass
class GoldenSummary:
    """What a FaultInjector needs from the fault-free reference run.

    Duck-types the :class:`repro.interp.result.RunResult` surface the
    injector and its callers use (``outputs``, ``dynamic_count``,
    ``instruction_counts()``), so a cached summary substitutes for a
    real golden run.
    """

    outputs: list[str]
    counts: dict[int, int]
    dynamic_count: int
    footprint_bytes: int = 0

    def instruction_counts(self) -> dict[int, int]:
        return dict(self.counts)

    @classmethod
    def from_run(cls, result) -> "GoldenSummary":
        return cls(
            outputs=list(result.outputs),
            counts=result.instruction_counts(),
            dynamic_count=result.dynamic_count,
            footprint_bytes=result.footprint_bytes,
        )

    def to_dict(self) -> dict:
        return {
            "outputs": list(self.outputs),
            "counts": {str(k): v for k, v in self.counts.items()},
            "dynamic_count": self.dynamic_count,
            "footprint_bytes": self.footprint_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GoldenSummary":
        return cls(
            outputs=list(data["outputs"]),
            counts={int(k): v for k, v in data["counts"].items()},
            dynamic_count=data["dynamic_count"],
            footprint_bytes=data.get("footprint_bytes", 0),
        )


def golden_key(fingerprint: str) -> str:
    return combine_key("golden", fingerprint)


def load_golden_summary(cache: ArtifactCache,
                        key: str) -> GoldenSummary | None:
    payload = cache.load(GOLDEN_KIND, key)
    if payload is None:
        return None
    try:
        return GoldenSummary.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None


def store_golden_summary(cache: ArtifactCache, key: str,
                         summary: GoldenSummary) -> bool:
    return cache.store(GOLDEN_KIND, key, summary.to_dict())


# ---------------------------------------------------------------------------
# Per-instruction model results


def model_key(fingerprint: str, model_name: str, config_digest: str,
              profile_dig: str) -> str:
    return combine_key("model", fingerprint, model_name, config_digest,
                       profile_dig)


def load_model_results(cache: ArtifactCache,
                       key: str) -> dict[int, float] | None:
    payload = cache.load(MODEL_KIND, key)
    if payload is None:
        return None
    try:
        return {int(k): float(v) for k, v in payload["results"].items()}
    except (KeyError, TypeError, ValueError):
        return None


def store_model_results(cache: ArtifactCache, key: str,
                        results: dict[int, float]) -> bool:
    payload = {"results": {str(k): v for k, v in results.items()}}
    return cache.store(MODEL_KIND, key, payload)


def model_results_key(module, profile: ProgramProfile, model_name: str,
                      config, extra=None) -> str:
    """Key for one model's per-instruction results over one profile.

    ``extra`` carries model inputs living outside the config dataclass
    (e.g. ePVF's FI-measured crash probability).
    """
    return model_key(
        module_fingerprint(module), model_name,
        config_digest(config),
        combine_key(profile_digest(profile), extra),
    )


def bind_model_results(cache: ArtifactCache, model, model_name: str,
                       extra=None) -> int:
    """Warm a model from the cache and arrange write-back.

    Works for any model exposing ``module``/``profile``/``config``,
    ``warm_cache`` and a ``result_sink`` attribute (Trident and the
    PVF/ePVF baselines).  Returns how many per-instruction results were
    restored; newly computed results are persisted whenever the model
    finishes a bulk prediction.
    """
    key = model_results_key(model.module, model.profile, model_name,
                            model.config, extra)
    cached = load_model_results(cache, key)
    if cached:
        model.warm_cache(cached)
    model.result_sink = lambda results: store_model_results(
        cache, key, results
    )
    return len(cached or {})


# ---------------------------------------------------------------------------
# Per-function model-result envelopes (the query pipeline's disk layer)


def function_results_key(query: str, input_key: str,
                         config_projection: str, salt=None,
                         scope: str = "") -> str:
    """Key of one query's per-function result store.

    ``input_key`` is the function's combined (canonical-fingerprint,
    profile-slice-digest) content address, so warm CI runs reuse the
    *unchanged functions* of an edited module across commits — the
    whole-module ``model`` kind only ever matches identical modules.

    ``scope`` is the function *name* for interprocedural queries: two
    content-identical functions compute identical intra-function
    results, but their interprocedural walks route through different
    call sites, so those stores must not be shared between them.
    """
    return combine_key("model_fn", query, scope, input_key,
                       config_projection, salt)


def load_function_results(
    cache: ArtifactCache, key: str,
) -> dict[int, tuple[float, dict | None]] | None:
    """{local index -> (value, dependency key map or None)} or None.

    The dependency map names the *other* functions (and pseudo-inputs
    like the callgraph) an entry's value was derived from; the query
    engine revalidates it entry-by-entry, so one envelope can serve a
    module in which only some of those dependencies still hold.
    """
    payload = cache.load(MODEL_FN_KIND, key)
    if payload is None:
        return None
    try:
        out: dict[int, tuple[float, dict | None]] = {}
        for local, (value, deps) in payload["entries"].items():
            if deps is not None and not isinstance(deps, dict):
                raise TypeError("malformed dependency map")
            out[int(local)] = (float(value), deps)
        return out
    except (KeyError, TypeError, ValueError):
        return None


def store_function_results(
    cache: ArtifactCache, key: str,
    entries: dict[int, tuple[float, dict | None]],
) -> bool:
    payload = {
        "entries": {
            str(local): [value, deps] for local, (value, deps)
            in entries.items()
        }
    }
    return cache.store(MODEL_FN_KIND, key, payload)


# ---------------------------------------------------------------------------
# Campaign keys (result (de)serialization lives on CampaignResult)


def campaign_key(fingerprint: str, runs: int, seed: int, *,
                 ci_halfwidth: float | None = None,
                 ci_outcome: str = "sdc",
                 min_runs: int = 100,
                 round_size: int = 0) -> str:
    """Key over everything that can change the executed run set.

    Without a stopping rule the executed set is exactly [0, runs) for
    any worker count or chunking (the PR 1 seed protocol), so none of
    the parallelism knobs participate.  With early stopping the stop
    check happens on round boundaries, so the effective round size
    (which the driver derives from the worker count) must be part of
    the key — two configurations that could stop at different prefixes
    never share an entry.
    """
    if ci_halfwidth is None:
        return combine_key("campaign", fingerprint, runs, seed)
    return combine_key(
        "campaign", fingerprint, runs, seed,
        ci_halfwidth, ci_outcome, min_runs, round_size,
    )


def shard_key(campaign: str, start: int, count: int) -> str:
    """Key of one completed shard's partial-campaign checkpoint.

    Scoped under the campaign key (which already covers the module
    fingerprint, seed, run budget and stopping rule) plus the shard's
    exact run range: a re-run that plans the same range — any process,
    any machine — replays the stored counts instead of re-injecting,
    so a killed worker's completed shards are never lost.  Payload
    (de)serialization lives on :class:`repro.sched.spec.ShardResult`.
    """
    return combine_key("shard", campaign, start, count)
