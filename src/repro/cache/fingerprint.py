"""Stable content fingerprints for modules, configs and profiles.

Every artifact the cache stores (profile, golden run, model results,
campaign counts) is a deterministic function of a finalized module plus
a handful of scalar knobs.  The module's canonical textual IR
(:func:`repro.ir.printer.print_module`) already round-trips through the
parser, so its SHA-256 is a faithful content address: two modules with
the same fingerprint execute identically, and any semantic change —
different benchmark scale, an optimization pass, a protection transform
— changes the printed form and therefore the key.

Fingerprints are memoized per ``(module, revision)``: re-finalizing a
module bumps its revision, so a mutated-and-finalized module never
reuses a stale hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from weakref import WeakKeyDictionary

from ..ir.module import Module
from ..ir.printer import canonical_function_text, print_module

#: module -> (revision, fingerprint)
_FINGERPRINTS: WeakKeyDictionary = WeakKeyDictionary()

#: module -> (revision, {function name -> fingerprint})
_FUNCTION_FINGERPRINTS: WeakKeyDictionary = WeakKeyDictionary()


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def module_fingerprint(module: Module) -> str:
    """SHA-256 of the module's canonical printed IR (requires finalize)."""
    revision = getattr(module, "revision", 0)
    cached = _FINGERPRINTS.get(module)
    if cached is not None and cached[0] == revision:
        return cached[1]
    fingerprint = _sha256(print_module(module))
    _FINGERPRINTS[module] = (revision, fingerprint)
    return fingerprint


def function_fingerprint(function) -> str:
    """SHA-256 of one function's *renumbering-stable* canonical text.

    Uses function-local value numbering (see
    :func:`repro.ir.printer.canonical_function_text`), so editing one
    function never changes the fingerprint of any other — the property
    function-granular invalidation rests on.
    """
    return _sha256(canonical_function_text(function))


def function_fingerprints(module: Module) -> dict[str, str]:
    """Per-function fingerprints, memoized per ``(module, revision)``."""
    revision = getattr(module, "revision", 0)
    cached = _FUNCTION_FINGERPRINTS.get(module)
    if cached is not None and cached[0] == revision:
        return cached[1]
    fingerprints = {
        name: function_fingerprint(function)
        for name, function in module.functions.items()
    }
    _FUNCTION_FINGERPRINTS[module] = (revision, fingerprints)
    return fingerprints


def config_digest(config) -> str:
    """Digest of a (frozen dataclass) configuration object."""
    if is_dataclass(config):
        payload = asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        raise TypeError(f"cannot digest configuration {config!r}")
    return _sha256(json.dumps(payload, sort_keys=True, default=repr))


def combine_key(*parts) -> str:
    """One content key from heterogeneous parts (order-sensitive).

    ``None`` is kept distinct from ``0``/``""`` so optional knobs
    (e.g. an unset CI half-width) never collide with explicit values.
    """
    return _sha256(json.dumps([repr(p) for p in parts]))
