"""Content-addressed artifact cache (in-memory analyses + disk layer).

The cache never recomputes an artifact whose inputs haven't changed:
everything is keyed on the SHA-256 of the module's canonical printed IR
plus the scalar knobs that influenced the artifact, so "same key" means
"bit-identical result" and a warm run is provably equivalent to a cold
one (locked by the differential tests in ``tests/cache/``).
"""

from .artifacts import (
    GoldenSummary,
    bind_model_results,
    campaign_key,
    golden_key,
    load_cached_profile,
    load_golden_summary,
    load_model_results,
    model_key,
    model_results_key,
    profile_digest,
    profile_key,
    store_cached_profile,
    store_golden_summary,
    store_model_results,
)
from .disk import (
    CACHE_DIR_ENV,
    ArtifactCache,
    CacheStats,
    DEFAULT_CACHE_DIR,
    configure_cache,
    get_cache,
    resolve_cache_dir,
)
from .fingerprint import combine_key, config_digest, module_fingerprint
from .manager import AnalysisManager, analysis_manager_for

__all__ = [
    "AnalysisManager", "ArtifactCache", "CACHE_DIR_ENV", "CacheStats",
    "DEFAULT_CACHE_DIR", "GoldenSummary", "analysis_manager_for",
    "bind_model_results", "campaign_key", "combine_key", "config_digest",
    "configure_cache", "get_cache", "golden_key", "load_cached_profile",
    "load_golden_summary", "load_model_results", "model_key",
    "model_results_key", "module_fingerprint", "profile_digest",
    "profile_key", "resolve_cache_dir", "store_cached_profile",
    "store_golden_summary", "store_model_results",
]
