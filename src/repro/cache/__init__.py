"""Content-addressed artifact cache (in-memory analyses + disk layer).

The cache never recomputes an artifact whose inputs haven't changed:
everything is keyed on the SHA-256 of the module's canonical printed IR
plus the scalar knobs that influenced the artifact, so "same key" means
"bit-identical result" and a warm run is provably equivalent to a cold
one (locked by the differential tests in ``tests/cache/``).
"""

from .artifacts import (
    GoldenSummary,
    bind_model_results,
    campaign_key,
    function_results_key,
    golden_key,
    load_cached_profile,
    load_function_results,
    load_golden_summary,
    load_model_results,
    model_key,
    model_results_key,
    profile_digest,
    profile_key,
    shard_key,
    store_cached_profile,
    store_function_results,
    store_golden_summary,
    store_model_results,
)
from .disk import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    STORE_COUNTERS,
    ArtifactCache,
    CacheStats,
    FileLock,
    configure_cache,
    get_cache,
    resolve_cache_dir,
)
from .fingerprint import (
    combine_key,
    config_digest,
    function_fingerprint,
    function_fingerprints,
    module_fingerprint,
)
from .manager import (
    CFG_SHAPE_ANALYSES,
    AnalysisManager,
    analysis_manager_for,
    analysis_stats_line,
    notify_transform,
    reset_analysis_stats,
)

__all__ = [
    "AnalysisManager", "ArtifactCache", "CACHE_DIR_ENV", "CFG_SHAPE_ANALYSES",
    "CacheStats", "DEFAULT_CACHE_DIR", "FileLock", "GoldenSummary",
    "STORE_COUNTERS", "analysis_manager_for", "analysis_stats_line",
    "bind_model_results", "campaign_key", "combine_key", "config_digest",
    "configure_cache", "function_fingerprint", "function_fingerprints",
    "function_results_key", "get_cache", "golden_key", "load_cached_profile",
    "load_function_results", "load_golden_summary", "load_model_results",
    "model_key", "model_results_key", "module_fingerprint",
    "notify_transform", "profile_digest", "profile_key",
    "reset_analysis_stats", "resolve_cache_dir", "shard_key",
    "store_cached_profile", "store_function_results", "store_golden_summary",
    "store_model_results",
]
