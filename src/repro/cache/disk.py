"""Disk layer of the artifact cache.

Artifacts live under one root directory (resolution order: explicit
``--cache-dir`` > ``REPRO_CACHE_DIR`` > ``.repro-cache/`` in the
current directory), sharded by content key::

    <root>/<kind>/<key[:2]>/<key>.json

Every file is a JSON envelope carrying a schema version, the kind and
the full key; a mismatch on any of them — or a file that fails to parse
at all (truncated write, disk corruption, a future format) — is treated
as a plain miss and the entry is dropped, so a poisoned cache can never
poison a result: the caller recomputes and overwrites.  Writes go
through a temporary file in the same directory followed by an atomic
:func:`os.replace`, so readers never observe a half-written artifact
even with concurrent campaign workers.

The module keeps one process-wide default cache (:func:`get_cache`,
reconfigured by the CLI via :func:`configure_cache`); hit/miss/byte
counters accumulate on each instance for run summaries.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Bump when the envelope or any artifact payload changes shape *or
#: meaning* (v2: per-site profiler sampling substreams changed profile
#: reservoir contents without changing the profile key).
SCHEMA_VERSION = 2

#: Environment variable naming the cache root (CI, benchmarks, CLI).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def resolve_cache_dir(explicit: str | os.PathLike | None = None) -> Path:
    """Cache root: explicit argument > $REPRO_CACHE_DIR > .repro-cache."""
    if explicit:
        return Path(explicit)
    # Imported lazily: repro.core.__init__ pulls in modules that import
    # this package, so a top-level import would be circular.
    from ..core.env import env_str
    env = env_str(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIR)


#: Persistent store-level counters (``<root>/counters.json``): service
#: and campaign drivers bump these across *processes*, so `repro cache
#: stats` and the nightly BENCH_*.json can track lock contention and
#: partial-shard checkpoint traffic no matter which process did the work.
COUNTERS_FILE = "counters.json"

STORE_COUNTERS = (
    "lock_acquires",
    "lock_contention",
    "lock_breaks",
    "partial_shards_written",
    "partial_shards_resumed",
    "coalesced_requests",
    "requests_rejected",
)


class FileLock:
    """Advisory cross-process lock via an ``O_EXCL`` lock file.

    Used for multi-writer read-modify-write cycles (the persistent
    counters file); plain artifact writes stay lock-free behind atomic
    renames.  Waiting is bounded: after ``timeout`` seconds the lock is
    considered abandoned if older than ``stale_after`` (the holder died
    mid-critical-section) and is broken, otherwise acquisition fails —
    callers must treat the protected update as best-effort.
    """

    def __init__(self, path: Path, *, timeout: float = 5.0,
                 poll: float = 0.005, stale_after: float = 30.0):
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self.acquired = False
        #: True when at least one acquisition attempt found the lock held.
        self.contended = False
        #: True when a stale lock file had to be broken.
        self.broke_stale = False

    def acquire(self) -> bool:
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self.contended = True
                if time.monotonic() >= deadline:
                    if self._break_stale():
                        continue
                    return False
                time.sleep(self.poll)
                continue
            except OSError:
                return False  # read-only filesystem: degrade gracefully
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self.acquired = True
            return True

    def _break_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return True  # holder released between checks: retry
        if age < self.stale_after:
            return False
        try:
            self.path.unlink()
        except OSError:
            return False
        self.broke_stale = True
        return True

    def release(self) -> None:
        if self.acquired:
            try:
                self.path.unlink()
            except OSError:
                pass
            self.acquired = False

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


@dataclass
class CacheStats:
    """Counters one cache instance accumulates across a run."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Corrupted/mismatched files dropped (each also counts as a miss).
    evictions: int = 0
    #: Per-kind hit/miss breakdown, e.g. {"profile": [3, 1]}.
    by_kind: dict[str, list[int]] = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        entry = self.by_kind.setdefault(kind, [0, 0])
        if hit:
            self.hits += 1
            entry[0] += 1
        else:
            self.misses += 1
            entry[1] += 1

    def summary(self) -> str:
        """One line for run summaries: hits, misses, traffic."""
        return (
            f"artifact cache: {self.hits} hit{'s' if self.hits != 1 else ''}, "
            f"{self.misses} miss{'es' if self.misses != 1 else ''}, "
            f"{_human_bytes(self.bytes_read)} read, "
            f"{_human_bytes(self.bytes_written)} written"
        )


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - unreachable


class ArtifactCache:
    """Content-addressed JSON artifact store with corruption fallback."""

    def __init__(self, root: str | os.PathLike | None = None, *,
                 enabled: bool = True):
        self.root = resolve_cache_dir(root)
        self.enabled = enabled
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.json"

    def load(self, kind: str, key: str):
        """The stored payload, or None on any miss (absent, corrupt,
        wrong schema/kind/key)."""
        if not self.enabled:
            return None
        path = self.path_for(kind, key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.record(kind, hit=False)
            return None
        try:
            envelope = json.loads(raw)
            if (not isinstance(envelope, dict)
                    or envelope.get("schema") != SCHEMA_VERSION
                    or envelope.get("kind") != kind
                    or envelope.get("key") != key):
                raise ValueError("envelope mismatch")
            payload = envelope["payload"]
        except (ValueError, KeyError, TypeError):
            self._drop(path)
            self.stats.evictions += 1
            self.stats.record(kind, hit=False)
            return None
        self.stats.record(kind, hit=True)
        self.stats.bytes_read += len(raw)
        return payload

    def store(self, kind: str, key: str, payload) -> bool:
        """Atomically persist a JSON-safe payload; False when disabled
        or the filesystem refuses (a read-only cache is not an error)."""
        if not self.enabled:
            return False
        path = self.path_for(kind, key)
        envelope = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        data = json.dumps(envelope, separators=(",", ":")).encode()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_name, path)
            except BaseException:
                self._drop(Path(tmp_name))
                raise
        except OSError:
            return False
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        return True

    def remove(self, kind: str, key: str) -> bool:
        """Drop one entry (e.g. a partial-shard checkpoint made obsolete
        by the merged campaign result).  Missing entries are not errors."""
        if not self.enabled:
            return False
        path = self.path_for(kind, key)
        existed = path.exists()
        self._drop(path)
        return existed

    @staticmethod
    def _drop(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Persistent store-level counters (lock contention, partial shards)
    # ------------------------------------------------------------------

    def _counters_path(self) -> Path:
        return self.root / COUNTERS_FILE

    def _lock_for(self, name: str) -> FileLock:
        return FileLock(self.root / ".locks" / f"{name}.lock")

    def bump_counters(self, **deltas: int) -> dict[str, int]:
        """Add ``deltas`` to the persistent counters file, under a lock.

        Contention observed while taking the lock is folded into the
        same write (``lock_contention``), so the counter is exact even
        though the observation races the update it records.  A cache
        that is disabled — or a lock that cannot be acquired — makes
        this a no-op: counters are diagnostics, never correctness.
        """
        if not self.enabled:
            return {}
        lock = self._lock_for("counters")
        if not lock.acquire():
            return {}
        try:
            counters = self._read_counters_unlocked()
            counters["lock_acquires"] = counters.get("lock_acquires", 0) + 1
            if lock.contended:
                counters["lock_contention"] = (
                    counters.get("lock_contention", 0) + 1
                )
            if lock.broke_stale:
                counters["lock_breaks"] = counters.get("lock_breaks", 0) + 1
            for name, delta in deltas.items():
                counters[name] = counters.get(name, 0) + int(delta)
            path = self._counters_path()
            data = json.dumps(counters, sort_keys=True).encode()
            try:
                fd, tmp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=".counters-", suffix=".tmp"
                )
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_name, path)
            except OSError:
                return counters
            return counters
        finally:
            lock.release()

    def _read_counters_unlocked(self) -> dict[str, int]:
        try:
            raw = json.loads(self._counters_path().read_bytes())
            return {str(k): int(v) for k, v in raw.items()}
        except (OSError, ValueError, TypeError):
            return {}

    def read_counters(self) -> dict[str, int]:
        """The persistent counters, with every known name present."""
        counters = {name: 0 for name in STORE_COUNTERS}
        counters.update(self._read_counters_unlocked())
        return counters

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` subcommand)
    # ------------------------------------------------------------------

    def _entries(self) -> list[tuple[str, Path, int, float]]:
        """(kind, path, size, mtime) of every stored artifact."""
        entries = []
        if not self.root.is_dir():
            return entries
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append(
                    (kind_dir.name, path, stat.st_size, stat.st_mtime)
                )
        return entries

    def disk_usage(self) -> dict[str, tuple[int, int]]:
        """Per-kind (entry count, total bytes) of the on-disk store."""
        usage: dict[str, tuple[int, int]] = {}
        for kind, _path, size, _mtime in self._entries():
            count, total = usage.get(kind, (0, 0))
            usage[kind] = (count + 1, total + size)
        return usage

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict least-recently-written entries down to ``max_bytes``.

        Content-addressed entries are always safe to drop (the next run
        recomputes and rewrites).  Returns (entries removed, bytes
        freed).
        """
        entries = self._entries()
        total = sum(size for _k, _p, size, _m in entries)
        removed = freed = 0
        for _kind, path, size, _mtime in sorted(entries, key=lambda e: e[3]):
            if total - freed <= max_bytes:
                break
            self._drop(path)
            removed += 1
            freed += size
        return removed, freed

    def clear(self) -> int:
        """Remove every stored artifact; returns how many were removed."""
        removed = 0
        for _kind, path, _size, _mtime in self._entries():
            self._drop(path)
            removed += 1
        return removed


class _NullCache(ArtifactCache):
    """Disabled cache that never touches the filesystem."""

    def __init__(self):
        super().__init__(DEFAULT_CACHE_DIR, enabled=False)


# ---------------------------------------------------------------------------
# Process-wide default instance.

_DEFAULT: ArtifactCache | None = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (created lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ArtifactCache()
    return _DEFAULT


def configure_cache(root: str | os.PathLike | None = None, *,
                    enabled: bool = True) -> ArtifactCache:
    """Replace the process-wide cache (CLI flags, test fixtures)."""
    global _DEFAULT
    _DEFAULT = ArtifactCache(root, enabled=enabled) if enabled else _NullCache()
    return _DEFAULT
