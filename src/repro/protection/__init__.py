"""Selective instruction duplication guided by the models (Sec. VI)."""

from .duplication import (
    DUPLICABLE,
    DuplicationReport,
    clone_module,
    duplicable_iids,
    duplicate_instructions,
    is_duplicable,
)
from .evaluate import (
    ProtectionOutcome,
    duplication_cost,
    evaluate_protection,
    full_duplication_cost,
    select_instructions,
)
from .knapsack import KnapsackItem, greedy_select, knapsack_select

__all__ = [
    "DUPLICABLE", "DuplicationReport", "KnapsackItem", "ProtectionOutcome",
    "clone_module", "duplicable_iids", "duplicate_instructions",
    "duplication_cost", "evaluate_protection", "full_duplication_cost",
    "greedy_select", "is_duplicable", "knapsack_select",
    "select_instructions",
]
