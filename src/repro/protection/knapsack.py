"""0-1 knapsack selection of instructions to protect (Sec. VI).

Objects are instructions; profits are their expected SDC contribution
(predicted SDC probability × dynamic execution count), costs are the
extra dynamic instructions duplication adds.  Solved with the classic
dynamic program, with cost scaling so the table stays small for large
dynamic counts — the same formulation as the paper (and Lu et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Capacity buckets for the DP table; costs are scaled down to this
#: resolution when the raw capacity is larger.
_MAX_BUCKETS = 4096


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate instruction."""

    key: int      # instruction id
    cost: int     # extra dynamic instructions if protected
    profit: float  # expected SDC contribution removed by protecting it


def knapsack_select(items: list[KnapsackItem], capacity: int) -> set[int]:
    """Choose the subset maximizing profit within the cost capacity."""
    if capacity <= 0 or not items:
        return set()

    # Zero-cost items (never-executed instructions) are free wins.
    chosen = {item.key for item in items if item.cost == 0}
    paying = [item for item in items if item.cost > 0]
    if not paying:
        return chosen

    scale = max(1, capacity // _MAX_BUCKETS)
    buckets = capacity // scale
    if buckets == 0:
        return chosen

    # Scaled cost must round *up* so the capacity bound stays honest.
    costs = [-(-item.cost // scale) for item in paying]
    profits = [item.profit for item in paying]

    n = len(paying)
    value = [0.0] * (buckets + 1)
    keep = [[False] * (buckets + 1) for _ in range(n)]
    for i in range(n):
        cost = costs[i]
        profit = profits[i]
        if cost > buckets:
            continue
        keep_row = keep[i]
        # Iterate capacity downward: classic in-place 0-1 DP.
        for cap in range(buckets, cost - 1, -1):
            candidate = value[cap - cost] + profit
            if candidate > value[cap]:
                value[cap] = candidate
                keep_row[cap] = True

    # Reconstruct the chosen set.
    cap = buckets
    for i in range(n - 1, -1, -1):
        if keep[i][cap]:
            chosen.add(paying[i].key)
            cap -= costs[i]
    return chosen


def greedy_select(items: list[KnapsackItem], capacity: int) -> set[int]:
    """Profit-density greedy, used as a sanity baseline in tests."""
    chosen: set[int] = set()
    remaining = capacity
    ranked = sorted(
        items, key=lambda item: item.profit / max(1, item.cost), reverse=True
    )
    for item in ranked:
        if item.cost <= remaining:
            chosen.add(item.key)
            remaining -= item.cost
    return chosen
