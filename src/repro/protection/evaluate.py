"""End-to-end selective protection pipeline (Sec. VI / Fig. 8).

Given a program and a model name, predict per-instruction SDC
probabilities, choose instructions with the knapsack under an overhead
bound (a fraction of the full-duplication overhead), apply the
duplication pass, and measure the protected program's SDC probability
with fault injection (FI is used only for evaluation, as in the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.simple_models import create_model
from ..fi.campaign import CampaignResult, FaultInjector
from ..interp.engine import ExecutionEngine
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from ..profiling.profiler import ProfilingInterpreter
from .duplication import (
    DuplicationReport,
    duplicable_iids,
    duplicate_instructions,
)
from .knapsack import KnapsackItem, knapsack_select


@dataclass
class ProtectionOutcome:
    """Result of protecting one program at one overhead level."""

    model_name: str
    overhead_bound: float            # requested, as fraction of full dup
    selected_iids: set[int] = field(default_factory=set)
    measured_overhead: float = 0.0   # dynamic-instruction overhead
    baseline: CampaignResult | None = None
    protected: CampaignResult | None = None
    report: DuplicationReport | None = None
    #: Model-predicted SDC probability of the *protected* program, from
    #: the incremental re-model step (no FI involved).
    predicted_protected_sdc: float = 0.0
    #: Wall-clock seconds of that re-model; with warm shared query
    #: stores only the touched functions' queries recompute.
    remodel_seconds: float = 0.0

    @property
    def baseline_sdc(self) -> float:
        return self.baseline.sdc_probability if self.baseline else 0.0

    @property
    def protected_sdc(self) -> float:
        return self.protected.sdc_probability if self.protected else 0.0

    @property
    def sdc_reduction(self) -> float:
        """Fractional SDC probability reduction achieved (Fig. 8)."""
        if self.baseline_sdc == 0.0:
            return 0.0
        return 1.0 - self.protected_sdc / self.baseline_sdc


def duplication_cost(profile: ProgramProfile, iid: int) -> int:
    """Extra dynamic instructions for protecting one instruction.

    One clone per execution, plus (pessimistically) one check — chains
    share checks, so this slightly over-estimates, which only makes the
    knapsack conservative.
    """
    return 2 * profile.count(iid)


def full_duplication_cost(module: Module, profile: ProgramProfile) -> int:
    """Dynamic cost of duplicating every duplicable instruction."""
    return sum(duplication_cost(profile, iid) for iid in duplicable_iids(module))


def select_instructions(module: Module, profile: ProgramProfile,
                        model_name: str,
                        overhead_fraction: float) -> set[int]:
    """Knapsack-choose the iids to protect under the overhead bound."""
    model = create_model(model_name, module, profile)
    candidates = [
        iid for iid in duplicable_iids(module) if profile.count(iid) > 0
    ]
    items = [
        KnapsackItem(
            key=iid,
            cost=duplication_cost(profile, iid),
            profit=model.instruction_sdc(iid) * profile.count(iid),
        )
        for iid in candidates
    ]
    capacity = int(full_duplication_cost(module, profile) * overhead_fraction)
    return knapsack_select(items, capacity)


def evaluate_protection(module: Module, profile: ProgramProfile,
                        model_name: str, overhead_fraction: float,
                        fi_samples: int = 1000,
                        seed: int = 0) -> ProtectionOutcome:
    """Protect with one model at one overhead level; measure with FI."""
    outcome = ProtectionOutcome(model_name, overhead_fraction)
    outcome.selected_iids = select_instructions(
        module, profile, model_name, overhead_fraction
    )
    protected_module, outcome.report = duplicate_instructions(
        module, outcome.selected_iids
    )

    # Incremental re-model (the paper's protect-then-re-predict loop):
    # the selection model above warmed the shared per-function query
    # stores, so re-modeling the protected clone recomputes only the
    # functions the pass touched — everything else is served from cache.
    protected_profile, _outputs = ProfilingInterpreter(protected_module).run()
    started = time.perf_counter()
    remodel = create_model(model_name, protected_module, protected_profile)
    outcome.predicted_protected_sdc = remodel.overall_sdc(
        samples=fi_samples, seed=seed
    )
    outcome.remodel_seconds = time.perf_counter() - started

    baseline_engine = ExecutionEngine(module)
    protected_engine = ExecutionEngine(protected_module)
    baseline_dynamic = baseline_engine.golden().dynamic_count
    protected_dynamic = protected_engine.golden().dynamic_count
    outcome.measured_overhead = protected_dynamic / baseline_dynamic - 1.0

    baseline_fi = FaultInjector(module, baseline_engine)
    protected_fi = FaultInjector(protected_module, protected_engine)
    outcome.baseline = baseline_fi.campaign(fi_samples, seed=seed)
    outcome.protected = protected_fi.campaign(fi_samples, seed=seed + 1)
    return outcome
