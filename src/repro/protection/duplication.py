"""Selective instruction duplication pass (Sec. VI).

For each protected instruction the pass inserts a clone computing the
same operation from the same (or cloned) operands, and a ``detect``
check comparing original and clone — the cmp + branch-to-handler pair
of the paper's LLVM pass.  When protected instructions form a
data-dependent chain, clones feed clones and one check suffices at the
chain's end ("we only place one comparison instruction at the latter
protected instruction"), reducing overhead exactly as the paper does.

The pass works on a *clone* of the input module (via the textual
round-trip), so the original stays untouched for baseline comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.manager import CFG_SHAPE_ANALYSES, notify_transform
from ..ir.instructions import (
    BinOp,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Select,
)
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.values import Value

#: Instruction classes the pass can duplicate.  Calls and allocas have
#: side effects / identity; stores and terminators have no result.
DUPLICABLE = (BinOp, Cast, ICmp, FCmp, GetElementPtr, Select, Load)


def is_duplicable(inst: Instruction) -> bool:
    return isinstance(inst, DUPLICABLE)


def clone_module(module: Module) -> Module:
    """Deep-copy a module through its textual form (iids preserved)."""
    return parse_module(print_module(module))


@dataclass
class DuplicationReport:
    """What the pass did."""

    protected_iids: set[int]
    duplicated: int
    checks_inserted: int
    checks_merged: int
    #: Functions that received clones/checks; all other functions keep
    #: their fingerprints, so their model queries survive the pass.
    touched_functions: set[str] = field(default_factory=set)
    #: Clones and checks are straight-line insertions — block shape is
    #: untouched, so every CFG-shape analysis stays valid.
    preserved_analyses: tuple[str, ...] = CFG_SHAPE_ANALYSES


def duplicate_instructions(module: Module,
                           protected_iids) -> tuple[Module, DuplicationReport]:
    """Return a protected clone of ``module`` plus a transformation report.

    ``protected_iids`` refers to static ids of the *input* module; ids
    of the returned module differ (it is re-finalized after insertion).
    """
    protected_iids = set(protected_iids)
    protected_module = clone_module(module)

    # Collect target instructions in definition order so operand clones
    # exist before their users' clones.
    targets: list[Instruction] = []
    for inst in protected_module.instructions():
        if inst.iid in protected_iids:
            if not is_duplicable(inst):
                raise ValueError(
                    f"instruction #{inst.iid} ({inst.opcode}) cannot be "
                    "duplicated"
                )
            targets.append(inst)

    clone_of: dict[int, Instruction] = {}  # id(original) -> clone
    protected_set = {id(inst) for inst in targets}
    duplicated = checks = merged = 0

    for inst in targets:
        clone = _clone_instruction(inst, clone_of)
        inst.parent.insert_after(inst, clone)
        clone_of[id(inst)] = clone
        duplicated += 1

        # Chain optimization: if some protected instruction consumes this
        # result, its own clone re-checks downstream — skip the check here.
        if any(id(user) in protected_set for user in inst.users
               if isinstance(user, Instruction)):
            merged += 1
            continue
        check = Detect(inst, clone)
        inst.parent.insert_after(clone, check)
        checks += 1

    touched = {inst.parent.parent.name for inst in targets}
    if touched:
        notify_transform(protected_module, touched, CFG_SHAPE_ANALYSES)
    protected_module.finalize()
    report = DuplicationReport(
        protected_iids=protected_iids,
        duplicated=duplicated,
        checks_inserted=checks,
        checks_merged=merged,
        touched_functions=touched,
    )
    return protected_module, report


def _clone_instruction(inst: Instruction,
                       clone_of: dict[int, Instruction]) -> Instruction:
    def operand(value: Value) -> Value:
        replacement = clone_of.get(id(value))
        return replacement if replacement is not None else value

    if isinstance(inst, BinOp):
        return BinOp(inst.op, operand(inst.lhs), operand(inst.rhs))
    if isinstance(inst, ICmp):
        return ICmp(inst.predicate, operand(inst.lhs), operand(inst.rhs))
    if isinstance(inst, FCmp):
        return FCmp(inst.predicate, operand(inst.lhs), operand(inst.rhs))
    if isinstance(inst, Cast):
        return Cast(inst.op, operand(inst.value), inst.type)
    if isinstance(inst, GetElementPtr):
        return GetElementPtr(operand(inst.base), operand(inst.index))
    if isinstance(inst, Select):
        return Select(operand(inst.cond), operand(inst.true_value),
                      operand(inst.false_value))
    if isinstance(inst, Load):
        return Load(operand(inst.pointer))
    raise ValueError(f"cannot clone {inst.opcode}")


def duplicable_iids(module: Module) -> list[int]:
    """Static ids of every instruction the pass could protect."""
    return [
        inst.iid for inst in module.instructions() if is_duplicable(inst)
    ]
