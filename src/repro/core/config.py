"""Configuration of the TRIDENT model and its ablations."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TridentConfig:
    """Knobs for the three-level model.

    The default configuration is the full TRIDENT of the paper.  The two
    simpler comparison models of Sec. V-B are obtained with
    :func:`fs_fc_config` (fc on, fm off) and :func:`fs_only_config`
    (both off).  The two ``model_*`` flags enable extensions the paper
    lists as its own sources of inaccuracy (Sec. VII-A) — off by default
    to reproduce the paper's behaviour, available for ablation studies.
    """

    #: Enable the control-flow sub-model (fc).
    enable_control_flow: bool = True
    #: Enable the memory sub-model (fm).
    enable_memory: bool = True
    #: Max def-use paths enumerated per faulty instruction.
    max_paths: int = 128
    #: Max def-use path depth.
    max_depth: int = 64
    #: Operand samples per instruction used to derive empirical tuples.
    tuple_samples: int = 8
    #: Recursion depth over the memory dependency graph.
    fm_max_hops: int = 24
    #: Minimum probability worth tracking (smaller contributions dropped).
    epsilon: float = 1e-9
    #: Evaluate min/max cmp+select clusters jointly (DESIGN.md §5).
    #: Ablation: off composes cmp and select tuples independently.
    model_minmax_joint: bool = True
    #: Discount fc store-corruption by the measured silent-store
    #: fraction (lucky stores, Sec. VII-A).  Ablation flag.
    fc_silent_store_discount: bool = True
    #: Extension: model fdiv averaging-out of mantissa corruption.
    model_fdiv_masking: bool = False
    #: Extension: treat surviving store-address corruption as SDC.
    model_store_address_sdc: bool = False

    @property
    def name(self) -> str:
        if self.enable_control_flow and self.enable_memory:
            return "trident"
        if self.enable_control_flow:
            return "fs+fc"
        return "fs"


def trident_config(**overrides) -> TridentConfig:
    """The full three-level model (fs + fc + fm)."""
    return replace(TridentConfig(), **overrides)


def fs_fc_config(**overrides) -> TridentConfig:
    """Simpler model #1: control-flow but no memory tracking (Sec. V-B)."""
    return replace(TridentConfig(enable_memory=False), **overrides)


def fs_only_config(**overrides) -> TridentConfig:
    """Simpler model #2: static data dependencies only (Sec. V-B)."""
    return replace(
        TridentConfig(enable_control_flow=False, enable_memory=False),
        **overrides,
    )
