"""The TRIDENT model: fs, fc, fm, and the Algorithm-1 orchestrator."""

from .config import (
    TridentConfig,
    fs_fc_config,
    fs_only_config,
    trident_config,
)
from .fc import ControlFlowSubModel
from .fm import MemorySubModel
from .fs import SequenceResult, StaticSubModel
from .masking import output_masking_factor
from .simple_models import (
    ALL_MODEL_NAMES,
    MODEL_NAMES,
    build_all_models,
    build_model,
    create_model,
)
from .trident import Trident
from .tuples import IDENTITY, PropTuple, TupleDeriver

__all__ = [
    "ALL_MODEL_NAMES", "ControlFlowSubModel", "IDENTITY", "MODEL_NAMES",
    "MemorySubModel", "PropTuple", "SequenceResult", "StaticSubModel",
    "Trident", "TridentConfig", "TupleDeriver", "build_all_models",
    "build_model", "create_model", "fs_fc_config", "fs_only_config",
    "output_masking_factor", "trident_config",
]
