"""Per-instruction propagation tuples (Sec. IV-C).

Each instruction gets a (propagation, masking, crash) tuple: the
probabilities that an error sitting in one of its operands propagates to
its result, is masked, or crashes the program, with the three summing
to 1.  The paper derives these from "the mechanism of the instruction
and/or the profiled values of the instruction's operands"; we do the
same, but where the paper hand-derives per-opcode rules we can afford to
*measure* the tuple, because our IR semantics are executable: for each
profiled operand sample we flip every operand bit, re-evaluate the
instruction, and count propagated / masked / trapped results.  This
covers the paper's cmp, logic and cast masking rules exactly (e.g. the
``cmp sgt $1, 0`` example of Fig. 2b yields 1/32) and also the divisor-
becomes-zero crash case.

Instructions without profiled samples — and opcode families the paper
treats as transparent — default to (1, 0, 0), the paper's heuristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..interp.errors import ArithmeticTrap
from ..interp.ops import (
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
)
from ..ir.bitutils import flip_bit_typed
from ..ir.instructions import (
    BinOp,
    Branch,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from .config import TridentConfig


@dataclass(frozen=True)
class PropTuple:
    """(propagation, masking, crash) — sums to 1."""

    propagation: float
    masking: float
    crash: float

    def __post_init__(self):
        total = self.propagation + self.masking + self.crash
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ValueError(f"tuple must sum to 1, got {total}")


IDENTITY = PropTuple(1.0, 0.0, 0.0)


def _same_operand(a, b) -> bool:
    """Operand identity modulo constant interning.

    The builder reuses one :class:`Constant` object across a min/max
    cluster while the parser mints a fresh one per occurrence; matching
    equal constants keeps cluster detection — and therefore the model's
    numbers — invariant under a textual round trip.
    """
    from ..ir.values import Constant

    return a is b or (isinstance(a, Constant) and a == b)


def minmax_cmp_of_select(select: Select):
    """The comparison of a min/max-shaped select, or None.

    Matches ``select(cmp(a, b), a, b)`` (arms identical to the compared
    values, in either order) — the lowering of min/max/clamp idioms.
    """
    cond = select.cond
    if not isinstance(cond, (ICmp, FCmp)):
        return None
    true_arm, false_arm = select.true_value, select.false_value
    straight = (_same_operand(cond.lhs, true_arm)
                and _same_operand(cond.rhs, false_arm))
    swapped = (_same_operand(cond.lhs, false_arm)
               and _same_operand(cond.rhs, true_arm))
    if not (straight or swapped):
        return None
    return cond


def cmp_feeds_only_minmax_selects(cmp, value) -> bool:
    """Is every use of this comparison a min/max select over ``value``?

    When true, the corruption of ``value`` is fully accounted for by the
    joint select-arm tuples, and the value→cmp edge must be suppressed
    in the propagation DAG to avoid double counting the same event.
    """
    if not cmp.users:
        return False
    for user in cmp.users:
        if not isinstance(user, Select):
            return False
        if minmax_cmp_of_select(user) is not cmp:
            return False
        if value not in (user.true_value, user.false_value):
            return False
    return True


def _values_equal(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if a != a and b != b:  # both NaN: no observable difference
            return True
        return a == b
    return a == b


def _evaluate(inst: Instruction, operands: list):
    """Re-evaluate a pure instruction on concrete operand values."""
    if isinstance(inst, BinOp):
        if inst.type.is_float:
            return eval_float_binop(inst.op, operands[0], operands[1],
                                    inst.type.bits)
        return eval_int_binop(inst.op, operands[0], operands[1],
                              inst.type.bits)
    if isinstance(inst, ICmp):
        return eval_icmp(inst.predicate, operands[0], operands[1],
                         inst.lhs.type.bits)
    if isinstance(inst, FCmp):
        return eval_fcmp(inst.predicate, operands[0], operands[1])
    if isinstance(inst, Cast):
        return eval_cast(inst.op, operands[0], inst.value.type, inst.type)
    raise TypeError(f"cannot re-evaluate {inst.opcode}")


class TupleDeriver:
    """Derives and caches propagation tuples for one profiled program.

    With a :class:`~repro.query.QueryEngine` attached, derived tuples
    additionally live in the shared ``model.tuples`` query store keyed
    on (local index, operand index) per function content — so a rebuilt
    or transformed module re-derives tuples only for functions whose
    code or profile slice actually changed.
    """

    QUERY = "model.tuples"

    def __init__(self, profile, config: TridentConfig, engine=None):
        self.profile = profile
        self.config = config
        self.engine = engine
        self._cache: dict[tuple[int, int], PropTuple] = {}

    def tuple_for(self, inst: Instruction, operand_index: int) -> PropTuple:
        """Tuple for an error entering ``inst`` via operand ``operand_index``."""
        key = (inst.iid, operand_index)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._query(inst, operand_index)
            self._cache[key] = cached
        return cached

    def _query(self, inst: Instruction, operand_index: int) -> PropTuple:
        engine = self.engine
        if engine is None:
            return self._derive(inst, operand_index)
        from ..query.engine import MISS
        home, local = engine.index.local(inst.iid)
        view = engine.view(self.QUERY, home)
        stored = view.get((local, operand_index))
        if stored is not MISS:
            return stored
        return view.put((local, operand_index),
                        self._derive(inst, operand_index))

    # ------------------------------------------------------------------

    def _derive(self, inst: Instruction, operand_index: int) -> PropTuple:
        if isinstance(inst, (BinOp, ICmp, FCmp, Cast)):
            return self._empirical(inst, operand_index)
        if isinstance(inst, Select):
            return self._select_tuple(inst, operand_index)
        if isinstance(inst, Phi):
            return self._phi_tuple(inst, operand_index)
        if isinstance(inst, Load) and operand_index == 0:
            # Corrupted load address: crash with the footprint-derived
            # probability; a surviving flip reads wrong data (propagates).
            crash = self.profile.crash_probability(inst.iid)
            return PropTuple(1.0 - crash, 0.0, crash)
        if isinstance(inst, Store) and operand_index == 1:
            crash = self.profile.crash_probability(inst.iid)
            return PropTuple(1.0 - crash, 0.0, crash)
        # gep, call, output, branch, store-value, ret, detect, alloca:
        # transparent (the paper's default heuristic).
        return IDENTITY

    def _empirical(self, inst: Instruction, operand_index: int) -> PropTuple:
        samples = self.profile.samples(inst.iid)
        if not samples:
            return self._fallback(inst, operand_index)
        samples = samples[: self.config.tuple_samples]
        operand_type = inst.operands[operand_index].type
        bits = operand_type.bits
        propagated = masked = crashed = trials = 0
        for sample in samples:
            operands = list(sample)
            if len(operands) <= operand_index:
                continue
            try:
                original = _evaluate(inst, operands)
            except ArithmeticTrap:
                continue  # fault-free run cannot have trapped here
            faulty = list(operands)
            for bit in range(bits):
                faulty[operand_index] = flip_bit_typed(
                    operands[operand_index], bit, operand_type
                )
                trials += 1
                try:
                    result = _evaluate(inst, faulty)
                except ArithmeticTrap:
                    crashed += 1
                    continue
                if _values_equal(result, original):
                    masked += 1
                else:
                    propagated += 1
        if trials == 0:
            return self._fallback(inst, operand_index)
        extra_mask = self._fdiv_masking(inst, operand_index)
        p = (propagated / trials) * (1.0 - extra_mask)
        c = crashed / trials
        return PropTuple(p, max(0.0, 1.0 - p - c), c)

    def _fdiv_masking(self, inst: Instruction, operand_index: int) -> float:
        """Optional extension: fdiv averages out mantissa corruption."""
        if not self.config.model_fdiv_masking:
            return 0.0
        if not (isinstance(inst, BinOp) and inst.op == "fdiv"
                and operand_index == 0):
            return 0.0
        mantissa = inst.type.mantissa_bits
        return 0.25 * mantissa / inst.type.bits

    def _fallback(self, inst: Instruction, operand_index: int) -> PropTuple:
        """Analytic tuples when no runtime samples exist."""
        if isinstance(inst, (ICmp, FCmp)):
            # Only flips near the comparison boundary matter; without
            # value knowledge assume ~2 decisive bits (sign + LSB).
            bits = inst.operands[operand_index].type.bits
            p = min(1.0, 2.0 / bits)
            return PropTuple(p, 1.0 - p, 0.0)
        if isinstance(inst, Cast) and inst.op in ("trunc", "fptrunc"):
            p = min(1.0, inst.type.bits / inst.value.type.bits)
            return PropTuple(p, 1.0 - p, 0.0)
        if isinstance(inst, BinOp) and inst.is_logic:
            if inst.op == "xor":
                return IDENTITY
            return PropTuple(0.5, 0.5, 0.0)  # unknown mask word
        return IDENTITY

    def _select_tuple(self, inst: Select, operand_index: int) -> PropTuple:
        true_prob = self.profile.select_true_probability(inst.iid)
        if operand_index == 0:
            # A flipped condition matters only when the arms differ.
            samples = self.profile.samples(inst.iid)
            if samples:
                differing = sum(
                    1 for s in samples
                    if len(s) == 3 and not _values_equal(s[1], s[2])
                )
                p = differing / len(samples)
            else:
                p = 1.0
            return PropTuple(p, 1.0 - p, 0.0)
        if self.config.model_minmax_joint:
            joint = self._minmax_joint_tuple(inst, operand_index)
            if joint is not None:
                return joint
        if operand_index == 1:
            return PropTuple(true_prob, 1.0 - true_prob, 0.0)
        return PropTuple(1.0 - true_prob, true_prob, 0.0)

    def _phi_tuple(self, inst: Phi, operand_index: int) -> PropTuple:
        """A phi propagates an operand iff control arrived over its edge;
        the propagation probability is the profiled edge frequency."""
        phi_count = self.profile.count(inst.iid)
        if phi_count == 0:
            return IDENTITY
        pred = inst.incoming_blocks[operand_index]
        terminator = pred.terminator
        if isinstance(terminator, Branch) and terminator.is_conditional:
            counts = self.profile.branch_counts.get(terminator.iid, [0, 0])
            edge = 0
            if terminator.true_block is inst.parent:
                edge += counts[1]
            if terminator.false_block is inst.parent:
                edge += counts[0]
        else:
            edge = self.profile.count(terminator.iid)
        p = min(1.0, edge / phi_count)
        return PropTuple(p, 1.0 - p, 0.0)

    # -- min/max select clusters ------------------------------------------

    def _minmax_joint_tuple(self, inst: Select,
                            operand_index: int) -> PropTuple | None:
        """Joint tuple for min/max-shaped selects (cmp + select cluster).

        When the select's condition compares the very arms it selects
        between (``select(a < b, a, b)``), the cmp result and the arm
        value are driven by the same corrupted operand; composing their
        tuples independently misses the correlation (a corrupted loser
        that stays the loser is fully masked).  We therefore evaluate
        the *pair* empirically on the cmp's profiled operand values.
        """
        cmp = minmax_cmp_of_select(inst)
        if cmp is None:
            return None
        samples = self.profile.samples(cmp.iid)
        if not samples:
            return None
        samples = samples[: self.config.tuple_samples]
        true_is_lhs = _same_operand(inst.true_value, cmp.lhs)
        corrupted_arm = inst.operands[operand_index]
        position = 0 if _same_operand(corrupted_arm, cmp.lhs) else 1
        operand_type = corrupted_arm.type
        bits = operand_type.bits
        is_float = isinstance(cmp, FCmp)

        def evaluate(a, b):
            if is_float:
                chosen = eval_fcmp(cmp.predicate, a, b)
            else:
                chosen = eval_icmp(cmp.predicate, a, b,
                                   cmp.lhs.type.bits)
            true_value = a if true_is_lhs else b
            false_value = b if true_is_lhs else a
            return true_value if chosen else false_value

        propagated = trials = 0
        for sample in samples:
            if len(sample) < 2:
                continue
            a, b = sample[0], sample[1]
            original = evaluate(a, b)
            for bit in range(bits):
                flipped = flip_bit_typed(
                    (a, b)[position], bit, operand_type
                )
                faulty = (flipped, b) if position == 0 else (a, flipped)
                trials += 1
                if not _values_equal(evaluate(*faulty), original):
                    propagated += 1
        if trials == 0:
            return None
        p = propagated / trials
        return PropTuple(p, 1.0 - p, 0.0)
