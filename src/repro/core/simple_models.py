"""The two simpler comparison models of Sec. V-B.

Both reuse the TRIDENT machinery with sub-models disabled:

* ``fs+fc`` — control-flow divergence is modeled but an error that
  reaches any store is assumed to be an SDC (no memory tracking).  The
  paper shows this always over-predicts.
* ``fs`` — only static data dependencies; propagation stops at
  control-flow divergence, and a store hit is an SDC.  Over- or
  under-predicts depending on the program.
"""

from __future__ import annotations

from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .config import fs_fc_config, fs_only_config, trident_config
from .trident import Trident

MODEL_NAMES = ("trident", "fs+fc", "fs")

#: Everything create_model accepts (the three TRIDENT variants plus the
#: PVF/ePVF baselines of Fig. 9).
ALL_MODEL_NAMES = MODEL_NAMES + ("pvf", "epvf")


def build_model(name: str, module: Module,
                profile: ProgramProfile) -> Trident:
    """Build one of the three models by name ("trident", "fs+fc", "fs")."""
    if name == "trident":
        return Trident(module, profile, trident_config())
    if name in ("fs+fc", "fs_fc"):
        return Trident(module, profile, fs_fc_config())
    if name in ("fs", "fs_only"):
        return Trident(module, profile, fs_only_config())
    raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")


def create_model(name: str, module: Module, profile: ProgramProfile, *,
                 config=None, warm: bool = True, extra=None,
                 measured_crash_probability: float | None = None,
                 shared: bool | None = None):
    """The one factory every harness and report builds models through.

    * ``config`` overrides the name-derived config (ablation studies).
    * ``warm=True`` binds the model to the artifact cache
      (:func:`repro.cache.bind_model_results`) so whole-module results
      persist and reload across runs.
    * ``shared`` controls query-store sharing; it defaults to ``warm``
      so that cold-timing measurements (``warm=False``) also get an
      isolated query engine and honestly recompute everything.
    * ``measured_crash_probability`` is forwarded to ePVF (and folded
      into its store salt / cache key).
    """
    from ..cache import bind_model_results, get_cache

    if shared is None:
        shared = warm
    lowered = name.lower()
    if lowered == "trident":
        model = Trident(module, profile, config or trident_config(),
                        shared_queries=shared)
    elif lowered in ("fs+fc", "fs_fc"):
        model = Trident(module, profile, config or fs_fc_config(),
                        shared_queries=shared)
    elif lowered in ("fs", "fs_only"):
        model = Trident(module, profile, config or fs_only_config(),
                        shared_queries=shared)
    elif lowered == "pvf":
        from ..baselines.pvf import PvfModel

        model = PvfModel(module, profile, config, shared_queries=shared)
    elif lowered == "epvf":
        from ..baselines.epvf import EpvfModel

        model = EpvfModel(
            module, profile, config,
            measured_crash_probability=measured_crash_probability,
            shared_queries=shared,
        )
    else:
        raise ValueError(
            f"unknown model {name!r}; expected one of {ALL_MODEL_NAMES}"
        )
    if warm:
        if lowered == "epvf" and extra is None:
            extra = measured_crash_probability
        bind_model_results(get_cache(), model, lowered, extra)
    return model


def build_all_models(module: Module,
                     profile: ProgramProfile) -> dict[str, Trident]:
    """All three models sharing one profile (as in the evaluation)."""
    return {name: build_model(name, module, profile) for name in MODEL_NAMES}
