"""The two simpler comparison models of Sec. V-B.

Both reuse the TRIDENT machinery with sub-models disabled:

* ``fs+fc`` — control-flow divergence is modeled but an error that
  reaches any store is assumed to be an SDC (no memory tracking).  The
  paper shows this always over-predicts.
* ``fs`` — only static data dependencies; propagation stops at
  control-flow divergence, and a store hit is an SDC.  Over- or
  under-predicts depending on the program.
"""

from __future__ import annotations

from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .config import fs_fc_config, fs_only_config, trident_config
from .trident import Trident

MODEL_NAMES = ("trident", "fs+fc", "fs")


def build_model(name: str, module: Module,
                profile: ProgramProfile) -> Trident:
    """Build one of the three models by name ("trident", "fs+fc", "fs")."""
    if name == "trident":
        return Trident(module, profile, trident_config())
    if name in ("fs+fc", "fs_fc"):
        return Trident(module, profile, fs_fc_config())
    if name in ("fs", "fs_only"):
        return Trident(module, profile, fs_only_config())
    raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")


def build_all_models(module: Module,
                     profile: ProgramProfile) -> dict[str, Trident]:
    """All three models sharing one profile (as in the evaluation)."""
    return {name: build_model(name, module, profile) for name in MODEL_NAMES}
