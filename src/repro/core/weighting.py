"""Divergence weighting: P(terminal executes | origin executed).

The Fig. 4 weighting scales a propagation contribution by how likely the
terminal instruction is to execute at all (a print reached on 60% of
paths contributes 0.6).  The naive estimate count(T)/count(O) conflates
two different situations:

* the terminal is *conditionally guarded* (Fig. 4's if-print): the count
  ratio is the right execution probability;
* the origin sits in a *loop* and the terminal runs after it (a register
  accumulator flowing into one final output): the terminal executes with
  certainty even though it runs once per N origin executions.

The discriminator is control structure: if the terminal's block
post-dominates the origin's block (same function), every execution of
the origin eventually reaches the terminal — the weight is 1.  Otherwise
the profiled count ratio applies.
"""

from __future__ import annotations

from ..cache.manager import analysis_manager_for
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..profiling.profile import ProgramProfile


class ExecutionWeigher:
    """Divergence weighting over the module's shared post-dominator sets.

    With a query engine, weights live in the per-function
    ``model.weighting`` store keyed on (origin local, symbolized
    terminal); a cross-function pair records the terminal's home as an
    entry dependency (the weight reads its execution counts).
    """

    QUERY = "model.weighting"

    def __init__(self, module: Module, profile: ProgramProfile, engine=None):
        self.module = module
        self.profile = profile
        self.engine = engine
        self._analyses = analysis_manager_for(module)

    def weight(self, origin: Instruction, terminal: Instruction) -> float:
        """P(terminal executes | origin executed), in [0, 1]."""
        engine = self.engine
        if engine is None:
            return self._weight(origin, terminal)
        from ..query.engine import MISS

        home, origin_local = engine.index.local(origin.iid)
        terminal_ref = engine.index.symbolize(terminal.iid, home)
        view = engine.view(self.QUERY, home)
        key = (origin_local, terminal_ref)
        stored = view.get(key)
        if stored is not MISS:
            return stored
        deps = None
        if not isinstance(terminal_ref, int):
            deps = engine.deps_for((terminal_ref[0],), exclude=home)
        return view.put(key, self._weight(origin, terminal), deps)

    def _weight(self, origin: Instruction, terminal: Instruction) -> float:
        origin_function = origin.parent.parent
        terminal_function = terminal.parent.parent
        if origin_function is terminal_function:
            postdoms = self._postdoms_of(origin_function)
            if terminal.parent in postdoms.get(origin.parent, ()):
                return 1.0
        return self.profile.execution_probability(terminal.iid, origin.iid)

    def _postdoms_of(self, function) -> dict:
        if self.engine is not None:
            return self.engine.cfg("postdominators", function)
        return self._analyses.postdominators(function)
