"""TRIDENT: the three-level error propagation model (Sec. IV).

This is the paper's Algorithm 1, generalized from a single sequence to
the full fan-out of def-use paths (contributions are summed and capped
at 1, per the algorithm's "maximum propagation prob. is 1"):

1. fs traces the fault along each static data-dependent instruction
   sequence to its terminal;
2. if the terminal is a branch, fc yields the stores it corrupts and at
   what probabilities;
3. fm carries corrupted stores through memory to the program output.

The model predicts the SDC probability of each individual instruction
and of the whole program, without any fault injection.  Disabling fm
(or fc and fm) yields the two simpler comparison models of Sec. V-B.
"""

from __future__ import annotations

import random
import time

from ..ir.instructions import Branch, Output, Store
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from ..profiling.profiler import ProfilingInterpreter
from .config import TridentConfig, trident_config
from .fc import ControlFlowSubModel
from .fm import MemorySubModel
from .fs import StaticSubModel
from .masking import output_masking_factor
from .propagation import (
    EV_BRANCH,
    EV_OUTPUT,
    EV_STORE,
    EV_STORE_ADDR,
    ForwardPropagator,
)
from .tuples import TupleDeriver
from .weighting import ExecutionWeigher


class Trident:
    """The model: built from a module and one profiled execution.

    All analyses run through a :class:`~repro.query.QueryEngine`.  With
    ``shared_queries=True`` (default) the engine memoizes per-function
    results in process-wide content-addressed stores — a model over a
    transformed module recomputes only the mutated functions' queries.
    ``shared_queries=False`` isolates the engine (honest cold-build
    timings, e.g. the fig6 inference-cost measurements).
    """

    def __init__(self, module: Module, profile: ProgramProfile,
                 config: TridentConfig | None = None, *,
                 shared_queries: bool = True):
        from ..query.engine import QueryEngine

        if not module.is_finalized:
            raise ValueError("finalize the module before modeling")
        self.module = module
        self.profile = profile
        self.config = config or trident_config()
        self.queries = QueryEngine(module, profile, self.config,
                                   shared=shared_queries)
        self.tuples = TupleDeriver(profile, self.config, self.queries)
        self.propagator = ForwardPropagator(module, self.tuples, self.config,
                                            self.queries)
        self.fs = StaticSubModel(self.tuples)
        self.fc = ControlFlowSubModel(module, profile, self.config,
                                      self.queries)
        self.weigher = ExecutionWeigher(module, profile, self.queries)
        self.fm = MemorySubModel(
            module, profile, self.config, self.fc, self.propagator,
            self.weigher, engine=self.queries,
        )
        self._sdc_cache: dict[int, float] = {}
        #: Optional persistence hook (see repro.cache.bind_model_results):
        #: called with the full per-instruction result map when a bulk
        #: prediction finishes and new results were computed.
        self.result_sink = None
        self._flushed_results = 0
        #: Cumulative wall-clock seconds spent in inference.
        self.inference_seconds = 0.0
        # Injection-eligible instructions (same definition as the fault
        # injector: executed, produces a result, result is used).
        self.eligible: list[int] = []
        self._weights: list[int] = []
        for inst in module.instructions():
            if not inst.has_result or not inst.users:
                continue
            count = profile.count(inst.iid)
            if count == 0:
                continue
            self.eligible.append(inst.iid)
            self._weights.append(count)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, module: Module, config: TridentConfig | None = None,
              sample_cap: int = 32, seed: int = 2018) -> "Trident":
        """Profile the program once and build the model on top."""
        profile, _outputs = ProfilingInterpreter(
            module, sample_cap=sample_cap, seed=seed
        ).run()
        return cls(module, profile, config)

    # ------------------------------------------------------------------
    # Result-cache plumbing (content-addressed warm starts)
    # ------------------------------------------------------------------

    def warm_cache(self, results: dict[int, float]) -> int:
        """Adopt previously computed per-instruction SDC results.

        Only callers that key the mapping on the module fingerprint,
        the model config and the profile digest (repro.cache) may warm
        a model — under those keys the cached values are bit-identical
        to what :meth:`instruction_sdc` would compute.
        """
        self._sdc_cache.update(results)
        self._flushed_results = len(self._sdc_cache)
        return len(results)

    def cached_results(self) -> dict[int, float]:
        """Snapshot of every per-instruction result computed so far."""
        return dict(self._sdc_cache)

    def _flush_results(self) -> None:
        if (self.result_sink is not None
                and len(self._sdc_cache) > self._flushed_results):
            self.result_sink(dict(self._sdc_cache))
            self._flushed_results = len(self._sdc_cache)
        self.queries.flush()

    # ------------------------------------------------------------------
    # Per-instruction prediction
    # ------------------------------------------------------------------

    def instruction_sdc(self, iid: int) -> float:
        """P(SDC | fault activated in instruction ``iid``'s result)."""
        cached = self._sdc_cache.get(iid)
        if cached is not None:
            return cached
        started = time.perf_counter()
        probability = self._query_sdc(iid)
        self.inference_seconds += time.perf_counter() - started
        self._sdc_cache[iid] = probability
        return probability

    def _query_sdc(self, iid: int) -> float:
        """instruction_sdc via the persisted ``model.sdc`` query store."""
        from ..query.engine import MISS

        engine = self.queries
        site = engine.index.to_local.get(iid)
        if site is None:
            return self._compute_sdc(iid)
        home, local = site
        view = engine.view("model.sdc", home)
        stored = view.get(local)
        if stored is not MISS:
            return stored
        probability = self._compute_sdc(iid)
        return view.put(
            local, probability,
            engine.deps_for(self._scratch_deps, exclude=home),
        )

    def _compute_sdc(self, iid: int) -> float:
        from ..query.engine import CALLGRAPH_DEP

        inst = self.module.instruction(iid)
        self._scratch_deps: set = set()
        if not inst.has_result:
            return 0.0
        result = self.propagator.propagate(inst)
        self._scratch_deps |= result.functions
        if result.callgraph:
            self._scratch_deps.add(CALLGRAPH_DEP)
        survive = 1.0  # union-combine the terminal events
        for event in result.events:
            contribution = self._event_contribution(inst, event)
            survive *= 1.0 - min(1.0, contribution)
        return 1.0 - survive

    def _event_contribution(self, origin, event) -> float:
        terminal = event.instruction
        alive = event.probability
        # Divergence weighting: the terminal may execute less often than
        # the faulty instruction (conditional paths).  Post-dominating
        # terminals are always reached (see ExecutionWeigher).
        alive *= self.weigher.weight(origin, terminal)
        if alive <= self.config.epsilon:
            return 0.0

        if event.kind == EV_OUTPUT:
            assert isinstance(terminal, Output)
            return alive * output_masking_factor(terminal)
        if event.kind == EV_STORE:
            assert isinstance(terminal, Store)
            if self.config.enable_memory:
                probability = alive * self.fm.propagate_store(terminal)
                self._scratch_deps |= self.fm.result_deps(terminal.iid)
                return probability
            # Simpler models: an error reaching a store is an SDC.
            return alive
        if event.kind == EV_BRANCH:
            assert isinstance(terminal, Branch)
            if not self.config.enable_control_flow:
                return 0.0  # fs-only: propagation stops at divergence
            contribution = 0.0
            for store, pc in self.fc.corrupted_stores(terminal):
                if self.config.enable_memory:
                    contribution += pc * self.fm.propagate_store(store)
                    self._scratch_deps |= self.fm.result_deps(store.iid)
                else:
                    contribution += pc
            return alive * min(1.0, contribution)
        if event.kind == EV_STORE_ADDR:
            if self.config.model_store_address_sdc:
                crash = self.profile.crash_probability(terminal.iid)
                return alive * (1.0 - crash)
            return 0.0
        # ret / detect
        return 0.0

    # ------------------------------------------------------------------
    # Whole-program prediction
    # ------------------------------------------------------------------

    def overall_sdc(self, samples: int = 3000, seed: int = 0) -> float:
        """Overall SDC probability via sampled dynamic instances.

        Mirrors the paper's methodology: N dynamic instruction instances
        are sampled (weighted by execution count); the per-instruction
        predictions of the sampled static instructions are averaged.
        """
        if not self.eligible:
            return 0.0
        rng = random.Random(seed)
        picks = rng.choices(self.eligible, weights=self._weights, k=samples)
        result = sum(self.instruction_sdc(iid) for iid in picks) / samples
        self._flush_results()
        return result

    def overall_sdc_exact(self) -> float:
        """Exact execution-count-weighted average over all instructions."""
        if not self.eligible:
            return 0.0
        total_weight = sum(self._weights)
        acc = 0.0
        for iid, weight in zip(self.eligible, self._weights):
            acc += weight * self.instruction_sdc(iid)
        self._flush_results()
        return acc / total_weight

    def sdc_map(self, iids=None) -> dict[int, float]:
        """Per-instruction SDC probabilities (default: all eligible)."""
        if iids is None:
            iids = self.eligible
        result = {iid: self.instruction_sdc(iid) for iid in iids}
        self._flush_results()
        return result

    # ------------------------------------------------------------------
    # Crash prediction (extension beyond the paper)
    # ------------------------------------------------------------------

    def instruction_crash(self, iid: int) -> float:
        """P(crash | fault activated in instruction ``iid``'s result).

        An extension the paper leaves implicit: the same propagation
        tuples that discount SDC mass by crashes along the data flow can
        report that crash mass directly (out-of-bounds addresses from
        corrupted pointers/indices, divisors flipped to zero).  It only
        covers crashes on the *register* data flow — crashes of
        memory-carried corruption are not chased through fm — so it is a
        lower bound; FI validation shows it ranks instructions well.
        """
        inst = self.module.instruction(iid)
        if not inst.has_result:
            return 0.0
        return self.propagator.propagate(inst).crash_probability

    def overall_crash(self, samples: int = 3000, seed: int = 0) -> float:
        """Overall crash probability via sampled dynamic instances."""
        if not self.eligible:
            return 0.0
        rng = random.Random(seed)
        picks = rng.choices(self.eligible, weights=self._weights, k=samples)
        return sum(self.instruction_crash(iid) for iid in picks) / samples

    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Profiling (fixed) + inference (incremental) cost, Fig. 6."""
        return self.profile.profiling_seconds + self.inference_seconds
