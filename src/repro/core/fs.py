"""fs — the static-instruction sub-model (Sec. IV-C).

Given a propagation path (a static data-dependent instruction sequence
from :mod:`repro.analysis.ddg`), fs aggregates the per-instruction
propagation tuples along it: the probability the error is still alive at
the sequence terminal, the probability it crashed along the way, and the
probability it was masked.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.ddg import PropagationPath
from .tuples import TupleDeriver


@dataclass(frozen=True)
class SequenceResult:
    """Outcome probabilities of propagation along one sequence."""

    propagation: float  # error alive at the terminal
    masking: float
    crash: float

    def __post_init__(self):
        total = self.propagation + self.masking + self.crash
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"sequence result must sum to 1, got {total}")


class StaticSubModel:
    """Aggregates propagation tuples along static instruction sequences."""

    def __init__(self, tuples: TupleDeriver):
        self.tuples = tuples

    def propagate(self, path: PropagationPath) -> SequenceResult:
        """Probability the error survives to the end of the sequence.

        Mirrors the Fig. 2b aggregation: the tuple of every instruction
        the error flows *into* is multiplied; crash mass accumulates in
        proportion to the probability the error was still alive when it
        reached the crashing instruction.
        """
        alive = 1.0
        crashed = 0.0
        for instruction, operand_index in path.steps:
            prop_tuple = self.tuples.tuple_for(instruction, operand_index)
            crashed += alive * prop_tuple.crash
            alive *= prop_tuple.propagation
            if alive <= 0.0:
                alive = 0.0
                break
        masked = max(0.0, 1.0 - alive - crashed)
        return SequenceResult(alive, masked, crashed)
