"""fc — the control-flow sub-model (Sec. IV-D).

Given a corrupted conditional branch, fc returns the store instructions
whose execution becomes incorrect and the probability of each, using the
paper's two equations:

* Non-Loop-Terminating branch (NLT):  ``Pc = Pe / Pd``  (Eq. 1)
* Loop-Terminating branch (LT):       ``Pc = Pb * Pe``  (Eq. 2)

where ``Pe`` is the store's fault-free execution probability relative to
the branch, ``Pd`` the probability of the branch direction that governs
the store, and ``Pb`` the probability of the loop back-edge direction.
All probabilities come from the branch/instruction profile.
"""

from __future__ import annotations

from ..analysis.controldep import ControlDependence
from ..analysis.loops import LoopInfo
from ..cache.manager import analysis_manager_for
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Store
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .config import TridentConfig


class ControlFlowSubModel:
    """Maps corrupted branches to (store, corruption probability) pairs."""

    QUERY = "model.fc"

    def __init__(self, module: Module, profile: ProgramProfile,
                 config: TridentConfig, engine=None):
        self.module = module
        self.profile = profile
        self.config = config
        self.engine = engine
        # Control dependence and loop info come from the module's shared
        # AnalysisManager, so every model built over this module (the
        # fig5 ablations, the fig9 baselines) reuses one computation.
        self._analyses = analysis_manager_for(module)
        self._cache: dict[int, list[tuple[Store, float]]] = {}

    # ------------------------------------------------------------------

    def corrupted_stores(self, branch: Branch) -> list[tuple[Store, float]]:
        """Stores corrupted by a flipped branch, with probabilities."""
        if not branch.is_conditional:
            return []
        cached = self._cache.get(branch.iid)
        if cached is not None:
            return cached
        result = self._query(branch)
        self._cache[branch.iid] = result
        return result

    def _query(self, branch: Branch) -> list[tuple[Store, float]]:
        """fc via the per-function query store (branch and its governed
        stores are always intra-function, so entries carry no deps)."""
        engine = self.engine
        if engine is None:
            return self._compute(branch)
        from ..query.engine import MISS

        home, local = engine.index.local(branch.iid)
        view = engine.view(self.QUERY, home)
        stored = view.get(local)
        if stored is not MISS:
            return [
                (engine.index.instruction(home, store_local), pc)
                for store_local, pc in stored
            ]
        result = self._compute(branch)
        view.put(local, [
            (engine.index.local(store.iid)[1], pc) for store, pc in result
        ])
        return result

    def classify(self, branch: Branch) -> str:
        """"LT" or "NLT" (Sec. IV-D classification), for reporting."""
        function = branch.parent.parent
        _, loops = self._info(function)
        return "LT" if loops.is_loop_terminating(branch) else "NLT"

    # ------------------------------------------------------------------

    def _info(self, function: Function) -> tuple[ControlDependence, LoopInfo]:
        if self.engine is not None:
            return (
                self.engine.cfg("control_dependence", function),
                self.engine.cfg("loop_info", function),
            )
        return (
            self._analyses.control_dependence(function),
            self._analyses.loop_info(function),
        )

    def _compute(self, branch: Branch) -> list[tuple[Store, float]]:
        branch_count = self.profile.count(branch.iid)
        if branch_count == 0:
            return []
        function = branch.parent.parent
        control_deps, loops = self._info(function)

        governed_true = self._transitive_governed(control_deps, branch, True)
        governed_false = self._transitive_governed(control_deps, branch, False)

        is_lt = loops.is_loop_terminating(branch)
        continue_dir = loops.continue_direction(branch) if is_lt else None

        results: list[tuple[Store, float]] = []
        seen: set[int] = set()
        for direction, governed in ((True, governed_true),
                                    (False, governed_false)):
            # Layout order, not set order: the caller sums our pc values
            # against fm terms, so the result order must be a function
            # of program content alone (bit-reproducible builds).
            for block in (b for b in function.blocks if b in governed):
                for inst in block.instructions:
                    if not isinstance(inst, Store) or inst.iid in seen:
                        continue
                    seen.add(inst.iid)
                    pe = self.profile.execution_probability(
                        inst.iid, branch.iid
                    )
                    if is_lt:
                        pc = self._lt_probability(branch, pe, continue_dir)
                    else:
                        pc = self._nlt_probability(branch, pe, direction)
                    if self.config.fc_silent_store_discount:
                        # Lucky-store discount (Sec. VII-A): a store whose
                        # instances usually rewrite the value already in
                        # the cell is coincidentally correct when its
                        # execution flips, in both the spurious-execution
                        # and the missed-execution case.
                        pc *= (
                            1.0
                            - self.profile.silent_store_fraction(inst.iid)
                        )
                    if pc > self.config.epsilon:
                        results.append((inst, min(1.0, pc)))
        return results

    def _nlt_probability(self, branch: Branch, pe: float,
                         direction: bool) -> float:
        """Eq. 1: Pc = Pe / Pd."""
        pd = self.profile.branch_direction_probability(branch.iid, direction)
        if pd <= self.config.epsilon:
            return 0.0
        return min(1.0, pe / pd)

    def _lt_probability(self, branch: Branch, pe: float,
                        continue_dir: bool | None) -> float:
        """Eq. 2: Pc = Pb * Pe.

        The paper's Pe is the store's per-iteration execution probability
        *given the loop continues*; our count-based ``pe`` is measured
        relative to the branch itself, which already folds in the
        back-edge probability: count(store)/count(branch) = Pb * Pe.
        The Pb factor therefore cancels and Pc equals the count ratio
        (the Fig. 3b example: 0.99 * 0.9 * 0.7 = 0.62).
        """
        return pe

    @staticmethod
    def _transitive_governed(control_deps: ControlDependence, branch: Branch,
                             direction: bool) -> set[BasicBlock]:
        """Blocks reached (possibly via nested branches) under a direction."""
        if branch not in control_deps.governed:
            return set()
        result: set[BasicBlock] = set()
        worklist = list(control_deps.governed[branch][direction])
        while worklist:
            block = worklist.pop()
            if block in result:
                continue
            result.add(block)
            terminator = block.terminator
            if (isinstance(terminator, Branch) and terminator.is_conditional
                    and terminator is not branch
                    and terminator in control_deps.governed):
                worklist.extend(
                    control_deps.governed[terminator][True]
                    | control_deps.governed[terminator][False]
                )
        return result
