"""Forward propagation of corruption probabilities over the def-use DAG.

fs as presented in the paper multiplies tuples along a *sequence*; real
IR fans out (one value feeds a cmp, a select and an arithmetic chain
that all reconverge on the same store).  Enumerating sequences and
summing their contributions double-counts the shared suffixes, so we
evaluate the whole def-use DAG instead:

* ``P(corrupt(v))`` for every value reachable from the fault site, where
  a node with several corrupted operands merges them as a union of
  events: ``P = 1 - prod(1 - P(op) * tuple(op).propagation)``;
* every *terminal* (store value, store address, branch condition,
  program output, return, protection check) is reported once, with the
  probability corruption enters it.

Interprocedural edges (call argument -> callee formal, return ->
call-site result) are part of the same graph; recursion makes it cyclic
in the worst case, so probabilities are solved by monotone fixed-point
iteration (they only grow, bounded by 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import (
    Branch,
    Call,
    Detect,
    Instruction,
    Output,
    Ret,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Value
from .config import TridentConfig
from .tuples import TupleDeriver

#: Terminal event kinds.
EV_STORE = "store"
EV_STORE_ADDR = "store_addr"
EV_BRANCH = "branch"
EV_OUTPUT = "output"
EV_RET = "ret"
EV_DETECT = "detect"

_MAX_FIXPOINT_ITERATIONS = 50


@dataclass(frozen=True)
class TerminalEvent:
    """Corruption arriving at one terminal instruction."""

    kind: str
    instruction: Instruction
    probability: float  # P(corrupted data enters this terminal)


@dataclass
class PropagationResult:
    """All terminal events of one fault site, event-merged."""

    events: list[TerminalEvent]
    #: Probability the fault crashes somewhere along the data flow.
    crash_probability: float
    #: Number of values the corruption could reach (diagnostics).
    reached_values: int


class ForwardPropagator:
    """Computes :class:`PropagationResult` for fault sites in a module."""

    def __init__(self, module: Module, tuples: TupleDeriver,
                 config: TridentConfig):
        self.module = module
        self.tuples = tuples
        self.config = config
        self._call_sites: dict[str, list[Call]] = {}
        for function in module.functions.values():
            for inst in function.instructions():
                if isinstance(inst, Call):
                    self._call_sites.setdefault(inst.callee, []).append(inst)

    # ------------------------------------------------------------------

    def propagate(self, origin: Value) -> PropagationResult:
        """Terminal events for a fault in ``origin``'s value."""
        nodes, edges, terminals = self._reachable_graph(origin)
        prob: dict[int, float] = {id(node): 0.0 for node in nodes}
        prob[id(origin)] = 1.0

        incoming: dict[int, list[tuple[int, float]]] = {}
        for src, dst, p_edge in edges:
            incoming.setdefault(id(dst), []).append((id(src), p_edge))

        # Monotone fixed point (single pass suffices for a DAG when nodes
        # happen to come out in topological order; recursion needs more).
        for _ in range(_MAX_FIXPOINT_ITERATIONS):
            changed = False
            for node in nodes:
                key = id(node)
                if key == id(origin):
                    continue
                survive = 1.0
                for src_key, p_edge in incoming.get(key, ()):  # union merge
                    survive *= 1.0 - prob[src_key] * p_edge
                updated = 1.0 - survive
                if updated > prob[key] + 1e-12:
                    prob[key] = updated
                    changed = True
            if not changed:
                break

        events = []
        for kind, terminal, source, p_edge in terminals:
            probability = prob[id(source)] * p_edge
            if probability > self.config.epsilon:
                events.append(TerminalEvent(kind, terminal, probability))

        crash = self._crash_probability(nodes, prob)
        return PropagationResult(events, crash, len(nodes))

    # ------------------------------------------------------------------

    def _reachable_graph(self, origin: Value):
        """BFS over def-use edges from the origin.

        Returns (nodes in discovery order, edges (src, dst, p), terminal
        records (kind, terminal_inst, source_value, p_edge)).
        """
        nodes: list[Value] = [origin]
        seen: set[int] = {id(origin)}
        edges: list[tuple[Value, Value, float]] = []
        terminals: list[tuple[str, Instruction, Value, float]] = []
        worklist = [origin]

        def reach(value: Value) -> None:
            if id(value) not in seen:
                seen.add(id(value))
                nodes.append(value)
                worklist.append(value)

        while worklist:
            value = worklist.pop()
            for user in list(value.users):
                if not isinstance(user, Instruction):
                    continue
                for operand_index, operand in enumerate(user.operands):
                    if operand is not value:
                        continue
                    self._visit_use(value, user, operand_index, edges,
                                    terminals, reach)
        return nodes, edges, terminals

    def _visit_use(self, value, user, operand_index, edges, terminals,
                   reach) -> None:
        if isinstance(user, Store):
            kind = EV_STORE if operand_index == 0 else EV_STORE_ADDR
            terminals.append((kind, user, value, 1.0))
            return
        if isinstance(user, Branch):
            terminals.append((EV_BRANCH, user, value, 1.0))
            return
        if isinstance(user, Output):
            terminals.append((EV_OUTPUT, user, value, 1.0))
            return
        if isinstance(user, Detect):
            terminals.append((EV_DETECT, user, value, 1.0))
            return
        if isinstance(user, Ret):
            function = user.parent.parent
            sites = self._call_sites.get(function.name, [])
            if function.name == "main" or not sites:
                terminals.append((EV_RET, user, value, 1.0))
                return
            for call in sites:
                reach(call)
                edges.append((value, call, 1.0))
            return
        if isinstance(user, Call):
            if user.callee in self.module.functions:
                callee = self.module.functions[user.callee]
                formal: Argument = callee.args[operand_index]
                reach(formal)
                edges.append((value, formal, 1.0))
                return
            # Intrinsic: corruption flows through to the result.
            reach(user)
            edges.append((value, user, 1.0))
            return
        # min/max cluster: when the comparison exists only to drive
        # selects over this same value, the joint select-arm tuples carry
        # the whole effect — the value→cmp edge would double count it.
        from .tuples import cmp_feeds_only_minmax_selects
        from ..ir.instructions import FCmp, ICmp

        if (self.config.model_minmax_joint
                and isinstance(user, (ICmp, FCmp))
                and cmp_feeds_only_minmax_selects(user, value)):
            return
        # Ordinary computation: the user's result may be corrupted.
        p_edge = self.tuples.tuple_for(user, operand_index).propagation
        if p_edge <= self.config.epsilon:
            return
        reach(user)
        edges.append((value, user, p_edge))

    def _crash_probability(self, nodes, prob) -> float:
        """Union of per-node crash events (diagnostic estimate)."""
        survive = 1.0
        for node in nodes:
            if not isinstance(node, Instruction):
                continue
            for operand_index, operand in enumerate(node.operands):
                if id(operand) in prob:
                    crash = self.tuples.tuple_for(node, operand_index).crash
                    survive *= 1.0 - prob[id(operand)] * crash
        return 1.0 - survive
