"""Forward propagation of corruption probabilities over the def-use DAG.

fs as presented in the paper multiplies tuples along a *sequence*; real
IR fans out (one value feeds a cmp, a select and an arithmetic chain
that all reconverge on the same store).  Enumerating sequences and
summing their contributions double-counts the shared suffixes, so we
evaluate the whole def-use DAG instead:

* ``P(corrupt(v))`` for every value reachable from the fault site, where
  a node with several corrupted operands merges them as a union of
  events: ``P = 1 - prod(1 - P(op) * tuple(op).propagation)``;
* every *terminal* (store value, store address, branch condition,
  program output, return, protection check) is reported once, with the
  probability corruption enters it.

Interprocedural edges (call argument -> callee formal, return ->
call-site result) are part of the same graph; recursion makes it cyclic
in the worst case, so probabilities are solved by monotone fixed-point
iteration (they only grow, bounded by 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import (
    Branch,
    Call,
    Detect,
    Instruction,
    Output,
    Ret,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Value
from .config import TridentConfig
from .tuples import TupleDeriver

#: Terminal event kinds.
EV_STORE = "store"
EV_STORE_ADDR = "store_addr"
EV_BRANCH = "branch"
EV_OUTPUT = "output"
EV_RET = "ret"
EV_DETECT = "detect"

_MAX_FIXPOINT_ITERATIONS = 50


@dataclass(frozen=True)
class TerminalEvent:
    """Corruption arriving at one terminal instruction."""

    kind: str
    instruction: Instruction
    probability: float  # P(corrupted data enters this terminal)


@dataclass
class PropagationResult:
    """All terminal events of one fault site, event-merged."""

    events: list[TerminalEvent]
    #: Probability the fault crashes somewhere along the data flow.
    crash_probability: float
    #: Number of values the corruption could reach (diagnostics).
    reached_values: int
    #: Functions the propagation walked through (dependency tracking).
    functions: frozenset = frozenset()
    #: Did the walk consult the callgraph (Ret/Call handling)?  A new
    #: caller changes Ret routing without changing any walked function.
    callgraph: bool = False


class ForwardPropagator:
    """Computes :class:`PropagationResult` for fault sites in a module.

    With a query engine attached, results live in a per-function query
    store (``model.fs`` by default; the PVF/ePVF baselines use their own
    flavors since their tuples differ).  Stored entries symbolize the
    terminal instructions as function-local coordinates and carry the
    dependency key map of every *other* function the walk crossed, so an
    entry survives exactly as long as every function it was derived from
    is unchanged.
    """

    def __init__(self, module: Module, tuples: TupleDeriver,
                 config: TridentConfig, engine=None,
                 query: str = "model.fs"):
        self.module = module
        self.tuples = tuples
        self.config = config
        self.engine = engine
        self.query = query
        self._call_sites: dict[str, list[Call]] = {}
        for function in module.functions.values():
            for inst in function.instructions():
                if isinstance(inst, Call):
                    self._call_sites.setdefault(inst.callee, []).append(inst)
        self._touched: set[str] = set()
        self._callgraph = False

    # ------------------------------------------------------------------

    def propagate(self, origin: Value) -> PropagationResult:
        """Terminal events for a fault in ``origin``'s value."""
        engine = self.engine
        if engine is None:
            return self._propagate(origin)
        site = engine.index.to_local.get(getattr(origin, "iid", -1))
        if site is None:
            return self._propagate(origin)
        from ..query.engine import CALLGRAPH_DEP, MISS

        home, local = site
        view = engine.view(self.query, home)
        stored = view.get(local)
        if stored is not MISS:
            return self._rehydrate(stored, home)
        result = self._propagate(origin)
        dep_names = set(result.functions)
        if result.callgraph:
            dep_names.add(CALLGRAPH_DEP)
        payload = (
            [(event.kind,
              engine.index.symbolize(event.instruction.iid, home),
              event.probability) for event in result.events],
            result.crash_probability,
            result.reached_values,
            sorted(result.functions),
            result.callgraph,
        )
        view.put(local, payload, engine.deps_for(dep_names, exclude=home))
        return result

    def _rehydrate(self, payload, home: str) -> PropagationResult:
        events_raw, crash, reached, functions, callgraph = payload
        index = self.engine.index
        events = [
            TerminalEvent(kind, index.instruction_of(ref, home), probability)
            for kind, ref, probability in events_raw
        ]
        return PropagationResult(events, crash, reached,
                                 frozenset(functions), callgraph)

    def _propagate(self, origin: Value) -> PropagationResult:
        self._touched = set()
        self._callgraph = False
        parent = getattr(origin, "parent", None)
        if isinstance(origin, Instruction) and parent is not None:
            self._touched.add(parent.parent.name)
        nodes, edges, terminals = self._reachable_graph(origin)
        prob: dict[int, float] = {id(node): 0.0 for node in nodes}
        prob[id(origin)] = 1.0

        incoming: dict[int, list[tuple[int, float]]] = {}
        for src, dst, p_edge in edges:
            incoming.setdefault(id(dst), []).append((id(src), p_edge))

        # Monotone fixed point (single pass suffices for a DAG when nodes
        # happen to come out in topological order; recursion needs more).
        for _ in range(_MAX_FIXPOINT_ITERATIONS):
            changed = False
            for node in nodes:
                key = id(node)
                if key == id(origin):
                    continue
                survive = 1.0
                for src_key, p_edge in incoming.get(key, ()):  # union merge
                    survive *= 1.0 - prob[src_key] * p_edge
                updated = 1.0 - survive
                if updated > prob[key] + 1e-12:
                    prob[key] = updated
                    changed = True
            if not changed:
                break

        events = []
        for kind, terminal, source, p_edge in terminals:
            probability = prob[id(source)] * p_edge
            if probability > self.config.epsilon:
                events.append(TerminalEvent(kind, terminal, probability))

        crash = self._crash_probability(nodes, prob)
        return PropagationResult(events, crash, len(nodes),
                                 frozenset(self._touched), self._callgraph)

    # ------------------------------------------------------------------

    def _reachable_graph(self, origin: Value):
        """BFS over def-use edges from the origin.

        Returns (nodes in discovery order, edges (src, dst, p), terminal
        records (kind, terminal_inst, source_value, p_edge)).
        """
        nodes: list[Value] = [origin]
        seen: set[int] = {id(origin)}
        edges: list[tuple[Value, Value, float]] = []
        terminals: list[tuple[str, Instruction, Value, float]] = []
        worklist = [origin]

        def reach(value: Value) -> None:
            if id(value) not in seen:
                seen.add(id(value))
                nodes.append(value)
                worklist.append(value)

        while worklist:
            value = worklist.pop()
            # Sort users by position: the builder and the parser register
            # uses in different orders, and float accumulation along the
            # walk must not depend on which of the two built the module.
            users = sorted(
                (u for u in list(value.users) if isinstance(u, Instruction)),
                key=lambda u: u.iid,
            )
            for user in users:
                for operand_index, operand in enumerate(user.operands):
                    if operand is not value:
                        continue
                    self._visit_use(value, user, operand_index, edges,
                                    terminals, reach)
        return nodes, edges, terminals

    def _visit_use(self, value, user, operand_index, edges, terminals,
                   reach) -> None:
        self._touched.add(user.parent.parent.name)
        if isinstance(user, Store):
            kind = EV_STORE if operand_index == 0 else EV_STORE_ADDR
            terminals.append((kind, user, value, 1.0))
            return
        if isinstance(user, Branch):
            terminals.append((EV_BRANCH, user, value, 1.0))
            return
        if isinstance(user, Output):
            terminals.append((EV_OUTPUT, user, value, 1.0))
            return
        if isinstance(user, Detect):
            terminals.append((EV_DETECT, user, value, 1.0))
            return
        if isinstance(user, Ret):
            # Routing depends on who calls this function: record the
            # callgraph pseudo-dependency either way.
            self._callgraph = True
            function = user.parent.parent
            sites = self._call_sites.get(function.name, [])
            if function.name == "main" or not sites:
                terminals.append((EV_RET, user, value, 1.0))
                return
            for call in sites:
                self._touched.add(call.parent.parent.name)
                reach(call)
                edges.append((value, call, 1.0))
            return
        if isinstance(user, Call):
            self._callgraph = True
            if user.callee in self.module.functions:
                callee = self.module.functions[user.callee]
                self._touched.add(callee.name)
                formal: Argument = callee.args[operand_index]
                reach(formal)
                edges.append((value, formal, 1.0))
                return
            # Intrinsic: corruption flows through to the result.
            reach(user)
            edges.append((value, user, 1.0))
            return
        # min/max cluster: when the comparison exists only to drive
        # selects over this same value, the joint select-arm tuples carry
        # the whole effect — the value→cmp edge would double count it.
        from .tuples import cmp_feeds_only_minmax_selects
        from ..ir.instructions import FCmp, ICmp

        if (self.config.model_minmax_joint
                and isinstance(user, (ICmp, FCmp))
                and cmp_feeds_only_minmax_selects(user, value)):
            return
        # Ordinary computation: the user's result may be corrupted.
        p_edge = self.tuples.tuple_for(user, operand_index).propagation
        if p_edge <= self.config.epsilon:
            return
        reach(user)
        edges.append((value, user, p_edge))

    def _crash_probability(self, nodes, prob) -> float:
        """Union of per-node crash events (diagnostic estimate)."""
        survive = 1.0
        for node in nodes:
            if not isinstance(node, Instruction):
                continue
            for operand_index, operand in enumerate(node.operands):
                if id(operand) in prob:
                    crash = self.tuples.tuple_for(node, operand_index).crash
                    survive *= 1.0 - prob[id(operand)] * crash
        return 1.0 - survive
