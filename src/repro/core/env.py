"""One normalized reader for every ``REPRO_*`` environment knob.

Every subsystem that honors an environment variable (campaign workers,
interpreter tier, cache root, the ``REPRO_SERVE_*`` service knobs)
parses it through these helpers instead of ad-hoc ``os.environ`` reads,
so the accepted spellings are uniform everywhere:

* flags accept ``1/true/yes/on`` and ``0/false/no/off`` (any case,
  surrounding whitespace ignored; the empty string counts as unset);
* numbers are parsed strictly — ``REPRO_FI_WORKERS=four`` is a clear
  :class:`EnvError` naming the variable, the value and what was
  expected, never a silent default or a bare ``ValueError`` trace;
* choice knobs (benchmark scale, interpreter tier) reject anything
  outside the declared alternatives the same way.

:class:`EnvError` subclasses :class:`ValueError` so existing callers
that guarded with ``except ValueError`` keep working.
"""

from __future__ import annotations

import os

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


class EnvError(ValueError):
    """An environment variable holds a value that cannot be parsed."""

    def __init__(self, name: str, value: str, expected: str):
        super().__init__(
            f"${name}={value!r}: expected {expected}"
        )
        self.name = name
        self.value = value
        self.expected = expected


def env_str(name: str, default: str | None = None) -> str | None:
    """The raw value, with unset and empty both mapping to ``default``."""
    value = os.environ.get(name)
    if value is None or value.strip() == "":
        return default
    return value.strip()


def env_flag(name: str, default: bool = False) -> bool:
    """A boolean knob: 1/true/yes/on vs 0/false/no/off (case-insensitive)."""
    value = env_str(name)
    if value is None:
        return default
    lowered = value.lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise EnvError(name, value, "a boolean (1/true/yes/on or 0/false/no/off)")


def env_int(name: str, default: int = 0,
            minimum: int | None = None) -> int:
    """An integer knob; garbage or an out-of-range value raises
    :class:`EnvError`."""
    value = env_str(name)
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise EnvError(name, value, "an integer") from None
    if minimum is not None and parsed < minimum:
        raise EnvError(name, value, f"an integer >= {minimum}")
    return parsed


def env_float(name: str, default: float | None = None,
              minimum: float | None = None) -> float | None:
    """A float knob (e.g. a CI half-width); unset/empty keeps ``default``."""
    value = env_str(name)
    if value is None:
        return default
    try:
        parsed = float(value)
    except ValueError:
        raise EnvError(name, value, "a number") from None
    if minimum is not None and parsed < minimum:
        raise EnvError(name, value, f"a number >= {minimum}")
    return parsed


def env_choice(name: str, default: str | None,
               choices: tuple[str, ...]) -> str | None:
    """A knob restricted to declared alternatives (case preserved)."""
    value = env_str(name)
    if value is None:
        return default
    if value not in choices:
        raise EnvError(name, value, f"one of {', '.join(choices)}")
    return value
