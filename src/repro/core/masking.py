"""Output-precision masking for floating point values (Sec. IV-E).

When a program prints a float with fewer significant digits than the
type carries (e.g. ``%g`` printing 2 of f32's 7 digits), corrupted
low-order mantissa bits can vanish in the rounding.  The paper
approximates the surviving propagation probability as::

    ((w - mantissa) + mantissa * printed/full) / w

which for f32 printed at 2 digits gives ((32-23) + 23*(2/7))/32 = 48.66%.
"""

from __future__ import annotations

from ..ir.instructions import Output
from ..ir.types import FloatType


def output_masking_factor(output: Output) -> float:
    """Propagation probability of a corrupted value at this output."""
    value_type = output.value.type
    if not isinstance(value_type, FloatType):
        return 1.0
    if output.precision is None:
        return 1.0
    full_digits = value_type.decimal_digits
    if output.precision >= full_digits:
        return 1.0
    width = value_type.bits
    mantissa = value_type.mantissa_bits
    kept = output.precision / full_digits
    return ((width - mantissa) + mantissa * kept) / width
