"""fm — the memory sub-model (Sec. IV-E).

Tracks a corrupted store's value through the pruned memory dependency
graph until the program output: which loads observe the corrupted cells
(with what fraction of the store's instances), and from each load, where
the reloaded error goes — invoking the forward propagator on the load's
static data-dependent sequences and fc when a sequence ends in a branch.

Three design points beyond the paper's prose, each forced by a concrete
failure mode:

* **Cycles.**  The memory graph of real programs is cyclic (an
  accumulator is a store→load→store loop; corrupted data entering it
  persists until the loop exits), so store probabilities are solved as
  a monotone fixed point rather than by walking the graph.
* **Reader sets.**  One store's instances may be read by several static
  loads.  Those loads can partition the instances (accumulator: every
  instance feeds the next iteration except the last, which feeds the
  output) or observe the *same* instances (a DP stencil reads each cell
  three times).  The profiler records the exact reader set per instance;
  contributions sum across sets (exclusive) and union within one
  (joint observation of the same corrupted value).
* **Per-output reach.**  Output-precision masking (the %g rule) is a
  property of the corrupted value, not of the route it took; a cycle
  that replicates the corruption into many cells must not amplify past
  it.  fm therefore computes factor-free *reach* probabilities per
  output instruction and applies each output's masking factor exactly
  once, at the end.

Per-store results are memoized (the paper's memoization, Sec. IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import Branch, Output, Store
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .config import TridentConfig
from .fc import ControlFlowSubModel
from .masking import output_masking_factor
from .propagation import (
    EV_BRANCH,
    EV_OUTPUT,
    EV_STORE,
    EV_STORE_ADDR,
    ForwardPropagator,
)

#: Fixed-point iteration cap; the per-output reach map is monotone and
#: bounded by 1, converging geometrically for sub-1 cycle weights.
_MAX_ITERATIONS = 100
_CONVERGENCE_EPS = 1e-7

#: Pseudo-output key for the optional store-address-SDC extension.
_ADDR_SINK = -1


@dataclass(frozen=True)
class _Contribution:
    """One precompiled term of a load's propagation function."""

    kind: str    # "out" (reaches an output sink) or "store"
    weight: float
    ref: int     # output iid (or _ADDR_SINK) / store iid


class MemorySubModel:
    """P(SDC | a given store instruction writes a corrupted value)."""

    def __init__(self, module: Module, profile: ProgramProfile,
                 config: TridentConfig,
                 control_model: ControlFlowSubModel,
                 propagator: ForwardPropagator,
                 weigher=None):
        from .weighting import ExecutionWeigher

        self.module = module
        self.profile = profile
        self.config = config
        self.fc = control_model
        self.propagator = propagator
        self.weigher = weigher or ExecutionWeigher(module, profile)
        #: store iid -> {output iid -> reach probability}
        self._memo: dict[int, dict[int, float]] = {}
        self._load_terms: dict[int, list[_Contribution]] = {}
        self._store_edges: dict[int, list[tuple[int, float]]] = {}
        self._factors: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def propagate_store(self, store: Store) -> float:
        """P(a corrupted instance of ``store`` causes an SDC).

        Sinks are combined with max, not a union: the visibility of one
        corrupted value at several outputs is driven by the same bit
        position and magnitude, so the events are strongly correlated —
        "the most revealing output it reaches" is the better estimate.
        """
        reach = self.store_reach(store)
        best = 0.0
        for sink, probability in reach.items():
            best = max(best, min(1.0, probability) * self._factor(sink))
        return best

    def store_reach(self, store: Store) -> dict[int, float]:
        """Factor-free reach probability per output sink."""
        cached = self._memo.get(store.iid)
        if cached is not None:
            return cached
        closure = self._closure(store.iid)
        values: dict[int, dict[int, float]] = {iid: {} for iid in closure}
        for _ in range(_MAX_ITERATIONS):
            delta = 0.0
            for iid in closure:
                updated = self._evaluate_store(iid, values)
                current = values[iid]
                for sink, probability in updated.items():
                    previous = current.get(sink, 0.0)
                    if probability > previous + 1e-12:
                        delta = max(delta, probability - previous)
                        current[sink] = probability
            if delta < _CONVERGENCE_EPS:
                break
        self._memo.update(values)
        return values[store.iid]

    def clear_cache(self) -> None:
        self._memo.clear()
        self._load_terms.clear()
        self._store_edges.clear()

    @property
    def memoized_stores(self) -> int:
        return len(self._memo)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def _factor(self, sink: int) -> float:
        if sink == _ADDR_SINK:
            return 1.0
        factor = self._factors.get(sink)
        if factor is None:
            output = self.module.instruction(sink)
            assert isinstance(output, Output)
            factor = output_masking_factor(output)
            self._factors[sink] = factor
        return factor

    def _edges_of(self, store_iid: int) -> list[tuple[int, float]]:
        edges = self._store_edges.get(store_iid)
        if edges is None:
            edges = [
                (load_iid, weight)
                for load_iid, weight in self.profile.loads_reading(store_iid)
                if weight > self.config.epsilon
            ]
            self._store_edges[store_iid] = edges
        return edges

    def _closure(self, root_iid: int) -> list[int]:
        """All store iids reachable from the root in the memory graph."""
        seen: set[int] = set()
        worklist = [root_iid]
        while worklist:
            store_iid = worklist.pop()
            if store_iid in seen:
                continue
            seen.add(store_iid)
            for load_iid, _weight in self._edges_of(store_iid):
                for term in self._terms_of(load_iid):
                    if term.kind == "store" and term.ref not in seen:
                        worklist.append(term.ref)
        return sorted(seen)

    def _terms_of(self, load_iid: int) -> list[_Contribution]:
        """Precompiled propagation terms of one load."""
        terms = self._load_terms.get(load_iid)
        if terms is not None:
            return terms
        terms = []
        load = self.module.instruction(load_iid)
        load_count = self.profile.count(load_iid)
        if load_count == 0:
            self._load_terms[load_iid] = terms
            return terms
        for event in self.propagator.propagate(load).events:
            terminal = event.instruction
            alive = event.probability
            # Divergence weighting (Fig. 4): scale by how often the
            # terminal executes relative to the load; post-dominating
            # terminals are always reached.
            alive *= self.weigher.weight(load, terminal)
            if alive <= self.config.epsilon:
                continue
            if event.kind == EV_OUTPUT:
                terms.append(_Contribution("out", alive, terminal.iid))
            elif event.kind == EV_STORE:
                terms.append(_Contribution("store", alive, terminal.iid))
            elif event.kind == EV_BRANCH:
                assert isinstance(terminal, Branch)
                terms.extend(self._branch_terms(terminal, alive))
            elif event.kind == EV_STORE_ADDR:
                if self.config.model_store_address_sdc:
                    crash = self.profile.crash_probability(terminal.iid)
                    terms.append(_Contribution(
                        "out", alive * (1.0 - crash), _ADDR_SINK
                    ))
            # ret/detect: masked (or detected), no term.
        self._load_terms[load_iid] = terms
        return terms

    def _branch_terms(self, branch: Branch,
                      alive: float) -> list[_Contribution]:
        """fc invoked inside the memory walk: branch → corrupted stores."""
        if not self.config.enable_control_flow:
            return []
        terms = []
        for store, pc in self.fc.corrupted_stores(branch):
            weight = alive * pc
            if weight > self.config.epsilon:
                terms.append(_Contribution("store", weight, store.iid))
        return terms

    # ------------------------------------------------------------------
    # Fixed-point evaluation
    # ------------------------------------------------------------------

    def _sinks_of(self, store_iid: int, values) -> set[int]:
        sinks: set[int] = set()
        for load_iid, _weight in self._edges_of(store_iid):
            for term in self._terms_of(load_iid):
                if term.kind == "out":
                    sinks.add(term.ref)
                else:
                    reach = values.get(term.ref) or self._memo.get(term.ref)
                    if reach:
                        sinks.update(reach)
        return sinks

    def _evaluate_store(self, store_iid: int, values) -> dict[int, float]:
        """One fixed-point update: per-sink reach of one store.

        Reader sets partition the store's instances, so their
        contributions sum; loads within one set observed the same
        corrupted value, so their reach probabilities union.
        """
        distribution = self.profile.reader_set_distribution(store_iid)
        if not distribution:
            return {}
        result: dict[int, float] = {}
        for sink in self._sinks_of(store_iid, values):
            contributions = {
                load_iid: min(1.0, self._load_total(load_iid, sink, values))
                for load_iid, _w in self._edges_of(store_iid)
            }
            total = 0.0
            for readers, fraction in distribution:
                survive = 1.0
                for load_iid in readers:
                    survive *= 1.0 - contributions.get(load_iid, 0.0)
                total += fraction * (1.0 - survive)
            if total > self.config.epsilon:
                result[sink] = min(1.0, total)
        return result

    def _load_total(self, load_iid: int, sink: int, values) -> float:
        total = 0.0
        for term in self._terms_of(load_iid):
            if term.kind == "out":
                if term.ref == sink:
                    total += term.weight
            else:
                reach = values.get(term.ref)
                if reach is None:
                    reach = self._memo.get(term.ref, {})
                total += term.weight * reach.get(sink, 0.0)
        return total
