"""fm — the memory sub-model (Sec. IV-E).

Tracks a corrupted store's value through the pruned memory dependency
graph until the program output: which loads observe the corrupted cells
(with what fraction of the store's instances), and from each load, where
the reloaded error goes — invoking the forward propagator on the load's
static data-dependent sequences and fc when a sequence ends in a branch.

Three design points beyond the paper's prose, each forced by a concrete
failure mode:

* **Cycles.**  The memory graph of real programs is cyclic (an
  accumulator is a store→load→store loop; corrupted data entering it
  persists until the loop exits), so store probabilities are solved as
  a monotone fixed point rather than by walking the graph.
* **Reader sets.**  One store's instances may be read by several static
  loads.  Those loads can partition the instances (accumulator: every
  instance feeds the next iteration except the last, which feeds the
  output) or observe the *same* instances (a DP stencil reads each cell
  three times).  The profiler records the exact reader set per instance;
  contributions sum across sets (exclusive) and union within one
  (joint observation of the same corrupted value).
* **Per-output reach.**  Output-precision masking (the %g rule) is a
  property of the corrupted value, not of the route it took; a cycle
  that replicates the corruption into many cells must not amplify past
  it.  fm therefore computes factor-free *reach* probabilities per
  output instruction and applies each output's masking factor exactly
  once, at the end.

Per-store results are memoized (the paper's memoization, Sec. IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import Branch, Output, Store
from ..ir.module import Module
from ..profiling.profile import ProgramProfile
from .config import TridentConfig
from .fc import ControlFlowSubModel
from .masking import output_masking_factor
from .propagation import (
    EV_BRANCH,
    EV_OUTPUT,
    EV_STORE,
    EV_STORE_ADDR,
    ForwardPropagator,
)

#: Fixed-point iteration cap; the per-output reach map is monotone and
#: bounded by 1, converging geometrically for sub-1 cycle weights.
_MAX_ITERATIONS = 100
_CONVERGENCE_EPS = 1e-7

#: Pseudo-output key for the optional store-address-SDC extension.
_ADDR_SINK = -1


@dataclass(frozen=True)
class _Contribution:
    """One precompiled term of a load's propagation function."""

    kind: str    # "out" (reaches an output sink) or "store"
    weight: float
    ref: int     # output iid (or _ADDR_SINK) / store iid


class MemorySubModel:
    """P(SDC | a given store instruction writes a corrupted value).

    The fixed point is solved per strongly-connected component of the
    store graph, in reverse topological order, with SCC members iterated
    in canonical (function, local-position) order.  That makes every
    store's converged reach a function of *content only* — independent
    of which store was queried first — which is what lets per-store
    results live in the shared ``model.fm`` query store and be adopted
    by an incrementally rebuilt model with bit-identical values.
    """

    QUERY = "model.fm"

    def __init__(self, module: Module, profile: ProgramProfile,
                 config: TridentConfig,
                 control_model: ControlFlowSubModel,
                 propagator: ForwardPropagator,
                 weigher=None, engine=None):
        from .weighting import ExecutionWeigher

        self.module = module
        self.profile = profile
        self.config = config
        self.fc = control_model
        self.propagator = propagator
        self.engine = engine
        self.weigher = weigher or ExecutionWeigher(module, profile, engine)
        #: store iid -> {output iid -> reach probability}
        self._memo: dict[int, dict[int, float]] = {}
        self._load_terms: dict[int, list[_Contribution]] = {}
        self._term_fns: dict[int, set] = {}
        self._store_edges: dict[int, list[tuple[int, float]]] = {}
        self._factors: dict[int, float] = {}
        #: store iid -> dependency names (functions + pseudo-inputs) its
        #: reach was derived from, including transitive successors.
        self._dep_fns: dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def propagate_store(self, store: Store) -> float:
        """P(a corrupted instance of ``store`` causes an SDC).

        Sinks are combined with max, not a union: the visibility of one
        corrupted value at several outputs is driven by the same bit
        position and magnitude, so the events are strongly correlated —
        "the most revealing output it reaches" is the better estimate.
        """
        reach = self.store_reach(store)
        best = 0.0
        for sink, probability in reach.items():
            best = max(best, min(1.0, probability) * self._factor(sink))
        return best

    def store_reach(self, store: Store) -> dict[int, float]:
        """Factor-free reach probability per output sink."""
        cached = self._memo.get(store.iid)
        if cached is not None:
            return cached
        self._solve(store.iid)
        return self._memo[store.iid]

    def result_deps(self, store_iid: int) -> frozenset:
        """Dependency names of a solved store's reach (for model.sdc)."""
        return self._dep_fns.get(store_iid, frozenset())

    def clear_cache(self) -> None:
        self._memo.clear()
        self._load_terms.clear()
        self._term_fns.clear()
        self._store_edges.clear()
        self._dep_fns.clear()

    @property
    def memoized_stores(self) -> int:
        return len(self._memo)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def _factor(self, sink: int) -> float:
        if sink == _ADDR_SINK:
            return 1.0
        factor = self._factors.get(sink)
        if factor is None:
            output = self.module.instruction(sink)
            assert isinstance(output, Output)
            factor = output_masking_factor(output)
            self._factors[sink] = factor
        return factor

    def _edges_of(self, store_iid: int) -> list[tuple[int, float]]:
        edges = self._store_edges.get(store_iid)
        if edges is None:
            edges = [
                (load_iid, weight)
                for load_iid, weight in self.profile.loads_reading(store_iid)
                if weight > self.config.epsilon
            ]
            self._store_edges[store_iid] = edges
        return edges

    def _successors(self, store_iid: int) -> list[int]:
        """Stores this store's corruption can flow into (one hop)."""
        out: list[int] = []
        seen: set[int] = set()
        for load_iid, _weight in self._edges_of(store_iid):
            for term in self._terms_of(load_iid):
                if term.kind == "store" and term.ref not in seen:
                    seen.add(term.ref)
                    out.append(term.ref)
        return out

    # ------------------------------------------------------------------
    # SCC solving (iterative Tarjan, reverse topological emission)
    # ------------------------------------------------------------------

    def _solve(self, root_iid: int) -> None:
        """Solve every unsolved SCC reachable from ``root_iid``.

        Tarjan pops an SCC only after all its successors' SCCs popped,
        so by the time :meth:`_solve_scc` runs, every out-of-component
        reference is already finalized in ``_memo`` — each component's
        fixed point is self-contained and order-independent.
        """
        indices: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = 0

        def fresh_children(iid: int):
            return iter([s for s in self._successors(iid)
                         if s not in self._memo])

        indices[root_iid] = low[root_iid] = counter
        counter += 1
        stack.append(root_iid)
        on_stack.add(root_iid)
        frames: list[tuple[int, object]] = [
            (root_iid, fresh_children(root_iid))
        ]
        while frames:
            node, children = frames[-1]
            descended = False
            for child in children:
                if child not in indices:
                    indices[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    frames.append((child, fresh_children(child)))
                    descended = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], indices[child])
            if descended:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == indices[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                self._solve_scc(component)

    def _canonical(self, component: list[int]) -> list[int]:
        if self.engine is not None:
            return sorted(component, key=self.engine.index.local)
        return sorted(component)

    def _home(self, iid: int) -> str:
        if self.engine is not None:
            return self.engine.index.home[iid]
        return self.module.instruction(iid).parent.parent.name

    def _solve_scc(self, component: list[int]) -> None:
        members = self._canonical(component)
        if self._try_adopt(members):
            return
        values: dict[int, dict[int, float]] = {iid: {} for iid in members}
        for _ in range(_MAX_ITERATIONS):
            delta = 0.0
            for iid in members:
                updated = self._evaluate_store(iid, values)
                current = values[iid]
                for sink, probability in updated.items():
                    previous = current.get(sink, 0.0)
                    if probability > previous + 1e-12:
                        delta = max(delta, probability - previous)
                        current[sink] = probability
            if delta < _CONVERGENCE_EPS:
                break
        deps = self._scc_deps(members)
        for iid in members:
            self._memo[iid] = values[iid]
            self._dep_fns[iid] = deps
        self._publish(members, values, deps)

    def _scc_deps(self, members: list[int]) -> frozenset:
        if self.engine is None:
            return frozenset()
        member_set = set(members)
        deps: set = set()
        for iid in members:
            deps.add(self._home(iid))
            for load_iid, _weight in self._edges_of(iid):
                deps.add(self._home(load_iid))
                deps |= self._term_fns.get(load_iid, set())
                for term in self._terms_of(load_iid):
                    if term.kind == "store" and term.ref not in member_set:
                        deps |= self._dep_fns.get(term.ref, frozenset())
        return frozenset(deps)

    def _try_adopt(self, members: list[int]) -> bool:
        """Adopt a whole SCC from the query store, all-or-nothing.

        Partial adoption would seed the fixed point with converged
        values for some members and zeros for others — a different
        iteration trajectory than the cold solve, hence potentially
        different low-order bits.  All-or-nothing keeps warm results
        bit-identical to cold ones.
        """
        engine = self.engine
        if engine is None:
            return False
        from ..query.engine import MISS

        adopted: list[tuple[int, str, list, dict | None]] = []
        for iid in members:
            home, local = engine.index.local(iid)
            view = engine.view(self.QUERY, home)
            stored = view.get(local)
            if stored is MISS:
                return False
            entry = view.entries.get(local)
            adopted.append(
                (iid, home, stored, entry.deps if entry else None)
            )
        for iid, home, stored, deps in adopted:
            reach: dict[int, float] = {}
            for ref, probability in stored:
                if ref == _ADDR_SINK:
                    reach[_ADDR_SINK] = probability
                else:
                    reach[engine.index.resolve(ref, home)] = probability
            self._memo[iid] = reach
            self._dep_fns[iid] = frozenset(set(deps or ()) | {home})
        return True

    def _publish(self, members: list[int],
                 values: dict[int, dict[int, float]],
                 deps: frozenset) -> None:
        engine = self.engine
        if engine is None:
            return
        for iid in members:
            home, local = engine.index.local(iid)
            view = engine.view(self.QUERY, home)
            payload = sorted(
                ([self._symbolize_sink(sink, home), probability]
                 for sink, probability in values[iid].items()),
                key=repr,
            )
            view.put(local, payload, engine.deps_for(deps, exclude=home))

    def _symbolize_sink(self, sink: int, home: str):
        if sink == _ADDR_SINK:
            return _ADDR_SINK
        return self.engine.index.symbolize(sink, home)

    def _terms_of(self, load_iid: int) -> list[_Contribution]:
        """Precompiled propagation terms of one load."""
        terms = self._load_terms.get(load_iid)
        if terms is not None:
            return terms
        terms = []
        load = self.module.instruction(load_iid)
        load_count = self.profile.count(load_iid)
        if load_count == 0:
            self._load_terms[load_iid] = terms
            self._term_fns[load_iid] = set()
            return terms
        result = self.propagator.propagate(load)
        fns: set = set(result.functions)
        if result.callgraph:
            from ..query.engine import CALLGRAPH_DEP

            fns.add(CALLGRAPH_DEP)
        for event in result.events:
            terminal = event.instruction
            fns.add(terminal.parent.parent.name)
            alive = event.probability
            # Divergence weighting (Fig. 4): scale by how often the
            # terminal executes relative to the load; post-dominating
            # terminals are always reached.
            alive *= self.weigher.weight(load, terminal)
            if alive <= self.config.epsilon:
                continue
            if event.kind == EV_OUTPUT:
                terms.append(_Contribution("out", alive, terminal.iid))
            elif event.kind == EV_STORE:
                terms.append(_Contribution("store", alive, terminal.iid))
            elif event.kind == EV_BRANCH:
                assert isinstance(terminal, Branch)
                terms.extend(self._branch_terms(terminal, alive))
            elif event.kind == EV_STORE_ADDR:
                if self.config.model_store_address_sdc:
                    crash = self.profile.crash_probability(terminal.iid)
                    terms.append(_Contribution(
                        "out", alive * (1.0 - crash), _ADDR_SINK
                    ))
            # ret/detect: masked (or detected), no term.
        self._load_terms[load_iid] = terms
        self._term_fns[load_iid] = fns
        return terms

    def _branch_terms(self, branch: Branch,
                      alive: float) -> list[_Contribution]:
        """fc invoked inside the memory walk: branch → corrupted stores."""
        if not self.config.enable_control_flow:
            return []
        terms = []
        for store, pc in self.fc.corrupted_stores(branch):
            weight = alive * pc
            if weight > self.config.epsilon:
                terms.append(_Contribution("store", weight, store.iid))
        return terms

    # ------------------------------------------------------------------
    # Fixed-point evaluation
    # ------------------------------------------------------------------

    def _sinks_of(self, store_iid: int, values) -> set[int]:
        sinks: set[int] = set()
        for load_iid, _weight in self._edges_of(store_iid):
            for term in self._terms_of(load_iid):
                if term.kind == "out":
                    sinks.add(term.ref)
                else:
                    # Explicit None check: an SCC member's (possibly
                    # still-empty) in-flight value must never fall back
                    # to a finalized memo entry mid-iteration.
                    reach = values.get(term.ref)
                    if reach is None:
                        reach = self._memo.get(term.ref)
                    if reach:
                        sinks.update(reach)
        return sinks

    def _evaluate_store(self, store_iid: int, values) -> dict[int, float]:
        """One fixed-point update: per-sink reach of one store.

        Reader sets partition the store's instances, so their
        contributions sum; loads within one set observed the same
        corrupted value, so their reach probabilities union.
        """
        distribution = self.profile.reader_set_distribution(store_iid)
        if not distribution:
            return {}
        result: dict[int, float] = {}
        for sink in self._sinks_of(store_iid, values):
            contributions = {
                load_iid: min(1.0, self._load_total(load_iid, sink, values))
                for load_iid, _w in self._edges_of(store_iid)
            }
            total = 0.0
            for readers, fraction in distribution:
                survive = 1.0
                for load_iid in readers:
                    survive *= 1.0 - contributions.get(load_iid, 0.0)
                total += fraction * (1.0 - survive)
            if total > self.config.epsilon:
                result[sink] = min(1.0, total)
        return result

    def _load_total(self, load_iid: int, sink: int, values) -> float:
        total = 0.0
        for term in self._terms_of(load_iid):
            if term.kind == "out":
                if term.ref == sink:
                    total += term.weight
            else:
                reach = values.get(term.ref)
                if reach is None:
                    reach = self._memo.get(term.ref, {})
                total += term.weight * reach.get(sink, 0.0)
        return total
