"""Blocking client for the ``repro serve`` daemon.

``repro submit`` and ``repro status`` talk to the daemon through this
thin :mod:`http.client` wrapper; tests drive it against an in-process
daemon.  Every call opens one connection (the protocol is
``Connection: close``), sends JSON, and returns the decoded JSON body.
Non-2xx responses raise :class:`ServiceError` carrying the HTTP status
— 429 (queue full) and 400 (malformed request) surface as exceptions a
caller can branch on, never as silent empty results.
"""

from __future__ import annotations

import http.client
import json

from .protocol import API_PREFIX


class ServiceError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One daemon endpoint; every method is one request/response."""

    def __init__(self, host: str, port: int, timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, route: str,
                 payload: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, API_PREFIX + route, body, headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            raise ServiceError(
                response.status, f"non-JSON response: {raw[:200]!r}"
            ) from None
        if response.status >= 400:
            raise ServiceError(
                response.status, decoded.get("error", "unknown error")
            )
        return decoded

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def submit(self, payload: dict, wait: bool = False) -> dict:
        route = "/campaigns?wait=1" if wait else "/campaigns"
        return self._request("POST", route, payload)

    def job(self, job_id: str, wait: bool = False) -> dict:
        route = f"/jobs/{job_id}"
        if wait:
            route += "?wait=1"
        return self._request("GET", route)

    def jobs(self) -> dict:
        return self._request("GET", "/jobs")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def analyze(self, payload: dict) -> dict:
        return self._request("POST", "/analyze", payload)
