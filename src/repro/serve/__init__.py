"""The campaign service: HTTP daemon, wire protocol, blocking client.

``repro serve`` runs :class:`ServiceDaemon`; ``repro submit`` and
``repro status`` use :class:`ServiceClient`.  The daemon executes
campaigns through exactly the scheduler/executor path the one-shot CLI
uses, so a result computed either way serves the other from the shared
result store byte-for-byte.
"""

from .client import ServiceClient, ServiceError
from .daemon import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceDaemon,
    default_host,
    default_port,
    run_daemon,
)
from .protocol import API_PREFIX, PROTOCOL_VERSION

__all__ = [
    "API_PREFIX",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "default_host",
    "default_port",
    "run_daemon",
]
