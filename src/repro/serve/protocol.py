"""The small JSON-over-HTTP protocol between ``repro`` and the daemon.

One place defines what travels on the wire — routes, status codes, and
the HTTP framing helpers — so the asyncio daemon and the blocking
:mod:`http.client` client cannot drift apart.  The protocol is
deliberately tiny: JSON bodies, ``Connection: close``, no streaming.

Routes (all under :data:`API_PREFIX`):

====== ==================== ==========================================
GET    ``/v1/health``        liveness + protocol version
POST   ``/v1/campaigns``     submit a campaign; 200 done (store hit or
                             ``wait``), 202 queued, 429 queue full
GET    ``/v1/jobs``          every job this daemon has seen
GET    ``/v1/jobs/<id>``     one job, with its result when done
GET    ``/v1/stats``         scheduler counters + store counters
POST   ``/v1/analyze``       model prediction (no fault injection)
====== ==================== ==========================================
"""

from __future__ import annotations

import json

PROTOCOL_VERSION = 1
API_PREFIX = "/v1"

#: Reason phrases for every status the daemon emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Largest request body the daemon will read (a printed-IR module of
#: every benchmark fits with orders of magnitude to spare).
MAX_BODY_BYTES = 8 * 1024 * 1024


def error_body(message: str) -> dict:
    return {"error": message}


def encode_response(status: int, payload: dict) -> bytes:
    """One complete HTTP/1.1 response, JSON body, connection closed."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def parse_request_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Split a request head into (method, path, lowercase headers)."""
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def split_target(target: str) -> tuple[str, dict[str, str]]:
    """Split a request target into (path, query dict)."""
    path, _sep, raw_query = target.partition("?")
    query: dict[str, str] = {}
    if raw_query:
        for pair in raw_query.split("&"):
            name, _sep, value = pair.partition("=")
            if name:
                query[name] = value
    return path, query


def is_true(value: str | None) -> bool:
    """Loose truthiness for query parameters (``?wait=1``)."""
    return str(value).strip().lower() in {"1", "true", "yes", "on"}
