"""The ``repro serve`` daemon: asyncio HTTP front of the scheduler.

Stdlib only — a hand-rolled HTTP/1.1 loop over ``asyncio`` streams is
all the protocol needs (JSON bodies, ``Connection: close``).  The
daemon itself never executes campaigns: it parses requests, hands them
to the :class:`~repro.sched.scheduler.Scheduler` (whose dispatcher
thread drives :func:`~repro.sched.executor.run_store_campaign`, the
exact path ``repro inject`` uses), and serializes job state back.
Blocking calls — module materialization in ``submit``, ``job.wait``,
model analysis — run in the default thread-pool executor so the event
loop keeps answering health checks while a campaign shards out.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time

from ..core.env import env_float, env_int, env_str
from ..sched.queue import QueueFull
from ..sched.scheduler import CampaignRequest, Scheduler
from .protocol import (
    API_PREFIX,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    encode_response,
    error_body,
    is_true,
    parse_request_head,
    split_target,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

HOST_ENV = "REPRO_SERVE_HOST"
PORT_ENV = "REPRO_SERVE_PORT"
WORKERS_ENV = "REPRO_SERVE_WORKERS"
MAX_PENDING_ENV = "REPRO_SERVE_MAX_PENDING"
WAIT_TIMEOUT_ENV = "REPRO_SERVE_WAIT_TIMEOUT"


def default_host() -> str:
    return env_str(HOST_ENV, DEFAULT_HOST)


def default_port() -> int:
    return env_int(PORT_ENV, DEFAULT_PORT, minimum=0)


class ServiceDaemon:
    """One scheduler, one listening socket, one request at a time each."""

    def __init__(self, *, host: str | None = None, port: int | None = None,
                 workers: int | None = None, max_pending: int | None = None,
                 log=None):
        self.host = host if host is not None else default_host()
        self.port = port if port is not None else default_port()
        if workers is None:
            workers = env_int(WORKERS_ENV, 1, minimum=1)
        if max_pending is None:
            max_pending = env_int(MAX_PENDING_ENV, 64, minimum=1)
        self.scheduler = Scheduler(
            max_pending=max_pending, default_workers=workers
        )
        self._wait_timeout = env_float(WAIT_TIMEOUT_ENV, 600.0, minimum=0.0)
        self._log = log if log is not None else sys.stderr
        self._server: asyncio.Server | None = None
        self._started = time.time()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Port 0 binds an ephemeral port; publish the real one.
        self.port = self._server.sockets[0].getsockname()[1]
        self.log(f"listening on http://{self.host}:{self.port}{API_PREFIX}")

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.stop()

    def log(self, message: str) -> None:
        print(f"[repro.serve] {message}", file=self._log, flush=True)

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - protocol error boundary
            status, payload = 500, error_body(
                f"{type(exc).__name__}: {exc}"
            )
            self.log(f"500 {exc!r}")
        try:
            writer.write(encode_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()

    async def _respond(self, reader) -> tuple[int, dict]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, error_body("truncated request head")
        method, target, headers = parse_request_head(head[:-4])
        path, query = split_target(target)
        length = int(headers.get("content-length", 0))
        if length > MAX_BODY_BYTES:
            return 413, error_body(f"body exceeds {MAX_BODY_BYTES} bytes")
        body: dict = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                return 400, error_body("request body is not valid JSON")
            if not isinstance(body, dict):
                return 400, error_body("request body must be a JSON object")
        return await self._route(method, path, query, body)

    async def _route(self, method: str, path: str, query: dict,
                     body: dict) -> tuple[int, dict]:
        if not path.startswith(API_PREFIX):
            return 404, error_body(f"unknown path {path!r}")
        route = path[len(API_PREFIX):] or "/"
        if route == "/health" and method == "GET":
            return 200, self._health()
        if route == "/campaigns" and method == "POST":
            return await self._submit(query, body)
        if route == "/jobs" and method == "GET":
            jobs = [job.to_dict(include_result=False)
                    for job in self.scheduler.jobs()]
            return 200, {"jobs": sorted(jobs, key=lambda j: j["job_id"])}
        if route.startswith("/jobs/") and method == "GET":
            return await self._job(route[len("/jobs/"):], query)
        if route == "/stats" and method == "GET":
            return 200, self._stats()
        if route == "/analyze" and method == "POST":
            return await self._analyze(body)
        known = {"/health", "/campaigns", "/jobs", "/stats", "/analyze"}
        if route in known or route.startswith("/jobs/"):
            return 405, error_body(f"{method} not allowed on {path}")
        return 404, error_body(f"unknown path {path!r}")

    def _health(self) -> dict:
        return {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self._started,
        }

    async def _submit(self, query: dict, body: dict) -> tuple[int, dict]:
        try:
            request = CampaignRequest.from_payload(
                body, default_workers=self.scheduler.default_workers
            )
        except (KeyError, TypeError, ValueError) as exc:
            return 400, error_body(f"bad campaign request: {exc}")
        loop = asyncio.get_running_loop()
        try:
            job = await loop.run_in_executor(
                None, self.scheduler.submit, request
            )
        except QueueFull as exc:
            return 429, error_body(str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            return 400, error_body(f"bad campaign request: {exc}")
        wait = is_true(query.get("wait")) or bool(body.get("wait"))
        if wait and job.status in ("queued", "running"):
            await loop.run_in_executor(None, job.wait, self._wait_timeout)
        self.log(f"{job.id} {job.status} fp={job.fingerprint[:12]} "
                 f"runs={request.runs} cached={job.cached}")
        status = 200 if job.status in ("done", "failed") else 202
        return status, job.to_dict()

    async def _job(self, job_id: str, query: dict) -> tuple[int, dict]:
        job = self.scheduler.job(job_id)
        if job is None:
            return 404, error_body(f"unknown job {job_id!r}")
        if is_true(query.get("wait")) and job.status in ("queued", "running"):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, job.wait, self._wait_timeout)
        return 200, job.to_dict()

    def _stats(self) -> dict:
        from ..cache import get_cache
        cache = get_cache()
        payload = self.scheduler.stats()
        payload["uptime_seconds"] = time.time() - self._started
        payload["store"] = {
            "enabled": cache.enabled,
            "root": str(cache.root),
            "counters": cache.read_counters(),
        }
        return payload

    async def _analyze(self, body: dict) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        try:
            return 200, await loop.run_in_executor(
                None, analyze_request, body
            )
        except (KeyError, TypeError, ValueError) as exc:
            return 400, error_body(f"bad analyze request: {exc}")


def analyze_request(body: dict) -> dict:
    """Model prediction (no fault injection) for a wire-form module."""
    from ..cache import (
        get_cache,
        load_cached_profile,
        module_fingerprint,
        profile_key,
        store_cached_profile,
    )
    from ..core.simple_models import MODEL_NAMES, create_model
    from ..profiling.profiler import ProfilingInterpreter
    from ..sched.spec import ModuleSpec
    spec = ModuleSpec.from_dict(body)
    if spec.benchmark is None and spec.ir_text is None:
        raise ValueError("request names neither a benchmark nor IR")
    model_name = str(body.get("model", "trident"))
    if model_name not in MODEL_NAMES:
        raise ValueError(f"unknown model {model_name!r}")
    samples = int(body.get("samples", 3000))
    module = spec.materialize()
    cache = get_cache()
    key = profile_key(module_fingerprint(module))
    profile = load_cached_profile(cache, key)
    if profile is None:
        profile, outputs = ProfilingInterpreter(module).run()
        store_cached_profile(cache, key, profile, outputs)
    model = create_model(model_name, module, profile)
    payload = {
        "fingerprint": module_fingerprint(module),
        "model": model_name,
        "samples": samples,
        "overall_sdc": model.overall_sdc(samples=samples),
    }
    if model_name == "trident":
        payload["overall_crash"] = model.overall_crash(samples=samples)
    return payload


def run_daemon(daemon: ServiceDaemon, *, port_file: str | None = None) -> int:
    """Blocking entrypoint behind ``repro serve``."""

    async def _main() -> None:
        await daemon.start()
        if port_file:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{daemon.port}\n")
        try:
            await daemon.serve_forever()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        daemon.log("interrupted; shutting down")
    return 0
