"""Human-readable resilience reports (the Fig. 1a developer artifact)."""

from .resilience import FunctionSummary, ResilienceReport, generate_report

__all__ = ["FunctionSummary", "ResilienceReport", "generate_report"]
