"""Resilience report: a human-readable summary of a program's SDC risk.

This is the artifact a developer consumes in the Fig. 1a development
cycle: where the program is vulnerable, whether it meets a target SDC
probability, and what protecting the top instructions would buy.
Rendered as markdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.simple_models import create_model
from ..fi.campaign import SDC, CampaignResult
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.printer import format_instruction
from ..profiling.profile import ProgramProfile
from ..protection.duplication import is_duplicable
from ..protection.evaluate import duplication_cost, full_duplication_cost
from ..protection.knapsack import KnapsackItem, knapsack_select
from ..stats.confidence import wilson_confidence


@dataclass
class FunctionSummary:
    name: str
    instructions: int
    eligible: int
    weighted_sdc: float      # execution-weighted mean SDC probability
    hottest: list[tuple[int, float, str]] = field(default_factory=list)


@dataclass
class ResilienceReport:
    program: str
    overall_sdc: float
    overall_crash: float
    dynamic_instructions: int
    functions: list[FunctionSummary]
    target_sdc: float | None
    meets_target: bool | None
    recommended_iids: set[int]
    recommended_coverage: float   # fraction of SDC mass covered
    recommended_overhead: float   # fraction of full-duplication cost
    #: Optional FI validation campaign backing the predictions.
    fi: CampaignResult | None = None

    def render(self) -> str:
        lines = [
            f"# Resilience report: {self.program}",
            "",
            f"* overall SDC probability (predicted): "
            f"**{self.overall_sdc:.2%}**",
            f"* overall crash probability (predicted): "
            f"{self.overall_crash:.2%}",
            f"* dynamic instructions profiled: {self.dynamic_instructions}",
        ]
        if self.target_sdc is not None:
            verdict = "MEETS" if self.meets_target else "EXCEEDS"
            lines.append(
                f"* target SDC probability {self.target_sdc:.2%}: "
                f"**{verdict}**"
            )
        lines.append("")
        lines.append("## Per-function breakdown")
        lines.append("")
        lines.append("| function | instructions | weighted SDC |")
        lines.append("|---|---|---|")
        for summary in self.functions:
            lines.append(
                f"| {summary.name} | {summary.instructions} "
                f"| {summary.weighted_sdc:.2%} |"
            )
        lines.append("")
        lines.append("## Most SDC-prone instructions")
        lines.append("")
        for summary in self.functions:
            for iid, probability, text in summary.hottest:
                lines.append(
                    f"* `#{iid}` ({summary.name}) {probability:.2%} — "
                    f"`{text}`"
                )
        if self.fi is not None:
            fi = self.fi
            interval = wilson_confidence(fi.counts[SDC], fi.total)
            stopped = " — stopped early at CI target" if fi.stopped_early \
                else ""
            lines.append("")
            lines.append("## Fault injection validation")
            lines.append("")
            lines.append(
                f"* measured SDC probability: **{interval.probability:.2%} "
                f"± {interval.margin:.2%}** (Wilson 95%)"
            )
            lines.append(
                f"* runs executed: {fi.total} of {fi.runs_requested} "
                f"requested{stopped}"
            )
            lines.append(
                f"* wall clock: {fi.wall_seconds:.2f} s on {fi.workers} "
                f"worker(s), {fi.cpu_seconds:.2f} CPU-seconds"
            )
        lines.append("")
        lines.append("## Protection recommendation")
        lines.append("")
        lines.append(
            f"Duplicating **{len(self.recommended_iids)}** instructions "
            f"(~{self.recommended_overhead:.0%} of the full-duplication "
            f"overhead) covers ~{self.recommended_coverage:.0%} of the "
            f"predicted SDC mass."
        )
        return "\n".join(lines)


def generate_report(module: Module, profile: ProgramProfile,
                    target_sdc: float | None = None,
                    overhead_budget: float = 1 / 3,
                    top_per_function: int = 3,
                    samples: int = 2000,
                    fi: CampaignResult | None = None) -> ResilienceReport:
    """Build the report from one profiled execution.

    ``fi`` optionally attaches a measured FI campaign, rendered as a
    validation section with its wall-clock/runs-executed summary.
    """
    model = create_model("trident", module, profile)
    overall = model.overall_sdc(samples=samples, seed=0)
    crash = model.overall_crash(samples=min(samples, 1000), seed=0)

    functions = []
    for function in module.functions.values():
        insts: list[Instruction] = list(function.instructions())
        eligible = [
            i for i in insts if i.iid in set(model.eligible)
        ]
        total_weight = sum(profile.count(i.iid) for i in eligible)
        if total_weight:
            weighted = sum(
                profile.count(i.iid) * model.instruction_sdc(i.iid)
                for i in eligible
            ) / total_weight
        else:
            weighted = 0.0
        ranked = sorted(
            eligible, key=lambda i: model.instruction_sdc(i.iid),
            reverse=True,
        )[:top_per_function]
        functions.append(FunctionSummary(
            name=function.name,
            instructions=len(insts),
            eligible=len(eligible),
            weighted_sdc=weighted,
            hottest=[
                (i.iid, model.instruction_sdc(i.iid),
                 format_instruction(i))
                for i in ranked
            ],
        ))

    # Knapsack recommendation at the requested budget.
    candidates = [
        iid for iid in model.eligible
        if is_duplicable(module.instruction(iid))
    ]
    items = [
        KnapsackItem(
            key=iid,
            cost=duplication_cost(profile, iid),
            profit=model.instruction_sdc(iid) * profile.count(iid),
        )
        for iid in candidates
    ]
    capacity = int(full_duplication_cost(module, profile) * overhead_budget)
    chosen = knapsack_select(items, capacity)
    total_mass = sum(item.profit for item in items)
    covered = sum(item.profit for item in items if item.key in chosen)

    return ResilienceReport(
        program=module.name,
        overall_sdc=overall,
        overall_crash=crash,
        dynamic_instructions=profile.dynamic_count,
        functions=functions,
        target_sdc=target_sdc,
        meets_target=None if target_sdc is None else overall <= target_sdc,
        recommended_iids=chosen,
        recommended_coverage=covered / total_mass if total_mass else 0.0,
        recommended_overhead=overhead_budget,
        fi=fi,
    )
