"""Dominator and post-dominator analysis (iterative set-based dataflow).

Functions in the mini-IR are small (tens to a few hundred blocks), so the
classic O(n^2) set-intersection formulation is plenty fast and far easier
to audit than Lengauer-Tarjan.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import exit_blocks, predecessor_map, reachable_blocks, reverse_postorder

#: Sentinel used as the virtual exit node for post-dominance, so functions
#: with several ``ret`` blocks have a single sink.
VIRTUAL_EXIT = "<virtual-exit>"


def compute_dominators(function: Function) -> dict[BasicBlock, set[BasicBlock]]:
    """Map each reachable block to the set of blocks dominating it.

    A block always dominates itself.  Unreachable blocks are mapped to the
    empty set.
    """
    reachable = reachable_blocks(function)
    order = reverse_postorder(function)
    preds = predecessor_map(function)
    entry = function.entry

    dominators: dict[BasicBlock, set[BasicBlock]] = {
        block: set() for block in function.blocks
    }
    dominators[entry] = {entry}
    for block in order:
        if block is not entry:
            dominators[block] = set(reachable)

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is entry:
                continue
            reachable_preds = [p for p in preds[block] if p in reachable]
            if not reachable_preds:
                continue
            new_set = set.intersection(
                *(dominators[p] for p in reachable_preds)
            )
            new_set.add(block)
            if new_set != dominators[block]:
                dominators[block] = new_set
                changed = True
    return dominators


def immediate_dominators(function: Function) -> dict[BasicBlock, BasicBlock | None]:
    """Immediate dominator of each reachable block (entry maps to None)."""
    dominators = compute_dominators(function)
    idom: dict[BasicBlock, BasicBlock | None] = {}
    for block, dom_set in dominators.items():
        if not dom_set:
            continue
        strict = dom_set - {block}
        if not strict:
            idom[block] = None
            continue
        # The immediate dominator is the strict dominator dominated by all
        # other strict dominators.
        idom[block] = max(strict, key=lambda d: len(dominators[d]))
    return idom


def compute_postdominators(function: Function) -> dict[BasicBlock, set]:
    """Map each block to its set of post-dominators.

    The virtual exit :data:`VIRTUAL_EXIT` post-dominates everything and is
    included in every set; blocks that cannot reach an exit (infinite
    loops) get only themselves.
    """
    exits = exit_blocks(function)
    blocks = function.blocks
    succs: dict = {block: list(block.successors) for block in blocks}
    for block in exits:
        succs[block] = [VIRTUAL_EXIT]

    all_nodes = set(blocks) | {VIRTUAL_EXIT}
    postdoms: dict = {node: set(all_nodes) for node in blocks}
    postdoms[VIRTUAL_EXIT] = {VIRTUAL_EXIT}

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            successor_sets = [postdoms[s] for s in succs[block]]
            if successor_sets:
                new_set = set.intersection(*successor_sets)
            else:
                new_set = set()
            new_set.add(block)
            if new_set != postdoms[block]:
                postdoms[block] = new_set
                changed = True
    return postdoms


def postdominators(function: Function) -> dict[BasicBlock, object]:
    """Immediate post-dominator of each block.

    Maps every block to its closest strict post-dominator: another
    block, :data:`VIRTUAL_EXIT` when the virtual exit is the nearest
    one (exit blocks, and branch blocks whose two arms return
    separately), or ``None`` for blocks that cannot reach an exit at
    all.  The ``None`` case needs an explicit reachability guard: the
    set fixpoint in :func:`compute_postdominators` starts from the full
    node set, so blocks with no path to an exit keep it (the equations
    are vacuously true there) rather than shrinking to ``{block}``.
    """
    postdoms = compute_postdominators(function)
    preds = predecessor_map(function)
    work = list(exit_blocks(function))
    reaches_exit = set(work)
    while work:
        block = work.pop()
        for pred in preds[block]:
            if pred not in reaches_exit:
                reaches_exit.add(pred)
                work.append(pred)
    ipdom: dict[BasicBlock, object] = {}
    for block in function.blocks:
        if block not in reaches_exit:
            ipdom[block] = None
            continue
        strict = postdoms[block] - {block}
        if not strict:
            ipdom[block] = None
            continue
        # The immediate post-dominator is the strict post-dominator
        # post-dominated by all the others; VIRTUAL_EXIT's singleton
        # set makes it the farthest candidate, so ``max`` picks a real
        # block whenever one exists.
        ipdom[block] = max(strict, key=lambda d: len(postdoms[d]))
    return ipdom


def dominates(dominators: dict, a: BasicBlock, b: BasicBlock) -> bool:
    """Does block ``a`` dominate block ``b``?"""
    return a in dominators.get(b, set())
