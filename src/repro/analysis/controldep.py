"""Control dependence: which blocks execute because of which branches.

The control-flow sub-model (fc) asks, for a corrupted conditional branch,
which store instructions may be incorrectly executed or skipped.  Those
are exactly the stores in blocks control-dependent (transitively) on the
branch.

We use the classic Ferrante/Ottenstein/Warren definition: block ``w`` is
control dependent on edge ``u -> v`` iff ``w`` post-dominates ``v`` and
``w`` does not strictly post-dominate ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch
from .dominators import compute_postdominators


@dataclass(frozen=True)
class ControlDep:
    """One control dependence: the branch and the direction (True/False)."""

    branch: Branch
    direction: bool


class ControlDependence:
    """Control dependence relation for one function."""

    def __init__(self, function: Function):
        self.function = function
        self._postdoms = compute_postdominators(function)
        #: block -> list of ControlDep that directly govern it
        self.direct: dict[BasicBlock, list[ControlDep]] = {
            block: [] for block in function.blocks
        }
        #: branch -> direction -> set of directly dependent blocks
        self.governed: dict[Branch, dict[bool, set[BasicBlock]]] = {}
        self._build()

    def _build(self) -> None:
        for block in self.function.blocks:
            terminator = block.terminator
            if not isinstance(terminator, Branch) or not terminator.is_conditional:
                continue
            self.governed[terminator] = {True: set(), False: set()}
            for direction, target in (
                (True, terminator.true_block),
                (False, terminator.false_block),
            ):
                for candidate in self.function.blocks:
                    postdominates_target = candidate in self._postdoms[target]
                    strictly_postdominates_branch = (
                        candidate in self._postdoms[block] and candidate is not block
                    )
                    if postdominates_target and not strictly_postdominates_branch:
                        self.direct[candidate].append(
                            ControlDep(terminator, direction)
                        )
                        self.governed[terminator][direction].add(candidate)

    def blocks_governed_by(self, branch: Branch,
                           transitive: bool = True) -> set[BasicBlock]:
        """Blocks whose execution depends on the branch outcome.

        With ``transitive=True`` (what fc wants), blocks governed by
        branches that are themselves governed by this branch are included.
        """
        if branch not in self.governed:
            return set()
        result: set[BasicBlock] = set()
        worklist = list(
            self.governed[branch][True] | self.governed[branch][False]
        )
        while worklist:
            block = worklist.pop()
            if block in result:
                continue
            result.add(block)
            if not transitive:
                continue
            terminator = block.terminator
            if isinstance(terminator, Branch) and terminator.is_conditional:
                if terminator in self.governed and terminator is not branch:
                    worklist.extend(
                        self.governed[terminator][True]
                        | self.governed[terminator][False]
                    )
        return result

    def governing_direction(self, branch: Branch,
                            block: BasicBlock) -> bool | None:
        """Which direction of ``branch`` directly governs ``block``?

        Returns None if the block is not directly control dependent on the
        branch (e.g., only transitively).
        """
        if branch not in self.governed:
            return None
        if block in self.governed[branch][True]:
            return True
        if block in self.governed[branch][False]:
            return False
        return None
