"""Control-flow graph utilities over mini-IR functions."""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors


def predecessor_map(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Predecessors of each block, computed in one pass."""
    preds: dict[BasicBlock, list[BasicBlock]] = {
        block: [] for block in function.blocks
    }
    for block in function.blocks:
        for succ in block.successors:
            preds[succ].append(block)
    return preds


def reachable_blocks(function: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block."""
    seen: set[BasicBlock] = set()
    worklist = [function.entry]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors)
    return seen


def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (forward dataflow order)."""
    order: list[BasicBlock] = []
    seen: set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        seen.add(block)
        while stack:
            current, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry)
    order.reverse()
    return order


def exit_blocks(function: Function) -> list[BasicBlock]:
    """Blocks terminated by a ``ret``."""
    from ..ir.instructions import Ret

    return [
        block for block in function.blocks if isinstance(block.terminator, Ret)
    ]
