"""Static data-dependent instruction sequences (def-use path enumeration).

Sec. IV-C: once a fault is activated in an instruction's destination
register, it propagates along the static data-dependent instruction
sequence until a store, a comparison feeding a branch, or a program
output is reached.  This module enumerates those sequences as explicit
paths so the static-instruction sub-model (fs) can aggregate per-
instruction propagation tuples along them.

Paths are enumerated interprocedurally: values passed as call arguments
continue inside the callee, returned values continue at every call site.
Fan-out (a value with several users) produces several paths; enumeration
is capped to keep the state space bounded (the paper's "state space
explosion" challenge is avoided the same way: by abstracting, not by
enumerating dynamic executions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instructions import (
    Branch,
    Call,
    Detect,
    Instruction,
    Output,
    Ret,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Value

#: Terminal kinds a propagation path can end in.
TERMINAL_STORE = "store"          # error reaches a store's value operand
TERMINAL_STORE_ADDR = "store_addr"  # error reaches a store's address
TERMINAL_BRANCH = "branch"        # error reaches a branch condition
TERMINAL_OUTPUT = "output"        # error reaches a program output
TERMINAL_RET = "ret"              # error reaches main's return (discarded)
TERMINAL_DETECT = "detect"        # error reaches a protection check
TERMINAL_DEAD = "dead"            # value has no users: masked
TERMINAL_TRUNCATED = "truncated"  # enumeration cap hit


@dataclass
class PropagationPath:
    """One def-use path from a faulty value to a terminal.

    ``steps`` holds (instruction, operand_index) pairs: the instruction
    the error flows *into* and which operand slot carries it.  The last
    step is the terminal instruction (when the terminal has one).
    """

    steps: list[tuple[Instruction, int]] = field(default_factory=list)
    terminal: str = TERMINAL_DEAD

    @property
    def terminal_instruction(self) -> Instruction | None:
        return self.steps[-1][0] if self.steps else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = " -> ".join(f"{i.opcode}#{i.iid}" for i, _ in self.steps)
        return f"<Path [{chain}] => {self.terminal}>"


class PathEnumerator:
    """Enumerates propagation paths with caps on count and depth."""

    def __init__(self, module: Module, max_paths: int = 128,
                 max_depth: int = 64):
        self.module = module
        self.max_paths = max_paths
        self.max_depth = max_depth
        self._call_sites = self._index_call_sites()

    def _index_call_sites(self) -> dict[str, list[Call]]:
        sites: dict[str, list[Call]] = {}
        for function in self.module.functions.values():
            for inst in function.instructions():
                if isinstance(inst, Call):
                    sites.setdefault(inst.callee, []).append(inst)
        return sites

    def paths_from(self, value: Value) -> list[PropagationPath]:
        """All propagation paths of a fault sitting in ``value``."""
        paths: list[PropagationPath] = []
        self._walk(value, [], paths, set())
        return paths

    # -- the walk -----------------------------------------------------------

    def _walk(self, value: Value, prefix: list, paths: list,
              visiting: set) -> None:
        if len(paths) >= self.max_paths:
            return
        if len(prefix) >= self.max_depth:
            paths.append(PropagationPath(list(prefix), TERMINAL_TRUNCATED))
            return
        users = self._users_of(value)
        if not users:
            paths.append(PropagationPath(list(prefix), TERMINAL_DEAD))
            return
        for user, operand_index in users:
            if len(paths) >= self.max_paths:
                return
            key = (id(user), operand_index)
            if key in visiting:
                continue  # def-use cycles only arise interprocedurally
            visiting.add(key)
            try:
                self._step(user, operand_index, prefix, paths, visiting)
            finally:
                visiting.discard(key)

    def _users_of(self, value: Value) -> list[tuple[Instruction, int]]:
        users = []
        for user in value.users:
            if not isinstance(user, Instruction):
                continue
            for index, operand in enumerate(user.operands):
                if operand is value:
                    users.append((user, index))
        return users

    def _step(self, user: Instruction, operand_index: int, prefix: list,
              paths: list, visiting: set) -> None:
        hop = (user, operand_index)

        if isinstance(user, Store):
            terminal = (
                TERMINAL_STORE if operand_index == 0 else TERMINAL_STORE_ADDR
            )
            paths.append(PropagationPath(prefix + [hop], terminal))
            return
        if isinstance(user, Branch):
            paths.append(PropagationPath(prefix + [hop], TERMINAL_BRANCH))
            return
        if isinstance(user, Output):
            paths.append(PropagationPath(prefix + [hop], TERMINAL_OUTPUT))
            return
        if isinstance(user, Detect):
            paths.append(PropagationPath(prefix + [hop], TERMINAL_DETECT))
            return
        if isinstance(user, Ret):
            self._step_return(user, prefix + [hop], paths, visiting)
            return
        if isinstance(user, Call):
            self._step_call(user, operand_index, prefix + [hop], paths,
                            visiting)
            return
        # Everything else (binop, cast, cmp, select, gep, load) propagates
        # through its result register.
        self._walk(user, prefix + [hop], paths, visiting)

    def _step_return(self, ret: Ret, prefix: list, paths: list,
                     visiting: set) -> None:
        function = ret.parent.parent
        if function.name == "main" or function.name not in self._call_sites:
            paths.append(PropagationPath(prefix, TERMINAL_RET))
            return
        for call in self._call_sites[function.name]:
            self._walk(call, prefix, paths, visiting)

    def _step_call(self, call: Call, operand_index: int, prefix: list,
                   paths: list, visiting: set) -> None:
        if call.callee in self.module.functions:
            callee = self.module.functions[call.callee]
            argument: Argument = callee.args[operand_index]
            self._walk(argument, prefix, paths, visiting)
            return
        # Intrinsic: assume the corrupted argument flows to the result.
        self._walk(call, prefix, paths, visiting)


def paths_from_instruction(module: Module, instruction: Instruction,
                           max_paths: int = 128,
                           max_depth: int = 64) -> list[PropagationPath]:
    """Convenience wrapper: paths of a fault in an instruction's result."""
    if not instruction.has_result:
        return []
    enumerator = PathEnumerator(module, max_paths, max_depth)
    return enumerator.paths_from(instruction)


def sequence_of(instruction: Instruction) -> list[Instruction]:
    """The *intra-block single-use* data-dependent sequence, for display.

    Follows single users within one function until fan-out or a terminal;
    mirrors the "static data-dependent instruction sequence" of Fig. 2b.
    """
    sequence = [instruction]
    current: Value = instruction
    while True:
        users = [u for u in current.users if isinstance(u, Instruction)]
        if len(users) != 1:
            return sequence
        user = users[0]
        sequence.append(user)
        if isinstance(user, (Store, Branch, Output, Ret, Detect)):
            return sequence
        current = user


def function_of(instruction: Instruction) -> Function:
    """The function containing an instruction."""
    return instruction.parent.parent
