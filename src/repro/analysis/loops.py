"""Natural loop detection and loop-terminating branch classification.

The control-flow sub-model (fc) needs to know, for every conditional
branch, whether it is Loop-Terminating (LT: its condition decides whether
a loop iterates again) or Non-Loop-Terminating (NLT) — Sec. IV-D of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch
from .cfg import predecessor_map
from .dominators import compute_dominators


@dataclass
class Loop:
    """A natural loop: header plus the body of its back edges."""

    header: BasicBlock
    blocks: set[BasicBlock] = field(default_factory=set)
    latches: set[BasicBlock] = field(default_factory=set)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def exit_edges(self) -> list[tuple[BasicBlock, BasicBlock]]:
        """CFG edges leaving the loop."""
        edges = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks:
                    edges.append((block, succ))
        return edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


def find_back_edges(function: Function) -> list[tuple[BasicBlock, BasicBlock]]:
    """Edges (latch -> header) where the header dominates the latch."""
    dominators = compute_dominators(function)
    back_edges = []
    for block in function.blocks:
        for succ in block.successors:
            if succ in dominators.get(block, set()):
                back_edges.append((block, succ))
    return back_edges


def find_natural_loops(function: Function) -> list[Loop]:
    """All natural loops; loops sharing a header are merged."""
    preds = predecessor_map(function)
    loops: dict[BasicBlock, Loop] = {}
    for latch, header in find_back_edges(function):
        loop = loops.setdefault(header, Loop(header, {header}))
        loop.latches.add(latch)
        # Blocks that reach the latch without passing through the header.
        worklist = [latch]
        while worklist:
            block = worklist.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            worklist.extend(preds[block])
    return list(loops.values())


class LoopInfo:
    """Per-function loop facts, including branch classification."""

    def __init__(self, function: Function):
        self.function = function
        self.loops = find_natural_loops(function)

    def innermost_loop_of(self, block: BasicBlock) -> Loop | None:
        """Smallest loop containing the block, if any."""
        candidates = [loop for loop in self.loops if loop.contains(block)]
        if not candidates:
            return None
        return min(candidates, key=lambda loop: len(loop.blocks))

    def is_loop_terminating(self, branch: Branch) -> bool:
        """Is this conditional branch loop-terminating (LT)?

        A branch is LT when it sits in a loop and exactly one of its
        directions leaves that loop — the branch condition decides whether
        the loop keeps iterating.
        """
        if not branch.is_conditional:
            return False
        block = branch.parent
        loop = self.innermost_loop_of(block)
        if loop is None:
            return False
        in_loop = [loop.contains(target) for target in branch.targets]
        return in_loop.count(False) == 1

    def continue_direction(self, branch: Branch) -> bool | None:
        """For an LT branch, which direction (True/False) stays in the loop.

        Returns None for branches that are not loop-terminating.
        """
        if not self.is_loop_terminating(branch):
            return None
        loop = self.innermost_loop_of(branch.parent)
        return loop.contains(branch.true_block)
