"""Static analyses over the mini-IR: CFG, dominance, loops, control
dependence, and def-use propagation paths."""

from .cfg import (
    exit_blocks,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
)
from .controldep import ControlDep, ControlDependence
from .ddg import (
    TERMINAL_BRANCH,
    TERMINAL_DEAD,
    TERMINAL_DETECT,
    TERMINAL_OUTPUT,
    TERMINAL_RET,
    TERMINAL_STORE,
    TERMINAL_STORE_ADDR,
    TERMINAL_TRUNCATED,
    PathEnumerator,
    PropagationPath,
    paths_from_instruction,
    sequence_of,
)
from .dominators import (
    VIRTUAL_EXIT,
    compute_dominators,
    compute_postdominators,
    dominates,
    immediate_dominators,
    postdominators,
)
from .loops import Loop, LoopInfo, find_back_edges, find_natural_loops

__all__ = [
    "ControlDep", "ControlDependence", "Loop", "LoopInfo", "PathEnumerator",
    "PropagationPath", "TERMINAL_BRANCH", "TERMINAL_DEAD", "TERMINAL_DETECT",
    "TERMINAL_OUTPUT", "TERMINAL_RET", "TERMINAL_STORE",
    "TERMINAL_STORE_ADDR", "TERMINAL_TRUNCATED", "VIRTUAL_EXIT",
    "compute_dominators", "compute_postdominators", "dominates",
    "exit_blocks", "find_back_edges", "find_natural_loops",
    "immediate_dominators", "paths_from_instruction", "postdominators",
    "predecessor_map", "reachable_blocks", "reverse_postorder",
    "sequence_of",
]
