#!/usr/bin/env python
"""Differential CI checks for the caching and checkpointing layers.

Three phases, selectable with ``--only`` (default: all):

1. **fig5 replay** — run fig5 against an empty artifact cache (cold),
   then again in the same process (warm).  The warm run must render
   bit-identically and beat the cold run by the speedup threshold:
   profiles, FI campaign counts, and per-function model results are all
   served from the caches instead of recomputed.

2. **one-function edit** — duplicate a few instructions inside one
   function of hercules (``laplacian``), re-profile, then re-model both
   warm (shared query stores populated by the pre-edit build) and cold.
   The per-instruction SDC maps must agree bit-for-bit, intra-function
   queries of untouched functions must show zero misses, and the warm
   re-model must beat the cold rebuild by the re-model threshold.

3. **fi-checkpoint** — run the same FI campaign cold (full runs) and
   checkpointed (golden-prefix snapshots, suffix-only trials) on two
   benchmarks with different outcome mixes.  Counts must be
   bit-identical, trials must actually skip prefix work, and the
   checkpointed campaign must hit the speedup threshold.

4. **interp-codegen** — golden runs on every registered benchmark and
   FI campaigns on two of them, closure tier vs codegen tier.  Outcomes,
   outputs, block counts and campaign counts must be bit-identical, no
   function may fall back, and codegen must hit the golden-run speedup
   threshold (plus a measurable campaign speedup on top of
   checkpointing).

5. **batch-tier** — FI campaigns on every registered benchmark, batch
   tier vs codegen tier.  Campaign counts must be bit-identical at 1,
   8 and 64 lanes with no scalar fallbacks, lanes must actually peel
   (divergences observed), and 1000-run cold campaigns on the
   compute-dense subset (hotspot, sad, blackscholes, lulesh) must beat
   codegen by the geomean speedup threshold.  Requires numpy (skipped
   with a notice when absent — the tier then degrades to codegen).

Exits non-zero with a one-line reason on the first failed check.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.bench import BENCHMARK_NAMES, build_module
from repro.cache.disk import configure_cache
from repro.core.simple_models import create_model
from repro.fi import FaultInjector
from repro.harness.context import QUICK, Workspace
from repro.harness.fig5 import run_fig5
from repro.interp import TIER_CLOSURE, TIER_CODEGEN, ExecutionEngine
from repro.profiling import ProfilingInterpreter
from repro.protection.duplication import (
    duplicable_iids,
    duplicate_instructions,
)
from repro.query import reset_query_stores


def check(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"FAIL: {message}")
    print(f"ok: {message}")


def fig5_replay(speedup: float) -> None:
    started = time.perf_counter()
    cold = run_fig5(Workspace(QUICK)).render()
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_fig5(Workspace(QUICK)).render()
    warm_seconds = time.perf_counter() - started

    check(warm == cold, "fig5 warm rerun renders bit-identically")
    check(
        warm_seconds * speedup <= cold_seconds,
        f"fig5 warm {warm_seconds:.2f}s is >={speedup:g}x faster than "
        f"cold {cold_seconds:.2f}s",
    )


def one_function_edit(speedup: float) -> None:
    reset_query_stores()
    module = build_module("hercules", "small")
    profile, _ = ProfilingInterpreter(module).run()
    create_model("trident", module, profile, warm=False,
                 shared=True).sdc_map()

    duplicable = set(duplicable_iids(module))
    helper_iids = [
        inst.iid
        for inst in module.functions["laplacian"].instructions()
        if inst.iid in duplicable
    ]
    protected, report = duplicate_instructions(module, helper_iids[:3])
    check(
        report.touched_functions == {"laplacian"},
        "duplication touched exactly one function",
    )
    pprofile, _ = ProfilingInterpreter(protected).run()

    started = time.perf_counter()
    cold_model = create_model("trident", protected, pprofile,
                              warm=False, shared=False)
    cold_map = cold_model.sdc_map()
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm_model = create_model("trident", protected, pprofile,
                              warm=False, shared=True)
    warm_map = warm_model.sdc_map()
    warm_seconds = time.perf_counter() - started

    check(warm_map == cold_map,
          "incremental re-model bit-identical to cold rebuild")
    for name in set(protected.functions) - report.touched_functions:
        for query in ("model.tuples", "model.fc"):
            misses = warm_model.queries.view(query, name).misses
            check(
                misses == 0,
                f"{query} for untouched {name} served from cache",
            )
    check(
        warm_seconds * speedup <= cold_seconds,
        f"re-model warm {warm_seconds:.3f}s is >={speedup:g}x faster "
        f"than cold {cold_seconds:.3f}s",
    )


def fi_checkpoint(speedup: float, runs: int) -> None:
    """Cold vs checkpointed campaigns: identical counts, faster clock."""
    speedups = []
    for name in ("pathfinder", "hotspot"):
        module = build_module(name, "test")
        cold = FaultInjector(module, checkpoint=False)
        started = time.perf_counter()
        cold_result = cold.run_span(0, runs, 1)
        cold_seconds = time.perf_counter() - started

        warm = FaultInjector(module, checkpoint=True)
        started = time.perf_counter()
        warm_result = warm.run_span(0, runs, 1)
        warm_seconds = time.perf_counter() - started

        check(
            warm_result.counts == cold_result.counts,
            f"{name}: checkpointed counts bit-identical to cold runs",
        )
        check(
            warm_result.checkpointed
            and not warm_result.checkpoint_degraded,
            f"{name}: campaign actually ran checkpointed",
        )
        check(
            warm_result.skipped_instructions > 0,
            f"{name}: trials skipped prefix work "
            f"({warm_result.skipped_instructions:,} dynamic instructions)",
        )
        speedups.append(cold_seconds / warm_seconds)
        print(f"   {name}: cold {cold_seconds:.2f}s, checkpointed "
              f"{warm_seconds:.2f}s ({speedups[-1]:.2f}x)")
    check(
        max(speedups) >= speedup,
        f"checkpointing is >={speedup:g}x faster on some benchmark "
        f"(best {max(speedups):.2f}x)",
    )


def _best_golden_seconds(engine: ExecutionEngine, repeats: int = 5) -> float:
    """Best-of-N golden-run wall clock (min is the stable estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return best


def interp_codegen(speedup: float, runs: int) -> None:
    """Closure vs codegen tiers: identical results, faster clock."""
    golden_speedups = []
    for name in BENCHMARK_NAMES:
        module = build_module(name, "test")
        closure = ExecutionEngine(module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(module, tier=TIER_CODEGEN)
        check(
            codegen.codegen_fallbacks == 0,
            f"{name}: all {codegen.codegen_functions} functions compiled",
        )
        left, right = closure.run(), codegen.run()
        check(
            left.outcome == right.outcome
            and left.outputs == right.outputs
            and left.block_counts == right.block_counts
            and left.dynamic_count == right.dynamic_count,
            f"{name}: codegen golden run bit-identical to closure",
        )
        closure_seconds = _best_golden_seconds(closure)
        codegen_seconds = _best_golden_seconds(codegen)
        golden_speedups.append(closure_seconds / codegen_seconds)
        print(f"   {name}: closure {closure_seconds * 1e3:.2f}ms, "
              f"codegen {codegen_seconds * 1e3:.2f}ms "
              f"({golden_speedups[-1]:.2f}x)")
    check(
        max(golden_speedups) >= speedup,
        f"codegen golden runs are >={speedup:g}x faster on some benchmark "
        f"(best {max(golden_speedups):.2f}x)",
    )

    campaign_speedups = []
    for name in ("pathfinder", "hotspot"):
        module = build_module(name, "test")
        closure = FaultInjector(module, interp_tier=TIER_CLOSURE)
        started = time.perf_counter()
        closure_result = closure.run_span(0, runs, 1)
        closure_seconds = time.perf_counter() - started

        codegen = FaultInjector(module, interp_tier=TIER_CODEGEN)
        started = time.perf_counter()
        codegen_result = codegen.run_span(0, runs, 1)
        codegen_seconds = time.perf_counter() - started

        check(
            codegen_result.counts == closure_result.counts,
            f"{name}: codegen campaign counts bit-identical to closure",
        )
        check(
            codegen_result.checkpointed and closure_result.checkpointed,
            f"{name}: both campaigns ran checkpointed",
        )
        check(
            codegen_result.codegen_fallbacks == 0,
            f"{name}: campaign engine had no codegen fallbacks",
        )
        campaign_speedups.append(closure_seconds / codegen_seconds)
        print(f"   {name}: closure {closure_seconds:.2f}s, codegen "
              f"{codegen_seconds:.2f}s ({campaign_speedups[-1]:.2f}x)")
    check(
        max(campaign_speedups) > 1.1,
        f"codegen campaigns are measurably faster on top of checkpointing "
        f"(best {max(campaign_speedups):.2f}x)",
    )


#: Benchmarks dense enough in straight-line arithmetic for lockstep
#: execution to amortize its per-block dispatch; branch-dominated
#: programs (pathfinder, libquantum) lean on SIMT reconvergence to stay
#: in lockstep and are tracked by the nightly benchmark rather than the
#: CI gate.
BATCH_SPEED_BENCHMARKS = ("hotspot", "sad", "blackscholes", "lulesh")
BATCH_LANE_COUNTS = (1, 8, 64)


def batch_tier(speedup: float, runs: int) -> None:
    """Batch tier vs codegen: identical counts at every lane count and
    in both divergence modes (park-and-remerge and peel-and-drain),
    faster cold campaigns where there is compute to amortize."""
    import os

    from repro.interp import TIER_BATCH
    from repro.interp.batch import HAVE_NUMPY

    if not HAVE_NUMPY:
        print("   numpy not installed: batch tier degrades to codegen "
              "execution; nothing to differentiate")
        return

    reconverged = 0
    divergences = 0
    for name in BENCHMARK_NAMES:
        module = build_module(name, "test")
        reference = FaultInjector(
            module, interp_tier=TIER_CODEGEN
        ).campaign(120, seed=5)
        for mode in ("1", "0"):
            os.environ["REPRO_BATCH_RECONVERGE"] = mode
            try:
                for lanes in BATCH_LANE_COUNTS:
                    # A fresh injector per (mode, lanes): the runner
                    # reads the mode flag at construction.
                    result = FaultInjector(
                        module, interp_tier=TIER_BATCH, batch_lanes=lanes
                    ).campaign(120, seed=5)
                    check(
                        result.counts == reference.counts,
                        f"{name}: batch campaign counts bit-identical to "
                        f"codegen at {lanes} lanes "
                        f"(reconvergence {'on' if mode == '1' else 'off'})",
                    )
                    check(
                        result.batch_fallbacks == 0,
                        f"{name}: no groups fell back to scalar execution",
                    )
                    if mode == "1":
                        reconverged += result.batch_reconverged
                    else:
                        divergences += result.batch_divergences
            finally:
                del os.environ["REPRO_BATCH_RECONVERGE"]
    check(
        reconverged > 0,
        f"multi-lane groups exercised park-and-remerge "
        f"({reconverged:,} branches re-merged)",
    )
    check(
        divergences > 0,
        f"multi-lane groups exercised the peel-and-drain path "
        f"({divergences:,} divergences)",
    )

    speedups = []
    for name in BATCH_SPEED_BENCHMARKS:
        module = build_module(name, "test")
        # Best-of-two per tier: the gate below compares a ratio of wall
        # times, and a single cold shot on a loaded runner can swing it
        # by tens of percent.
        codegen_seconds = batch_seconds = None
        for _ in range(2):
            codegen = FaultInjector(
                module, interp_tier=TIER_CODEGEN, checkpoint=False
            )
            started = time.perf_counter()
            codegen_result = codegen.run_span(0, runs, 1)
            elapsed = time.perf_counter() - started
            if codegen_seconds is None or elapsed < codegen_seconds:
                codegen_seconds = elapsed

            batch = FaultInjector(
                module, interp_tier=TIER_BATCH, checkpoint=False,
                batch_lanes=64,
            )
            started = time.perf_counter()
            batch_result = batch.run_span(0, runs, 1)
            elapsed = time.perf_counter() - started
            if batch_seconds is None or elapsed < batch_seconds:
                batch_seconds = elapsed

            check(
                batch_result.counts == codegen_result.counts,
                f"{name}: 64-lane cold campaign counts bit-identical",
            )
        speedups.append(codegen_seconds / batch_seconds)
        print(f"   {name}: codegen {codegen_seconds:.2f}s, batch "
              f"{batch_seconds:.2f}s ({speedups[-1]:.2f}x)")
    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)
    check(
        geomean >= speedup,
        f"batch campaigns are >={speedup:g}x faster (geomean) on the "
        f"compute-dense subset (got {geomean:.2f}x)",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache root (default: a fresh temp dir, so the "
             "cold half of the differential is actually cold)",
    )
    parser.add_argument(
        "--only", action="append",
        choices=("fig5", "remodel", "fi-checkpoint", "interp-codegen",
                 "batch-tier"),
        default=None,
        help="run only the named phase (repeatable; default: all)",
    )
    parser.add_argument("--fig5-speedup", type=float, default=2.0)
    parser.add_argument("--remodel-speedup", type=float, default=2.0)
    parser.add_argument("--fi-checkpoint-speedup", type=float, default=2.0)
    parser.add_argument("--fi-checkpoint-runs", type=int, default=1000)
    parser.add_argument("--interp-codegen-speedup", type=float, default=2.0)
    parser.add_argument("--interp-campaign-runs", type=int, default=600)
    parser.add_argument("--batch-tier-speedup", type=float, default=2.5)
    parser.add_argument("--batch-campaign-runs", type=int, default=1000)
    args = parser.parse_args()

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-diff-")
    configure_cache(cache_dir)
    print(f"artifact cache: {cache_dir}")

    phases = args.only or ["fig5", "remodel", "fi-checkpoint",
                           "interp-codegen", "batch-tier"]
    if "fig5" in phases:
        fig5_replay(args.fig5_speedup)
    if "remodel" in phases:
        one_function_edit(args.remodel_speedup)
    if "fi-checkpoint" in phases:
        fi_checkpoint(args.fi_checkpoint_speedup, args.fi_checkpoint_runs)
    if "interp-codegen" in phases:
        interp_codegen(args.interp_codegen_speedup,
                       args.interp_campaign_runs)
    if "batch-tier" in phases:
        batch_tier(args.batch_tier_speedup, args.batch_campaign_runs)
    print("differential check passed")


if __name__ == "__main__":
    main()
