#!/usr/bin/env python
"""Service-mode differential CI checks for the campaign daemon.

Two phases, selectable with ``--only`` (default: all):

1. **cold-shards** — start a fresh daemon on an empty result store and
   submit the same campaign over HTTP with 1 and 4 workers.  Both
   responses must carry counts bit-identical to an in-process serial
   reference run: sharding a campaign across a worker pool behind the
   service must be invisible in the results.

2. **store-replay** — run ``repro inject`` (the one-shot CLI) against a
   shared result store, then start a daemon on that store and submit
   the same spec twice.  Both submits must be admission-time store hits
   (``cached``, zero trials executed) returning the CLI run's counts
   bit-for-bit, and the daemon's ``/v1/stats`` must expose the
   scheduler and store counters the nightly job tracks.

The daemon runs as a real subprocess (stderr → ``service-daemon.log``,
uploaded by CI on failure) listening on an ephemeral port published
through ``--port-file``.  Exits non-zero with a one-line reason on the
first failed check.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.bench import build_module
from repro.fi.campaign import FaultInjector

BENCH = "pathfinder"
SCALE = "test"
LOG_PATH = Path("service-daemon.log")


def check(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"FAIL: {message}")
    print(f"ok: {message}")


class Daemon:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, cache_dir: str, workers: int = 1):
        self._port_file = Path(tempfile.mkstemp(suffix=".port")[1])
        self._port_file.unlink()
        self._log = LOG_PATH.open("a", encoding="utf-8")
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", str(workers),
             "--port-file", str(self._port_file)],
            env=env, stdout=self._log, stderr=self._log,
        )
        deadline = time.monotonic() + 60.0
        while not self._port_file.exists():
            if self.process.poll() is not None:
                sys.exit(f"FAIL: daemon exited with "
                         f"{self.process.returncode} before listening "
                         f"(see {LOG_PATH})")
            if time.monotonic() > deadline:
                self.process.terminate()
                sys.exit(f"FAIL: daemon did not publish a port within "
                         f"60s (see {LOG_PATH})")
            time.sleep(0.05)
        self.port = int(self._port_file.read_text().strip())

    def client(self):
        from repro.serve import ServiceClient
        return ServiceClient("127.0.0.1", self.port, timeout=600.0)

    def stop(self) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
        self._log.close()
        self._port_file.unlink(missing_ok=True)


def payload(runs: int, seed: int, workers: int) -> dict:
    return {"benchmark": BENCH, "scale": SCALE, "runs": runs,
            "seed": seed, "workers": workers}


def serial_reference(runs: int, seed: int) -> dict:
    """In-process serial counts: the ground truth both phases gate on."""
    return FaultInjector(build_module(BENCH, SCALE)).campaign(
        runs, seed=seed
    ).counts


def cold_shards(runs: int, seed: int) -> None:
    serial = serial_reference(runs, seed)
    for workers in (1, 4):
        with tempfile.TemporaryDirectory() as cache_dir:
            daemon = Daemon(cache_dir, workers=workers)
            try:
                job = daemon.client().submit(
                    payload(runs, seed, workers), wait=True
                )
            finally:
                daemon.stop()
            check(job["status"] == "done",
                  f"cold submit completed with {workers} workers")
            check(not job["cached"],
                  f"cold submit actually executed ({workers} workers)")
            check(job["result"]["counts"] == serial,
                  f"service counts with {workers} workers are "
                  f"bit-identical to the serial CLI reference")


def store_replay(runs: int, seed: int, bench_json: str | None) -> None:
    serial = serial_reference(runs, seed)
    with tempfile.TemporaryDirectory() as cache_dir:
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        started = time.perf_counter()
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "inject", BENCH,
             "--scale", SCALE, "--runs", str(runs), "--seed", str(seed)],
            env=env, capture_output=True, text=True,
        )
        cli_seconds = time.perf_counter() - started
        check(cli.returncode == 0,
              f"repro inject computed the campaign "
              f"({cli_seconds:.1f}s)")

        daemon = Daemon(cache_dir)
        try:
            client = daemon.client()
            replays = []
            for attempt in (1, 2):
                started = time.perf_counter()
                job = client.submit(payload(runs, seed, 1), wait=True)
                replays.append(time.perf_counter() - started)
                check(job["cached"],
                      f"submit #{attempt} of the CLI-computed campaign "
                      f"is an admission-time store hit "
                      f"({replays[-1] * 1000:.0f}ms)")
                check(job["result"]["from_cache"],
                      f"submit #{attempt} executed zero trials")
                check(job["result"]["counts"] == serial,
                      f"submit #{attempt} returned the CLI counts "
                      f"bit-for-bit")
            stats = client.stats()
        finally:
            daemon.stop()
        check(stats["counters"]["cache_hits"] >= 2,
              "scheduler counted both store hits")
        check(stats["counters"]["completed"] == 0,
              "dispatcher executed no campaign for the replays")
        store = stats["store"]["counters"]
        check("lock_contention" in store and "partial_shards_written"
              in store, "store-level counters exposed via /v1/stats")
        if bench_json:
            Path(bench_json).write_text(json.dumps({
                "benchmark": BENCH, "runs": runs, "seed": seed,
                "cli_seconds": cli_seconds,
                "replay_seconds": replays,
                "scheduler_counters": stats["counters"],
                "store_counters": store,
            }, indent=2, sort_keys=True) + "\n")
            print(f"wrote {bench_json}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", action="append",
                        choices=("cold-shards", "store-replay"),
                        help="run a subset of the phases")
    parser.add_argument("--runs", type=int, default=300)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write service-mode timing/counter facts "
                             "here (nightly: BENCH_service.json)")
    args = parser.parse_args()
    phases = args.only or ["cold-shards", "store-replay"]
    LOG_PATH.write_text("")  # fresh log per invocation
    if "cold-shards" in phases:
        cold_shards(args.runs, args.seed)
    if "store-replay" in phases:
        store_replay(args.runs, args.seed, args.bench_json)
    print("service differential: all checks passed")


if __name__ == "__main__":
    main()
