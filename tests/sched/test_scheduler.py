"""The service scheduler: queueing, coalescing, cache hits, backpressure.

A :class:`Scheduler` that has *not* been started keeps admitted jobs
queued, which makes admission-control behavior deterministic to test:
coalescing attaches duplicate submits to the in-flight job, the bounded
queue rejects at capacity, and a store hit completes without consuming
a queue slot at all.
"""

from __future__ import annotations

import pytest

from repro.fi import FaultInjector
from repro.fi.parallel import run_cached_campaign
from repro.sched import (
    INTERACTIVE,
    NIGHTLY,
    CampaignRequest,
    CampaignSettings,
    JobQueue,
    ModuleSpec,
    QueueFull,
    Scheduler,
    resolve_priority,
)
from tests.conftest import cached_module

BENCH = "pathfinder"


def request(runs=40, seed=21, benchmark=BENCH, **settings) -> CampaignRequest:
    return CampaignRequest(
        spec=ModuleSpec.from_benchmark(benchmark, "test"),
        runs=runs, seed=seed, settings=CampaignSettings(**settings),
    )


@pytest.fixture
def scheduler():
    sched = Scheduler(max_pending=4)
    yield sched
    sched.stop(timeout=5.0)


class TestQueue:
    def test_interactive_overtakes_nightly(self):
        queue = JobQueue(8)
        queue.push("slow", NIGHTLY)
        queue.push("fast", INTERACTIVE)
        assert queue.pop(0) == "fast"
        assert queue.pop(0) == "slow"

    def test_fifo_within_class(self):
        queue = JobQueue(8)
        for item in ("a", "b", "c"):
            queue.push(item, INTERACTIVE)
        assert [queue.pop(0) for _ in range(3)] == ["a", "b", "c"]

    def test_bounded_push_raises(self):
        queue = JobQueue(2)
        queue.push("a")
        queue.push("b")
        with pytest.raises(QueueFull):
            queue.push("c")

    def test_close_wakes_poppers(self):
        queue = JobQueue(2)
        queue.close()
        assert queue.pop(timeout=5.0) is None

    def test_priority_names(self):
        assert resolve_priority("interactive") == INTERACTIVE
        assert resolve_priority("NIGHTLY") == NIGHTLY
        assert resolve_priority(3) == 3
        with pytest.raises(ValueError):
            resolve_priority("urgent")


class TestCoalescing:
    def test_duplicate_submits_share_one_job(self, scheduler):
        first = scheduler.submit(request(seed=31))
        second = scheduler.submit(request(seed=31))
        assert second is first
        assert first.coalesced == 1
        assert scheduler.counters["coalesced"] == 1

    def test_different_configs_do_not_coalesce(self, scheduler):
        a = scheduler.submit(request(seed=32))
        b = scheduler.submit(request(seed=33))
        c = scheduler.submit(request(seed=32, runs=80))
        assert len({a.id, b.id, c.id}) == 3


class TestBackpressure:
    def test_full_queue_rejects_new_requests(self):
        scheduler = Scheduler(max_pending=1)
        scheduler.submit(request(seed=41))
        with pytest.raises(QueueFull):
            scheduler.submit(request(seed=42))
        assert scheduler.counters["rejected"] == 1

    def test_coalesced_requests_bypass_the_full_queue(self):
        scheduler = Scheduler(max_pending=1)
        job = scheduler.submit(request(seed=43))
        # Identical request: attaches to the in-flight job even though
        # the queue has no free slot.
        assert scheduler.submit(request(seed=43)) is job


class TestCacheHit:
    def test_precomputed_campaign_completes_instantly(self, scheduler):
        spec = ModuleSpec.from_benchmark(BENCH, "test")
        computed = run_cached_campaign(50, seed=51, spec=spec)
        job = scheduler.submit(request(runs=50, seed=51))
        assert job.status == "done"
        assert job.cached
        assert job.result.counts == computed.counts
        assert job.result.from_cache
        assert scheduler.counters["cache_hits"] == 1


class TestExecution:
    def test_dispatched_job_matches_serial_counts(self, scheduler):
        serial = FaultInjector(cached_module(BENCH)).campaign(40, seed=61)
        scheduler.start()
        job = scheduler.submit(request(runs=40, seed=61))
        assert job.wait(timeout=120.0)
        assert job.status == "done"
        assert job.result.counts == serial.counts

    def test_failed_job_reports_error(self, scheduler, monkeypatch):
        def boom(*_args, **_kwargs):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(
            "repro.sched.scheduler.run_store_campaign", boom
        )
        scheduler.start()
        job = scheduler.submit(request(runs=10, seed=62))
        assert job.wait(timeout=60.0)
        assert job.status == "failed"
        assert "worker exploded" in job.error
        assert scheduler.counters["failed"] == 1


class TestWireForm:
    def test_from_payload_roundtrip(self):
        req = CampaignRequest.from_payload({
            "benchmark": BENCH, "scale": "test", "runs": 25, "seed": 3,
            "workers": 2, "priority": "nightly",
        })
        assert req.spec.benchmark == BENCH
        assert req.runs == 25
        assert req.settings.workers == 2
        assert req.priority == NIGHTLY

    def test_from_payload_rejects_garbage(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            CampaignRequest.from_payload({"runs": 10})  # no module
        with pytest.raises((TypeError, ValueError)):
            CampaignRequest.from_payload(
                {"benchmark": BENCH, "runs": "many"}
            )
        with pytest.raises(ValueError):
            CampaignRequest.from_payload({"benchmark": BENCH, "runs": 0})
