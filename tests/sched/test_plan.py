"""Shard planning: deterministic, covering, placement-independent."""

from __future__ import annotations

import pytest

from repro.sched import ShardPlan, coalesce_ranges


def flat(plan: ShardPlan) -> list[tuple[int, int]]:
    return [(rng.start, rng.count) for rng in plan]


class TestSplit:
    def test_covers_range_without_overlap(self):
        plan = ShardPlan.split(0, 100, 4)
        assert sum(rng.count for rng in plan) == 100
        offset = 0
        for rng in plan:
            assert rng.start == offset
            offset = rng.stop
        assert offset == 100

    def test_deterministic_for_same_inputs(self):
        a = ShardPlan.split(30, 170, 3, chunk_size=0, lane_multiple=1)
        b = ShardPlan.split(30, 170, 3, chunk_size=0, lane_multiple=1)
        assert flat(a) == flat(b)

    def test_chunk_size_fixes_shard_width(self):
        plan = ShardPlan.split(0, 100, 4, chunk_size=17)
        widths = [rng.count for rng in plan]
        assert widths[:-1] == [17] * (len(widths) - 1)
        assert widths[-1] == 100 - 17 * (len(widths) - 1)

    def test_lane_multiple_rounds_chunk_up(self):
        # 100 runs over 3 shards = 34-run chunks; a 16-lane batch group
        # must not straddle shards, so chunks round up to 48.
        plan = ShardPlan.split(0, 100, 3, lane_multiple=16)
        widths = [rng.count for rng in plan]
        assert widths[:-1] == [48] * (len(widths) - 1)
        assert sum(widths) == 100

    def test_nonzero_start_offsets_every_shard(self):
        plan = ShardPlan.split(600, 40, 2)
        assert flat(plan) == [(600, 20), (620, 20)]

    def test_empty_and_negative(self):
        assert len(ShardPlan.split(0, 0, 4)) == 0
        with pytest.raises(ValueError):
            ShardPlan.split(0, -1, 4)

    def test_indices_are_sequential(self):
        plan = ShardPlan.split(0, 90, 5)
        assert [rng.index for rng in plan] == list(range(len(plan)))


class TestCoalesce:
    def test_merges_contiguous_spans(self):
        assert coalesce_ranges([(0, 10), (10, 10), (30, 5)]) == \
            [(0, 20), (30, 5)]

    def test_order_independent(self):
        shards = [(20, 10), (0, 10), (10, 10)]
        assert coalesce_ranges(shards) == [(0, 30)]

    def test_drops_empty_ranges(self):
        assert coalesce_ranges([(0, 0), (5, 5)]) == [(5, 5)]

    def test_overlaps_fold_into_one_span(self):
        assert coalesce_ranges([(0, 10), (5, 10)]) == [(0, 15)]
