"""Cross-"machine" shard merging: the distributed determinism lock.

The service shards campaign seed ranges across worker processes — and,
via the deterministic seed-substream protocol, across machines.  These
tests emulate the distributed case honestly: each "machine" is an
independent ``run_shard`` invocation on a cold worker cache, fed a
:class:`ShardSpec` that round-tripped through its JSON wire form, with
its :class:`ShardResult` round-tripped back.  Merged counts must be
bit-identical to the serial and local-pool runs, and the Wilson-CI
early-stop decision computed from merged counts must be consistent
regardless of sharding.
"""

from __future__ import annotations

import json

from repro.fi import FaultInjector
from repro.fi.parallel import run_parallel_campaign
from repro.sched import (
    ModuleSpec,
    ShardPlan,
    ShardResult,
    ShardSpec,
    run_shard,
)
from repro.sched import shard as sched_shard
from repro.stats import wilson_confidence
from tests.conftest import cached_module

RUNS = 150
SEED = 9
BENCH = "pathfinder"


def remote_run_shard(monkeypatch, spec: ShardSpec) -> ShardResult:
    """One shard on an emulated remote machine.

    Cold injector cache (a different host shares no process state) and
    JSON wire forms in both directions, exactly as the service protocol
    ships them.
    """
    monkeypatch.setattr(sched_shard, "_WORKER_SPEC", None)
    monkeypatch.setattr(sched_shard, "_WORKER_INJECTOR", None)
    wire_spec = ShardSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    result = run_shard(wire_spec)
    return ShardResult.from_dict(json.loads(json.dumps(result.to_dict())))


def merge_counts(shards) -> dict[str, int]:
    merged: dict[str, int] = {}
    for shard in shards:
        for outcome, n in shard.counts.items():
            merged[outcome] = merged.get(outcome, 0) + n
    return merged


def run_on_machines(monkeypatch, machines: int,
                    runs: int = RUNS, seed: int = SEED) -> dict[str, int]:
    spec = ModuleSpec.from_benchmark(BENCH, "test")
    plan = ShardPlan.split(0, runs, machines)
    assert len(plan) == machines
    shards = [
        remote_run_shard(
            monkeypatch,
            ShardSpec(module=spec, start=rng.start, count=rng.count,
                      seed=seed),
        )
        for rng in plan
    ]
    return merge_counts(shards)


class TestCrossMachineMerge:
    def test_three_machines_match_serial(self, monkeypatch):
        serial = FaultInjector(cached_module(BENCH)).campaign(
            RUNS, seed=SEED
        )
        merged = run_on_machines(monkeypatch, machines=3)
        assert merged == serial.counts

    def test_three_machines_match_local_pool(self, monkeypatch):
        pooled = run_parallel_campaign(
            RUNS, seed=SEED,
            spec=ModuleSpec.from_benchmark(BENCH, "test"), workers=4,
        )
        merged = run_on_machines(monkeypatch, machines=3)
        assert merged == pooled.counts

    def test_machine_count_is_invisible(self, monkeypatch):
        by_two = run_on_machines(monkeypatch, machines=2)
        by_five = run_on_machines(monkeypatch, machines=5)
        assert by_two == by_five

    def test_disjoint_plans_share_no_runs(self):
        plan = ShardPlan.split(0, RUNS, 3)
        covered = []
        for rng in plan:
            covered.extend(range(rng.start, rng.stop))
        assert covered == list(range(RUNS))  # every run exactly once


class TestWilsonConsistency:
    HALFWIDTH = 0.08

    def stop_decision(self, counts: dict[str, int]) -> bool:
        interval = wilson_confidence(counts.get("sdc", 0),
                                     sum(counts.values()))
        return interval.margin <= self.HALFWIDTH

    def test_stop_decision_identical_across_sharding(self, monkeypatch):
        serial = FaultInjector(cached_module(BENCH)).campaign(
            RUNS, seed=SEED
        )
        merged = run_on_machines(monkeypatch, machines=3)
        assert self.stop_decision(merged) == self.stop_decision(
            serial.counts
        )

    def early_stop_campaign(self, workers: int):
        # A pinned round size makes the stopping rule check the same
        # merged prefixes regardless of worker count, so the stopped
        # total — not just the decision — must agree bit-for-bit.
        return run_parallel_campaign(
            400, seed=SEED,
            spec=ModuleSpec.from_benchmark(BENCH, "test"),
            workers=workers, ci_halfwidth=self.HALFWIDTH,
            round_size=50, min_runs=50,
        )

    def test_early_stop_campaigns_agree(self):
        serial = self.early_stop_campaign(workers=1)
        sharded = self.early_stop_campaign(workers=3)
        assert sharded.counts == serial.counts
        assert sharded.total == serial.total
        assert sharded.stopped_early == serial.stopped_early
        assert serial.stopped_early  # the rule fires well before 400
