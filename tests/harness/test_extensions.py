"""Harness extension studies: ablations, input sensitivity, opt levels.

Scaled to two benchmarks and small sample counts so the unit suite
stays fast; the full-size versions run under ``pytest benchmarks/``.
"""

import pytest

from repro.harness import ExperimentConfig, Workspace
from repro.harness.ablations import ABLATIONS, run_ablations
from repro.harness.inputs import run_input_sensitivity
from repro.harness.optlevels import run_optlevels

TINY = ExperimentConfig(
    scale="test", fi_samples=120, model_samples=120,
    benchmarks=("pathfinder", "hotspot"),
)


@pytest.fixture(scope="module")
def workspace():
    return Workspace(TINY)


class TestAblations:
    def test_all_variants_evaluated(self, workspace):
        result = run_ablations(workspace)
        assert set(result.predictions) == set(ABLATIONS)
        for variant in ABLATIONS:
            assert set(result.predictions[variant]) == set(
                TINY.benchmarks
            )
            assert 0.0 <= result.mean_absolute_errors[variant] <= 1.0
        assert 0.0 <= result.crash_mae <= 1.0
        assert "Ablations" in result.render()

    def test_store_addr_extension_raises_predictions(self, workspace):
        result = run_ablations(workspace)
        for bench in TINY.benchmarks:
            assert (result.predictions["store-addr-sdc"][bench]
                    >= result.predictions["full"][bench] - 1e-9)


class TestInputSensitivity:
    def test_structure(self, workspace):
        result = run_input_sensitivity(workspace, inputs=2)
        assert result.inputs == 2
        assert len(result.rows) == 2
        for row in result.rows:
            assert len(row.fi_by_input) == 2
            assert len(row.model_by_input) == 2
            assert 0.0 <= row.fi_spread <= 1.0
            assert 0.0 <= row.per_input_mae <= 1.0
        assert "Input sensitivity" in result.render()


class TestOptLevels:
    def test_structure(self, workspace):
        result = run_optlevels(workspace)
        for row in result.rows:
            assert row.dynamic_counts[2] < row.dynamic_counts[0]
            assert row.promoted > 0
            for level in (0, 2):
                assert 0.0 <= row.fi_sdc[level] <= 1.0
                assert 0.0 <= row.model_sdc[level] <= 1.0
        assert "Optimization levels" in result.render()
