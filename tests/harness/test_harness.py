"""The experiment harness: every table/figure runner produces sound
results on a scaled-down configuration."""

import pytest

from repro.harness import (
    ExperimentConfig,
    Workspace,
    run_experiment,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig9,
    run_table1,
    run_table2,
)

TINY = ExperimentConfig(
    scale="test", fi_samples=150, model_samples=150,
    per_instruction_runs=15, max_instructions=25,
    protection_fi_samples=150,
    benchmarks=("pathfinder", "bfs_rodinia"),
)


@pytest.fixture(scope="module")
def workspace():
    return Workspace(TINY)


class TestTable1:
    def test_rows_and_render(self, workspace):
        result = run_table1(workspace)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.static_instructions > 0
            assert row.dynamic_instructions > row.static_instructions
        text = result.render()
        assert "pathfinder" in text
        assert "Rodinia" in text


class TestFig5:
    def test_structure(self, workspace):
        result = run_fig5(workspace)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.0 <= row.fi_sdc <= 1.0
            assert set(row.predictions) == {"trident", "fs+fc", "fs"}
        assert 0.0 <= result.trident_vs_fi_p_value <= 1.0
        assert result.mean_absolute_errors["trident"] >= 0.0

    def test_fs_fc_over_predicts(self, workspace):
        result = run_fig5(workspace)
        assert result.means["fs+fc"] > result.means["trident"]

    def test_render(self, workspace):
        text = run_fig5(workspace).render()
        assert "paired t-test" in text
        assert "%" in text


class TestTable2:
    def test_structure(self, workspace):
        result = run_table2(workspace)
        assert len(result.rows) == 2
        for row in result.rows:
            for p_value in row.p_values.values():
                assert 0.0 <= p_value <= 1.0
        for count in result.rejections.values():
            assert 0 <= count <= 2
        assert "p-values" in result.render()


class TestFig6:
    def test_scalability_shapes(self, workspace):
        result = run_fig6(workspace)
        fi = result.series_a.fi_seconds
        trident = result.series_a.trident_seconds
        # FI grows linearly with samples...
        assert fi[-1] > fi[0] * 5
        # ...TRIDENT is nearly flat (well under proportional growth).
        assert trident[-1] < trident[0] * 4
        # At the paper's 3000-sample point FI is already slower.
        index_3000 = result.series_a.samples.index(3000)
        assert fi[index_3000] > trident[index_3000]

    def test_per_instruction_projection(self, workspace):
        result = run_fig6(workspace)
        fi100 = result.series_b.fi_seconds[100]
        fi1000 = result.series_b.fi_seconds[1000]
        assert all(b == pytest.approx(a * 10) for a, b in zip(fi100, fi1000))
        assert "Figure 6" in result.render()


class TestFig7:
    def test_structure(self, workspace):
        result = run_fig7(workspace)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.fi100_seconds > row.trident_seconds
            assert 0.0 <= row.pruned_fraction <= 1.0
        assert 0.0 < result.average_pruned_fraction <= 1.0


class TestFig9:
    def test_ordering(self, workspace):
        result = run_fig9(workspace)
        for row in result.rows:
            assert row.predictions["pvf"] >= row.predictions["epvf"] - 0.05
        maes = result.mean_absolute_errors
        assert maes["pvf"] > maes["trident"]
        assert maes["epvf"] >= maes["trident"] - 0.05


class TestRunner:
    def test_unknown_experiment(self, workspace):
        with pytest.raises(KeyError):
            run_experiment("fig42", workspace)

    def test_experiment_by_name(self, workspace):
        result = run_experiment("table1", workspace)
        assert result.rows
