"""Statistics: paired t-test (validated against scipy) and intervals."""

import math
import random

import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    binomial_confidence,
    mean_absolute_error,
    paired_t_test,
    regularized_incomplete_beta,
    samples_for_margin,
    student_t_two_sided_p,
)


class TestPairedTTest:
    def test_matches_scipy(self):
        rng = random.Random(0)
        a = [rng.random() for _ in range(20)]
        b = [x + rng.gauss(0.01, 0.05) for x in a]
        ours = paired_t_test(a, b)
        scipy_result = scipy.stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(scipy_result.statistic,
                                               rel=1e-9)
        assert ours.p_value == pytest.approx(scipy_result.pvalue, rel=1e-6)

    def test_identical_samples_p_one(self):
        result = paired_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == 1.0
        assert not result.rejects_null()

    def test_constant_shift_p_zero(self):
        result = paired_t_test([1.0, 2.0, 3.0], [2.0, 3.0, 4.0])
        assert result.p_value == 0.0
        assert result.rejects_null()

    def test_clearly_different_samples_reject(self):
        rng = random.Random(1)
        a = [rng.random() for _ in range(30)]
        b = [x + 0.5 + rng.gauss(0, 0.01) for x in a]
        assert paired_t_test(a, b).rejects_null()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])

    @given(st.lists(st.floats(-10, 10), min_size=3, max_size=40),
           st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_p_value_in_unit_interval_and_matches_scipy(self, a, seed):
        rng = random.Random(seed)
        b = [x + rng.gauss(0, 1) for x in a]
        result = paired_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0
        reference = scipy.stats.ttest_rel(a, b)
        if not math.isnan(reference.pvalue):
            assert result.p_value == pytest.approx(reference.pvalue,
                                                   abs=1e-6)

    def test_symmetry(self):
        a = [1.0, 2.5, 3.0, 4.5]
        b = [1.5, 2.0, 3.5, 4.0]
        assert paired_t_test(a, b).p_value == pytest.approx(
            paired_t_test(b, a).p_value
        )


class TestDistributions:
    @pytest.mark.parametrize("t,dof", [
        (0.0, 5), (1.0, 10), (2.5, 3), (-1.5, 30), (4.0, 100),
    ])
    def test_t_cdf_matches_scipy(self, t, dof):
        ours = student_t_two_sided_p(t, dof)
        reference = 2 * scipy.stats.t.sf(abs(t), dof)
        assert ours == pytest.approx(reference, rel=1e-8)

    def test_incomplete_beta_bounds(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    @given(st.floats(0.5, 20), st.floats(0.5, 20), st.floats(0.001, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_incomplete_beta_matches_scipy(self, a, b, x):
        ours = regularized_incomplete_beta(a, b, x)
        reference = scipy.stats.beta.cdf(x, a, b)
        assert ours == pytest.approx(reference, abs=1e-8)


class TestConfidence:
    def test_known_margin(self):
        interval = binomial_confidence(50, 100)
        assert interval.probability == 0.5
        assert interval.margin == pytest.approx(1.96 * 0.05, rel=1e-2)

    def test_contains(self):
        interval = binomial_confidence(50, 100)
        assert interval.contains(0.5)
        assert not interval.contains(0.9)

    def test_empty(self):
        interval = binomial_confidence(0, 0)
        assert interval.probability == 0.0

    def test_paper_error_bar_range(self):
        """With 3000 samples the paper reports ±0.07%..±1.76%; our
        margin at p=0.13 and n=3000 must land inside that band."""
        interval = binomial_confidence(int(0.13 * 3000), 3000)
        assert 0.0007 <= interval.margin <= 0.0176

    def test_samples_for_margin(self):
        n = samples_for_margin(0.02)
        assert 2300 <= n <= 2500  # 1.96^2*0.25/0.0004

    def test_samples_for_margin_validation(self):
        with pytest.raises(ValueError):
            samples_for_margin(0.0)


class TestMae:
    def test_basic(self):
        assert mean_absolute_error([1.0, 2.0], [1.5, 1.5]) == 0.5

    def test_zero_for_identical(self):
        assert mean_absolute_error([0.3, 0.4], [0.3, 0.4]) == 0.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [])
