"""Shared fixtures: hand-built modules and cached benchmark artifacts."""

from __future__ import annotations

import os

import pytest

from repro.bench import BENCHMARK_NAMES, build_module
from repro.cache import CACHE_DIR_ENV, configure_cache
from repro.interp import ExecutionEngine
from repro.ir import F64, I32, FunctionBuilder, Module
from repro.profiling import ProfilingInterpreter


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_cache(tmp_path_factory):
    """Point the artifact cache at a per-session temp dir.

    Keeps the suite hermetic by default: tests never read a stale
    ``.repro-cache/`` from the working directory and never leave one
    behind, while cache code paths (including worker processes, which
    inherit the process global by fork) still run for real.  Setting
    $REPRO_CACHE_DIR opts into a persistent cache — CI restores one
    across runs (keys are content-addressed, so stale entries are
    unreachable rather than wrong).
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    root = previous or str(tmp_path_factory.mktemp("repro-cache"))
    os.environ[CACHE_DIR_ENV] = root
    configure_cache(root)
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    configure_cache(None)


def build_accumulator_module(n: int = 16) -> Module:
    """init-loop writes an array; a second loop sums elements > 5.

    The structure of the paper's running example (Fig. 2a): an init()
    style loop, a run() style loop, a data-dependent branch, and both
    integer and float output.
    """
    module = Module("accumulator")
    f = FunctionBuilder(module, "main")
    acc = f.local("acc", I32, init=0)
    arr = f.array("arr", I32, n)
    f.for_range(0, n, lambda i: arr.__setitem__(i, i * 2 + 1))

    def body(i):
        f.if_(arr[i] > 5, lambda: acc.set(acc.get() + arr[i]))

    f.for_range(0, n, body)
    x = f.local("x", F64, init=0.5)
    x.set(x.get() * 3.0 + 1.0)
    f.out(acc.get())
    f.out(x.get(), precision=3)
    f.done()
    return module.finalize()


def build_straightline_module() -> Module:
    """A tiny straight-line program (no loops, one output)."""
    module = Module("straightline")
    f = FunctionBuilder(module, "main")
    a = f.local("a", I32, init=7)
    b = f.local("b", I32, init=9)
    c = a.get() * b.get() + 1
    f.out(c)
    f.done()
    return module.finalize()


@pytest.fixture
def accumulator_module() -> Module:
    return build_accumulator_module()


@pytest.fixture
def straightline_module() -> Module:
    return build_straightline_module()


# -- cached benchmark artifacts (built once per test session) ---------------

_module_cache: dict[str, Module] = {}
_profile_cache: dict[str, tuple] = {}


def cached_module(name: str) -> Module:
    if name not in _module_cache:
        _module_cache[name] = build_module(name, "test")
    return _module_cache[name]


def cached_profile(name: str):
    if name not in _profile_cache:
        module = cached_module(name)
        _profile_cache[name] = ProfilingInterpreter(module).run()
    return _profile_cache[name]


@pytest.fixture(params=BENCHMARK_NAMES)
def benchmark_name(request) -> str:
    return request.param


@pytest.fixture
def benchmark_module(benchmark_name) -> Module:
    return cached_module(benchmark_name)


@pytest.fixture
def pathfinder_module() -> Module:
    return cached_module("pathfinder")


@pytest.fixture
def pathfinder_profile():
    return cached_profile("pathfinder")[0]


@pytest.fixture
def accumulator_engine(accumulator_module) -> ExecutionEngine:
    return ExecutionEngine(accumulator_module)
