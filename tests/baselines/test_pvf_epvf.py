"""PVF and ePVF baselines: the Fig. 9 ordering must hold."""

import pytest

from repro.baselines import EpvfModel, PvfModel
from repro.core import Trident
from repro.ir import FunctionBuilder, Module
from repro.profiling import ProfilingInterpreter
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def pathfinder_setup():
    module = cached_module("pathfinder")
    profile, _ = cached_profile("pathfinder")
    return module, profile


class TestPvf:
    def test_massively_over_predicts(self, pathfinder_setup):
        module, profile = pathfinder_setup
        pvf = PvfModel(module, profile)
        assert pvf.overall_exact() > 0.85

    def test_no_masking_no_crash(self, pathfinder_setup):
        """PVF counts crash-bound faults as vulnerable: per-instruction
        vulnerability must dominate TRIDENT's everywhere."""
        module, profile = pathfinder_setup
        pvf = PvfModel(module, profile)
        trident = Trident(module, profile)
        for iid in pvf.eligible[:50]:
            assert (
                pvf.instruction_vulnerability(iid)
                >= trident.instruction_sdc(iid) - 1e-9
            )

    def test_dead_value_not_vulnerable(self):
        module = Module("dead")
        f = FunctionBuilder(module, "main")
        _unused = f.c(1) + 2
        f.out(f.c(0))
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        pvf = PvfModel(module, profile)
        add_iid = next(
            i.iid for i in module.instructions() if i.opcode == "binop"
        )
        assert pvf.instruction_vulnerability(add_iid) == 0.0

    def test_values_in_range(self, pathfinder_setup):
        module, profile = pathfinder_setup
        pvf = PvfModel(module, profile)
        for iid in pvf.eligible:
            assert 0.0 <= pvf.instruction_vulnerability(iid) <= 1.0


class TestEpvf:
    def test_between_trident_and_pvf(self, benchmark_name):
        """Fig. 9 ordering: TRIDENT <= ePVF <= PVF on overall SDC."""
        module = cached_module(benchmark_name)
        profile, _ = cached_profile(benchmark_name)
        trident = Trident(module, profile).overall_sdc(samples=300, seed=4)
        epvf = EpvfModel(module, profile).overall(samples=300, seed=4)
        pvf = PvfModel(module, profile).overall(samples=300, seed=4)
        assert trident <= epvf + 0.05
        assert epvf <= pvf + 0.05

    def test_measured_crash_substitution(self, pathfinder_setup):
        """Sec. VII-C: substituting FI-measured crashes lowers ePVF."""
        module, profile = pathfinder_setup
        plain = EpvfModel(module, profile)
        substituted = EpvfModel(
            module, profile, measured_crash_probability=0.35
        )
        assert (
            substituted.overall_exact() <= plain.overall_exact() + 1e-9
        )

    def test_crash_substitution_floor_zero(self, pathfinder_setup):
        module, profile = pathfinder_setup
        model = EpvfModel(module, profile, measured_crash_probability=1.0)
        for iid in model.eligible[:30]:
            assert model.instruction_vulnerability(iid) == 0.0

    def test_overall_sampled_matches_exact(self, pathfinder_setup):
        module, profile = pathfinder_setup
        model = EpvfModel(module, profile)
        assert model.overall(samples=4000, seed=1) == pytest.approx(
            model.overall_exact(), abs=0.05
        )

    def test_caching(self, pathfinder_setup):
        module, profile = pathfinder_setup
        model = EpvfModel(module, profile)
        iid = model.eligible[0]
        assert model.instruction_vulnerability(
            iid
        ) == model.instruction_vulnerability(iid)
