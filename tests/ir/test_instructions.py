"""Unit tests for instruction construction, typing rules and def-use."""

import pytest

from repro.ir import (
    F64,
    I1,
    I32,
    I64,
    VOID,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Detect,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Output,
    Ret,
    Select,
    Store,
    const_float,
    const_int,
    pointer_to,
)
from repro.ir.basicblock import BasicBlock


def i32(v):
    return const_int(v, I32)


class TestBinOp:
    def test_result_type(self):
        add = BinOp("add", i32(1), i32(2))
        assert add.type == I32
        assert add.has_result

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinOp("add", i32(1), const_int(2, I64))

    def test_float_op_on_ints_rejected(self):
        with pytest.raises(TypeError):
            BinOp("fadd", i32(1), i32(2))

    def test_int_op_on_floats_rejected(self):
        with pytest.raises(TypeError):
            BinOp("xor", const_float(1.0), const_float(2.0))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinOp("bogus", i32(1), i32(2))

    def test_classification(self):
        assert BinOp("and", i32(1), i32(2)).is_logic
        assert BinOp("shl", i32(1), i32(2)).is_shift
        assert not BinOp("add", i32(1), i32(2)).is_logic


class TestDefUse:
    def test_users_tracked(self):
        a = BinOp("add", i32(1), i32(2))
        b = BinOp("mul", a, i32(3))
        assert b in a.users

    def test_replace_operand(self):
        a = BinOp("add", i32(1), i32(2))
        b = BinOp("add", i32(5), i32(6))
        c = BinOp("mul", a, i32(3))
        c.replace_operand(0, b)
        assert c not in a.users
        assert c in b.users
        assert c.operands[0] is b

    def test_drop_uses(self):
        a = BinOp("add", i32(1), i32(2))
        c = BinOp("mul", a, a)
        c.drop_uses()
        assert c not in a.users


class TestComparisons:
    def test_icmp_type(self):
        cmp = ICmp("slt", i32(1), i32(2))
        assert cmp.type == I1
        assert cmp.is_comparison

    def test_icmp_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt", i32(1), i32(2))

    def test_fcmp_requires_floats(self):
        with pytest.raises(TypeError):
            FCmp("olt", i32(1), i32(2))

    def test_fcmp(self):
        cmp = FCmp("ogt", const_float(1.0), const_float(2.0))
        assert cmp.type == I1


class TestMemory:
    def test_alloca(self):
        a = Alloca(I32, 10)
        assert a.type == pointer_to(I32)
        assert a.size_bytes == 40

    def test_alloca_requires_positive_count(self):
        with pytest.raises(ValueError):
            Alloca(I32, 0)

    def test_load_store_typing(self):
        p = Alloca(I32)
        load = Load(p)
        assert load.type == I32
        Store(i32(1), p)  # ok
        with pytest.raises(TypeError):
            Store(const_int(1, I64), p)

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(i32(1))

    def test_gep(self):
        p = Alloca(F64, 4)
        gep = GetElementPtr(p, i32(2))
        assert gep.type == pointer_to(F64)
        assert gep.elem_size == 8

    def test_gep_index_must_be_int(self):
        p = Alloca(F64, 4)
        with pytest.raises(TypeError):
            GetElementPtr(p, const_float(1.0))


class TestControlFlow:
    def test_unconditional(self):
        bb = BasicBlock("x")
        br = Branch(None, bb)
        assert not br.is_conditional
        assert br.targets == [bb]
        assert br.is_terminator

    def test_conditional(self):
        bb1, bb2 = BasicBlock("t"), BasicBlock("f")
        cond = ICmp("eq", i32(1), i32(1))
        br = Branch(cond, bb1, bb2)
        assert br.is_conditional
        assert br.targets == [bb1, bb2]

    def test_conditional_needs_two_targets(self):
        cond = ICmp("eq", i32(1), i32(1))
        with pytest.raises(ValueError):
            Branch(cond, BasicBlock("t"))

    def test_condition_must_be_i1(self):
        with pytest.raises(TypeError):
            Branch(i32(1), BasicBlock("t"), BasicBlock("f"))

    def test_ret(self):
        assert Ret(None).value is None
        assert Ret(i32(3)).value == i32(3)
        assert Ret(None).is_terminator


class TestMisc:
    def test_select_typing(self):
        cond = ICmp("eq", i32(1), i32(1))
        sel = Select(cond, i32(1), i32(2))
        assert sel.type == I32
        with pytest.raises(TypeError):
            Select(cond, i32(1), const_float(1.0))
        with pytest.raises(TypeError):
            Select(i32(1), i32(1), i32(2))

    def test_call(self):
        call = Call("sqrt", [const_float(4.0)], F64)
        assert call.callee == "sqrt"
        assert call.has_result

    def test_void_call(self):
        call = Call("helper", [], VOID)
        assert not call.has_result

    def test_output_precision_validation(self):
        Output(const_float(1.0), precision=2)  # ok
        with pytest.raises(ValueError):
            Output(const_float(1.0), precision=0)

    def test_detect_type_agreement(self):
        with pytest.raises(TypeError):
            Detect(i32(1), const_float(1.0))

    def test_cast(self):
        cast = Cast("sext", i32(1), I64)
        assert cast.type == I64
        assert cast.is_cast
        with pytest.raises(ValueError):
            Cast("resize", i32(1), I64)
