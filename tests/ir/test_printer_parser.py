"""Textual round-trip: printer output parses back to an identical module."""

import pytest

from repro.ir import (
    IRParseError,
    Module,
    parse_module,
    print_module,
)
from tests.conftest import cached_module


class TestRoundTrip:
    def test_accumulator_round_trip(self, accumulator_module):
        text = print_module(accumulator_module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    @pytest.mark.parametrize("name", [
        "pathfinder", "hotspot", "blackscholes", "libquantum", "hercules",
    ])
    def test_benchmark_round_trip(self, name):
        module = cached_module(name)
        text = print_module(module)
        assert print_module(parse_module(text)) == text

    def test_round_trip_preserves_iids(self, accumulator_module):
        reparsed = parse_module(print_module(accumulator_module))
        original = accumulator_module.instructions()
        clones = reparsed.instructions()
        assert len(original) == len(clones)
        for a, b in zip(original, clones):
            assert a.iid == b.iid
            assert a.opcode == b.opcode

    def test_round_trip_preserves_behavior(self, accumulator_module):
        from repro.interp import ExecutionEngine

        reparsed = parse_module(print_module(accumulator_module))
        assert (
            ExecutionEngine(reparsed).golden().outputs
            == ExecutionEngine(accumulator_module).golden().outputs
        )

    def test_print_requires_finalized(self):
        with pytest.raises(RuntimeError):
            print_module(Module("empty"))


SIMPLE = """
module tiny

global @data : i32 x 3 = [5, 6, 7]

func @main() : void {
entry:
  %0 = gep i32* @data, i32 1
  %1 = load i32* %0
  %2 = add i32 %1, i32 10
  output i32 %2
  ret
}
"""


class TestParser:
    def test_parse_simple(self):
        module = parse_module(SIMPLE)
        assert module.name == "tiny"
        assert module.globals["data"].initializer == [5, 6, 7]
        assert module.num_instructions == 5

    def test_parse_executes(self):
        from repro.interp import ExecutionEngine

        module = parse_module(SIMPLE)
        assert ExecutionEngine(module).golden().outputs == ["16"]

    def test_float_constants(self):
        text = SIMPLE.replace(
            "%2 = add i32 %1, i32 10", "%2 = add i32 %1, i32 10"
        )
        module = parse_module(text)
        assert module is not None

    def test_comments_ignored(self):
        module = parse_module(SIMPLE.replace(
            "ret", "ret ; this is the end"
        ))
        assert module.num_instructions == 5

    def test_undefined_value_rejected(self):
        bad = SIMPLE.replace("%2 = add i32 %1, i32 10",
                             "%2 = add i32 %99, i32 10")
        with pytest.raises(IRParseError):
            parse_module(bad)

    def test_unknown_label_rejected(self):
        bad = SIMPLE.replace("ret", "br label %nowhere")
        with pytest.raises(IRParseError):
            parse_module(bad)

    def test_unknown_opcode_rejected(self):
        bad = SIMPLE.replace("%2 = add i32 %1, i32 10",
                             "%2 = frobnicate i32 %1, i32 10")
        with pytest.raises(IRParseError):
            parse_module(bad)

    def test_type_mismatch_rejected(self):
        bad = SIMPLE.replace("output i32 %2", "output i64 %2")
        with pytest.raises(IRParseError):
            parse_module(bad)

    def test_missing_brace_rejected(self):
        bad = SIMPLE.rstrip().rstrip("}")
        with pytest.raises(IRParseError):
            parse_module(bad)

    def test_empty_module_rejected(self):
        with pytest.raises(IRParseError):
            parse_module("   \n  \n")

    def test_conditional_branch_and_blocks(self):
        text = """
module branches

func @main() : void {
entry:
  %0 = icmp slt i32 3, i32 5
  br i1 %0, label %yes, label %no
yes:
  output i32 1
  ret
no:
  output i32 0
  ret
}
"""
        from repro.interp import ExecutionEngine

        module = parse_module(text)
        assert ExecutionEngine(module).golden().outputs == ["1"]

    def test_output_precision_round_trip(self):
        text = """
module prec

func @main() : void {
entry:
  output f64 1.5 prec 3
  ret
}
"""
        module = parse_module(text)
        printed = print_module(module)
        assert "prec 3" in printed
