"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    F32,
    F64,
    I1,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    VoidType,
    parse_type,
    pointer_to,
)


class TestIntType:
    def test_interning(self):
        assert IntType(32) is I32
        assert IntType(64) is I64

    def test_equality_and_hash(self):
        assert IntType(32) == I32
        assert hash(IntType(8)) == hash(IntType(8))
        assert IntType(8) != IntType(16)

    def test_bounds(self):
        assert I32.max_unsigned == 2**32 - 1
        assert I32.max_signed == 2**31 - 1
        assert I32.min_signed == -(2**31)
        assert I1.max_unsigned == 1

    def test_size_bytes(self):
        assert I32.size_bytes == 4
        assert I64.size_bytes == 8
        assert I1.size_bytes == 1  # sub-byte types round up

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(128)

    def test_str(self):
        assert str(I32) == "i32"
        assert str(I1) == "i1"

    def test_predicates(self):
        assert I32.is_integer
        assert not I32.is_float
        assert not I32.is_pointer


class TestFloatType:
    def test_interning(self):
        assert FloatType(32) is F32
        assert FloatType(64) is F64

    def test_mantissa_bits(self):
        assert F32.mantissa_bits == 23
        assert F64.mantissa_bits == 52

    def test_decimal_digits(self):
        assert F32.decimal_digits == 7
        assert F64.decimal_digits == 15

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_str(self):
        assert str(F32) == "f32"
        assert str(F64) == "f64"


class TestPointerType:
    def test_width_is_64(self):
        assert PointerType(I32).bits == 64
        assert PointerType(I32).size_bytes == 8

    def test_equality(self):
        assert pointer_to(I32) == pointer_to(I32)
        assert pointer_to(I32) != pointer_to(I64)

    def test_str(self):
        assert str(pointer_to(F64)) == "f64*"

    def test_no_void_pointee(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_nested(self):
        pp = pointer_to(pointer_to(I32))
        assert str(pp) == "i32**"
        assert pp.pointee == pointer_to(I32)


class TestVoidType:
    def test_singleton(self):
        assert VoidType() is VOID

    def test_predicates(self):
        assert VOID.is_void
        assert not VOID.is_integer


class TestParseType:
    @pytest.mark.parametrize("text,expected", [
        ("i32", I32),
        ("i1", I1),
        ("f32", F32),
        ("f64", F64),
        ("double", F64),
        ("float", F32),
        ("void", VOID),
        ("i32*", pointer_to(I32)),
        ("f64**", pointer_to(pointer_to(F64))),
    ])
    def test_round_trip(self, text, expected):
        assert parse_type(text) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_type("int")
        with pytest.raises(ValueError):
            parse_type("ixyz")
