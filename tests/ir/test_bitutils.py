"""Unit and property tests for bit-level helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.ir.bitutils import (
    bits_to_float,
    flip_bit_float,
    flip_bit_int,
    flip_bit_typed,
    float_to_bits,
    format_with_precision,
    from_signed,
    mask,
    popcount,
    to_signed,
    truncate_float,
    wrap_unsigned,
)
from repro.ir.types import F32, F64, I32


class TestMaskAndWrap:
    def test_mask(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_wrap_unsigned(self):
        assert wrap_unsigned(-1, 8) == 0xFF
        assert wrap_unsigned(256, 8) == 0
        assert wrap_unsigned(257, 8) == 1

    def test_signed_round_trip(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert from_signed(-128, 8) == 0x80
        assert to_signed(from_signed(-5, 32), 32) == -5


class TestFloatBits:
    def test_known_encoding(self):
        assert float_to_bits(1.0, 32) == 0x3F800000
        assert float_to_bits(1.0, 64) == 0x3FF0000000000000

    def test_round_trip_f64(self):
        for value in (0.0, 1.5, -2.25, 1e300, -1e-300):
            assert bits_to_float(float_to_bits(value, 64), 64) == value

    def test_sign_flip(self):
        assert flip_bit_float(1.0, 63, 64) == -1.0
        assert flip_bit_float(2.5, 31, 32) == -2.5

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            float_to_bits(1.0, 16)


class TestFlip:
    def test_flip_int(self):
        assert flip_bit_int(0, 0, 32) == 1
        assert flip_bit_int(1, 0, 32) == 0
        assert flip_bit_int(0, 31, 32) == 0x80000000

    def test_flip_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit_int(0, 32, 32)

    def test_flip_typed_dispatch(self):
        assert flip_bit_typed(5, 1, I32) == 7
        assert flip_bit_typed(1.0, 63, F64) == -1.0

    def test_flip_is_involution(self):
        value = 0xDEADBEEF
        for bit in range(32):
            assert flip_bit_int(flip_bit_int(value, bit, 32), bit, 32) == value


class TestTruncateFloat:
    def test_f64_identity(self):
        assert truncate_float(1.1, F64) == 1.1

    def test_f32_loses_precision(self):
        truncated = truncate_float(1.1, F32)
        assert truncated != 1.1
        assert abs(truncated - 1.1) < 1e-6

    def test_f32_overflow_to_inf(self):
        assert truncate_float(1e300, F32) == math.inf
        assert truncate_float(-1e300, F32) == -math.inf

    def test_nan_preserved(self):
        assert math.isnan(truncate_float(math.nan, F32))


class TestFormatting:
    def test_precision_g(self):
        assert format_with_precision(123.456, 2) == "1.2e+02"
        assert format_with_precision(0.0001234, 2) == "0.00012"
        assert format_with_precision(1.0, 3) == "1"

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0xFF) == 8
        assert popcount(1 << 40) == 1


# -- property-based -----------------------------------------------------------

@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_signed_unsigned_round_trip(value):
    assert to_signed(from_signed(value, 32), 32) == value


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=31))
def test_flip_changes_exactly_one_bit(value, bit):
    flipped = flip_bit_int(value, bit, 32)
    assert popcount(value ^ flipped) == 1


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_float_bits_round_trip(value):
    assert bits_to_float(float_to_bits(value, 64), 64) == value


@given(st.integers(min_value=1, max_value=64), st.integers())
def test_wrap_bounds(bits, value):
    wrapped = wrap_unsigned(value, bits)
    assert 0 <= wrapped <= mask(bits)
