"""The eDSL: expressions, locals, arrays, and structured control flow.

Each test lowers a snippet and executes it, asserting on program output
— the DSL's contract is the behaviour of the generated IR.
"""

import pytest

from repro.interp import ExecutionEngine
from repro.ir import F32, F64, I32, I64, FunctionBuilder, Module


def run_main(build):
    """Build main with the given body function, execute, return outputs."""
    module = Module("t")
    f = FunctionBuilder(module, "main")
    build(f)
    f.done()
    module.finalize()
    return ExecutionEngine(module).golden().outputs


class TestExpressions:
    def test_integer_arithmetic(self):
        def body(f):
            a = f.c(10)
            f.out(a * 3 - 5)
            f.out(a / 3)
            f.out(a % 3)
        assert run_main(body) == ["25", "3", "1"]

    def test_float_arithmetic(self):
        def body(f):
            x = f.c(1.5)
            f.out(x * 2.0 + 0.25, precision=6)
        assert run_main(body) == ["3.25"]

    def test_reverse_operators(self):
        def body(f):
            a = f.c(10)
            f.out(100 - a)
            f.out(3 * a)
        assert run_main(body) == ["90", "30"]

    def test_bitwise(self):
        def body(f):
            a = f.c(0b1100)
            f.out(a & 0b1010)
            f.out(a | 0b0001)
            f.out(a ^ 0b1111)
            f.out(a << 2)
            f.out(a >> 1)
        assert run_main(body) == ["8", "13", "3", "48", "6"]

    def test_negation(self):
        def body(f):
            f.out(-f.c(5))
            f.out(-f.c(2.5), precision=6)
        assert run_main(body) == ["-5", "-2.5"]

    def test_comparisons_produce_i1(self):
        def body(f):
            a = f.c(3)
            f.out(f.select(a < 5, f.c(1), f.c(0)))
            f.out(f.select(a == 3, f.c(1), f.c(0)))
            f.out(f.select(a >= 4, f.c(1), f.c(0)))
        assert run_main(body) == ["1", "1", "0"]

    def test_conversions(self):
        def body(f):
            f.out(f.c(3).to_float(F64) * 0.5, precision=6)
            f.out(f.c(3.9).to_int(I32))
            f.out(f.c(3).to_int(I64).to_int(I32))
        assert run_main(body) == ["1.5", "3", "3"]

    def test_mixed_int_float_rejected(self):
        def body(f):
            _ = f.c(1) + 2.5
        with pytest.raises(TypeError):
            run_main(body)


class TestStorage:
    def test_local_get_set(self):
        def body(f):
            v = f.local("v", I32, init=1)
            v.set(v.get() + 41)
            f.out(v.get())
        assert run_main(body) == ["42"]

    def test_array_read_write(self):
        def body(f):
            arr = f.array("a", I32, 4)
            f.for_range(0, 4, lambda i: arr.__setitem__(i, i * i))
            f.out(arr[f.c(3)])
        assert run_main(body) == ["9"]

    def test_global_array(self):
        def body(f):
            g = f.global_array("data", I32, 3, [10, 20, 30])
            f.out(g[f.c(1)])
        assert run_main(body) == ["20"]

    def test_float_array(self):
        def body(f):
            arr = f.array("a", F32, 2)
            arr[f.c(0)] = f.c(1.25, F32)
            arr[f.c(1)] = arr[f.c(0)] * 2.0
            f.out(arr[f.c(1)], precision=6)
        assert run_main(body) == ["2.5"]


class TestControlFlow:
    def test_for_range_ascending(self):
        def body(f):
            total = f.local("t", I32, init=0)
            f.for_range(0, 5, lambda i: total.set(total.get() + i))
            f.out(total.get())
        assert run_main(body) == ["10"]

    def test_for_range_step(self):
        def body(f):
            total = f.local("t", I32, init=0)
            f.for_range(0, 10, lambda i: total.set(total.get() + i), step=3)
            f.out(total.get())
        assert run_main(body) == ["18"]  # 0+3+6+9

    def test_for_range_descending(self):
        def body(f):
            total = f.local("t", I32, init=0)
            f.for_range(5, 0, lambda i: total.set(total.get() + i), step=-1)
            f.out(total.get())
        assert run_main(body) == ["15"]  # 5+4+3+2+1

    def test_for_range_zero_step_rejected(self):
        def body(f):
            f.for_range(0, 5, lambda i: None, step=0)
        with pytest.raises(ValueError):
            run_main(body)

    def test_while(self):
        def body(f):
            n = f.local("n", I32, init=100)
            steps = f.local("s", I32, init=0)

            def step():
                n.set(n.get() / 2)
                steps.set(steps.get() + 1)

            f.while_(lambda: n.get() > 1, step)
            f.out(steps.get())
        assert run_main(body) == ["6"]  # 100->50->25->12->6->3->1

    def test_if_then(self):
        def body(f):
            v = f.local("v", I32, init=0)
            f.if_(f.c(1) < 2, lambda: v.set(7))
            f.out(v.get())
        assert run_main(body) == ["7"]

    def test_if_else(self):
        def body(f):
            v = f.local("v", I32, init=0)
            f.if_(f.c(5) < 2, lambda: v.set(7), lambda: v.set(9))
            f.out(v.get())
        assert run_main(body) == ["9"]

    def test_nested_loops(self):
        def body(f):
            total = f.local("t", I32, init=0)

            def outer(i):
                f.for_range(0, 3, lambda j: total.set(total.get() + i * j),
                            name="j")

            f.for_range(0, 3, outer, name="i")
            f.out(total.get())
        assert run_main(body) == ["9"]  # sum i*j, i,j in 0..2


class TestHelpers:
    def test_min_max_abs(self):
        def body(f):
            f.out(f.min(f.c(3), 5))
            f.out(f.max(f.c(3), 5))
            f.out(f.abs(f.c(-7)))
            f.out(f.abs(f.c(-2.5)), precision=6)
        assert run_main(body) == ["3", "5", "7", "2.5"]

    def test_intrinsics(self):
        def body(f):
            f.out(f.sqrt(f.c(16.0)), precision=6)
            f.out(f.exp(f.c(0.0)), precision=6)
            f.out(f.log(f.c(1.0)), precision=6)
        assert run_main(body) == ["4", "1", "0"]

    def test_user_function_call(self):
        module = Module("t")
        helper = FunctionBuilder(module, "square", [I32], ["x"], I32)
        helper.ret(helper.arg(0) * helper.arg(0))
        helper.done()
        f = FunctionBuilder(module, "main")
        f.out(f.call("square", [f.c(6)], I32))
        f.done()
        module.finalize()
        assert ExecutionEngine(module).golden().outputs == ["36"]

    def test_done_adds_implicit_ret(self):
        module = Module("t")
        f = FunctionBuilder(module, "main")
        f.out(f.c(1))
        fn = f.done()
        assert fn.blocks[-1].is_terminated
