"""Basic blocks, functions, and modules: structural behaviour."""

import pytest

from repro.ir import I32, Function, IRBuilder, Module, const_int
from repro.ir.instructions import Ret


class TestBasicBlock:
    def test_append_and_terminate(self):
        fn = Function("f")
        block = fn.add_block("entry")
        builder = IRBuilder(fn, block)
        builder.add(const_int(1), const_int(2))
        assert not block.is_terminated
        builder.ret(None)
        assert block.is_terminated
        assert isinstance(block.terminator, Ret)

    def test_append_after_terminator_rejected(self):
        fn = Function("f")
        block = fn.add_block("entry")
        builder = IRBuilder(fn, block)
        builder.ret(None)
        with pytest.raises(ValueError):
            builder.add(const_int(1), const_int(2))

    def test_successors_and_predecessors(self):
        fn = Function("f")
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        builder = IRBuilder(fn, entry)
        cond = builder.icmp("eq", const_int(1), const_int(1))
        builder.cond_br(cond, left, right)
        IRBuilder(fn, left).ret(None)
        IRBuilder(fn, right).ret(None)
        assert set(entry.successors) == {left, right}
        assert left.predecessors == [entry]

    def test_duplicate_conditional_target_deduped(self):
        fn = Function("f")
        entry = fn.add_block("entry")
        only = fn.add_block("only")
        builder = IRBuilder(fn, entry)
        cond = builder.icmp("eq", const_int(1), const_int(1))
        builder.cond_br(cond, only, only)
        assert entry.successors == [only]


class TestFunction:
    def test_unique_block_names(self):
        fn = Function("f")
        a = fn.add_block("loop")
        b = fn.add_block("loop")
        assert a.name != b.name

    def test_entry_requires_block(self):
        fn = Function("f")
        with pytest.raises(ValueError):
            _ = fn.entry

    def test_args(self):
        fn = Function("f", [I32, I32], ["x", "y"], I32)
        assert [a.name for a in fn.args] == ["x", "y"]
        assert fn.args[1].index == 1

    def test_block_by_name(self):
        fn = Function("f")
        block = fn.add_block("entry")
        assert fn.block_by_name("entry") is block
        with pytest.raises(KeyError):
            fn.block_by_name("nope")


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(Function("f"))
        with pytest.raises(ValueError):
            module.add_function(Function("f"))

    def test_duplicate_global_rejected(self):
        module = Module("m")
        module.new_global("g", I32, 4)
        with pytest.raises(ValueError):
            module.new_global("g", I32, 4)

    def test_global_initializer_length_check(self):
        module = Module("m")
        with pytest.raises(ValueError):
            module.new_global("g", I32, 4, [1, 2])

    def test_finalize_assigns_contiguous_iids(self, straightline_module):
        iids = [inst.iid for inst in straightline_module.instructions()]
        assert iids == list(range(len(iids)))

    def test_instruction_lookup(self, straightline_module):
        for inst in straightline_module.instructions():
            assert straightline_module.instruction(inst.iid) is inst

    def test_lookup_requires_finalize(self):
        module = Module("m")
        fn = Function("main")
        block = fn.add_block("entry")
        IRBuilder(fn, block).ret(None)
        module.add_function(fn)
        with pytest.raises(RuntimeError):
            module.instruction(0)

    def test_missing_function_lookup(self):
        module = Module("m")
        with pytest.raises(KeyError):
            module.function("ghost")

    def test_num_instructions(self, accumulator_module):
        assert accumulator_module.num_instructions == sum(
            1 for _ in accumulator_module.instructions()
        )
