"""The verifier: structural well-formedness rules."""

import pytest

from repro.ir import (
    F64,
    I32,
    Function,
    IRBuilder,
    Module,
    VerificationError,
    const_int,
    verify_function,
)
from repro.ir.instructions import BinOp, Branch, Ret


def make_module_with(fn: Function) -> Module:
    module = Module("t")
    module.add_function(fn)
    return module


class TestTermination:
    def test_unterminated_block_rejected(self):
        fn = Function("main")
        block = fn.add_block("entry")
        builder = IRBuilder(fn, block)
        builder.add(const_int(1), const_int(2))
        module = make_module_with(fn)
        with pytest.raises(VerificationError, match="not terminated"):
            module.finalize()

    def test_empty_function_rejected(self):
        fn = Function("main")
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(fn)

    def test_ret_type_checked(self):
        fn = Function("main", return_type=I32)
        block = fn.add_block("entry")
        block.append(Ret(None))
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)

    def test_void_ret_with_value_rejected(self):
        fn = Function("main")
        block = fn.add_block("entry")
        block.append(Ret(const_int(1)))
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)


class TestBranchTargets:
    def test_cross_function_branch_rejected(self):
        fn_a = Function("a")
        fn_b = Function("b")
        foreign = fn_b.add_block("foreign")
        foreign.append(Ret(None))
        entry = fn_a.add_block("entry")
        entry.append(Branch(None, foreign))
        with pytest.raises(VerificationError, match="another function"):
            verify_function(fn_a)


class TestDominance:
    def test_use_before_def_in_block_rejected(self):
        fn = Function("main")
        block = fn.add_block("entry")
        a = BinOp("add", const_int(1), const_int(2))
        b = BinOp("mul", a, const_int(3))
        # Insert b before a: use-before-def.
        block.append(b)
        block.append(a)
        block.append(Ret(None))
        with pytest.raises(VerificationError, match="before its definition"):
            verify_function(fn)

    def test_non_dominating_def_rejected(self):
        fn = Function("main")
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        merge = fn.add_block("merge")
        builder = IRBuilder(fn, entry)
        cond = builder.icmp("eq", const_int(1), const_int(1))
        builder.cond_br(cond, left, right)
        lb = IRBuilder(fn, left)
        defined_in_left = lb.add(const_int(1), const_int(2))
        lb.br(merge)
        IRBuilder(fn, right).br(merge)
        mb = IRBuilder(fn, merge)
        mb.add(defined_in_left, const_int(1))  # not dominated
        mb.ret(None)
        with pytest.raises(VerificationError, match="does not dominate"):
            verify_function(fn)

    def test_dominating_use_accepted(self, accumulator_module):
        # The whole benchmark suite should verify; spot-check one module.
        for fn in accumulator_module.functions.values():
            verify_function(fn, accumulator_module)


class TestCalls:
    def test_unknown_callee_rejected(self):
        module = Module("t")
        fn = Function("main")
        block = fn.add_block("entry")
        builder = IRBuilder(fn, block)
        builder.call("does_not_exist", [], I32)
        builder.ret(None)
        module.add_function(fn)
        with pytest.raises(VerificationError, match="unknown function"):
            module.finalize()

    def test_intrinsic_arity_checked(self):
        module = Module("t")
        fn = Function("main")
        block = fn.add_block("entry")
        builder = IRBuilder(fn, block)
        builder.call("sqrt", [], F64)  # sqrt takes 1 arg
        builder.ret(None)
        module.add_function(fn)
        with pytest.raises(VerificationError, match="takes"):
            module.finalize()

    def test_call_arg_count_checked(self):
        module = Module("t")
        callee = Function("helper", [I32], ["x"])
        cb = IRBuilder(callee, callee.add_block("entry"))
        cb.ret(None)
        module.add_function(callee)
        fn = Function("main")
        builder = IRBuilder(fn, fn.add_block("entry"))
        builder.call("helper", [], callee.return_type)
        builder.ret(None)
        module.add_function(fn)
        with pytest.raises(VerificationError, match="args"):
            module.finalize()

    def test_benchmarks_verify(self, benchmark_module):
        # finalize() already verified at build; re-verify explicitly.
        from repro.ir import verify_module

        verify_module(benchmark_module)
