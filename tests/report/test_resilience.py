"""The resilience report generator."""

import pytest

from repro.report import generate_report
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def report():
    module = cached_module("hercules")
    profile, _ = cached_profile("hercules")
    return generate_report(module, profile, target_sdc=0.10, samples=400)


class TestReport:
    def test_overall_values(self, report):
        assert 0.0 <= report.overall_sdc <= 1.0
        assert 0.0 <= report.overall_crash <= 1.0
        assert report.dynamic_instructions > 0

    def test_per_function_breakdown(self, report):
        names = {f.name for f in report.functions}
        assert "main" in names
        assert "laplacian" in names  # hercules is interprocedural
        for summary in report.functions:
            assert 0.0 <= summary.weighted_sdc <= 1.0

    def test_hottest_sorted(self, report):
        for summary in report.functions:
            probabilities = [p for _i, p, _t in summary.hottest]
            assert probabilities == sorted(probabilities, reverse=True)

    def test_target_verdict(self, report):
        assert report.meets_target is (report.overall_sdc <= 0.10)

    def test_recommendation_nonempty(self, report):
        assert report.recommended_iids
        assert 0.0 < report.recommended_coverage <= 1.0

    def test_render_markdown(self, report):
        text = report.render()
        assert text.startswith("# Resilience report: hercules")
        assert "## Per-function breakdown" in text
        assert "## Protection recommendation" in text
        assert "laplacian" in text

    def test_no_target(self):
        module = cached_module("nw")
        profile, _ = cached_profile("nw")
        result = generate_report(module, profile, samples=200)
        assert result.meets_target is None
        assert "target" not in result.render().lower()
